//! Golden event-trace test: a checked-in canonical JSONL trace for one
//! fixed-seed TLP run, diffed against a fresh recording. This pins the
//! exact event stream — span structure, counter totals, field values,
//! sequence numbers — across refactors; only wall-clock durations are
//! outside the contract (the canonical form strips them).
//!
//! The comparison is additive-tolerant by construction: the golden file
//! is *decoded* (the JSONL decoder ignores unknown keys and is
//! schema-versioned) and re-encoded canonically before diffing, so a
//! future schema revision that adds fields regenerates cleanly rather
//! than breaking byte-compare.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! TLP_GOLDEN_UPDATE=1 cargo test --test obs_golden_trace
//! ```

use std::path::PathBuf;
use tlp::core::AlgoConfig;
use tlp::graph::generators::chung_lu;
use tlp::graph::CsrSource;
use tlp::obs::{canonical_lines, read_jsonl_str};
use tlp::pipeline::builtin_registry;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_trace.jsonl")
}

#[test]
fn fixed_seed_trace_matches_the_checked_in_golden_stream() {
    let graph = chung_lu(500, 2000, 2.2, 41);
    let registry = builtin_registry();
    let config = AlgoConfig::seeded(17);
    let (_, events) = registry
        .run_recorded("tlp", &config, &mut CsrSource::new(&graph), 4)
        .expect("recorded run");
    let fresh = canonical_lines(&events);

    let path = golden_path();
    if std::env::var_os("TLP_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &fresh).unwrap();
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); run with TLP_GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    let golden = read_jsonl_str(&golden_text).expect("golden trace decodes");
    assert!(!golden.truncated_tail, "golden trace has a torn tail");
    let expected = canonical_lines(&golden.events);
    if fresh != expected {
        let first_diff = fresh
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.lines().count().min(expected.lines().count()));
        let got = fresh.lines().nth(first_diff).unwrap_or("<end of stream>");
        let want = expected
            .lines()
            .nth(first_diff)
            .unwrap_or("<end of stream>");
        panic!(
            "event trace diverged from {} at line {}:\n  got:  {got}\n  want: {want}\n\
             ({} fresh lines vs {} golden lines; run with TLP_GOLDEN_UPDATE=1 if intentional)",
            path.display(),
            first_diff + 1,
            fresh.lines().count(),
            expected.lines().count()
        );
    }
}
