//! Golden-assignment tests: exact, checked-in partition outputs for fixed
//! seeds. These pin the *bit-identical* behavior of the single-threaded,
//! single-trial partitioners across refactors — any change to selection
//! order, tie-breaking, or per-seed RNG streams shows up as a diff here.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! TLP_GOLDEN_UPDATE=1 cargo test --test golden_assignment
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use tlp::baselines::NePartitioner;
use tlp::core::{
    EdgePartitioner, EdgeRatioLocalPartitioner, SelectionStrategy, TlpConfig,
    TwoStageLocalPartitioner,
};
use tlp::graph::generators::{chung_lu, genealogy};
use tlp::graph::CsrGraph;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Renders a partition as a stable text artifact: a header line followed by
/// one partition id per edge, in edge-id order.
fn render(algo_name: &str, p: usize, assignment: &[u32]) -> String {
    let mut out = String::new();
    writeln!(out, "# {algo_name} p={p} m={}", assignment.len()).unwrap();
    for &pid in assignment {
        writeln!(out, "{pid}").unwrap();
    }
    out
}

fn check_golden(file: &str, graph: &CsrGraph, algo: &dyn EdgePartitioner, p: usize) {
    let partition = algo
        .partition(graph, p)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    let rendered = render(algo.name(), p, partition.assignments());
    let path = golden_path(file);
    if std::env::var_os("TLP_GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with TLP_GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    if rendered != expected {
        let first_diff = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b);
        panic!(
            "{} output diverged from golden {} (first differing line: {:?}); \
             if the change is intentional, regenerate with TLP_GOLDEN_UPDATE=1",
            algo.name(),
            path.display(),
            first_diff,
        );
    }
}

fn chung_lu_graph() -> CsrGraph {
    chung_lu(300, 1200, 2.2, 7)
}

#[test]
fn tlp_indexed_heap_matches_golden() {
    let config = TlpConfig::new().seed(42);
    check_golden(
        "tlp_indexed_chung_lu.txt",
        &chung_lu_graph(),
        &TwoStageLocalPartitioner::new(config),
        8,
    );
}

#[test]
fn tlp_linear_scan_matches_golden() {
    let config = TlpConfig::new()
        .seed(42)
        .selection_strategy(SelectionStrategy::LinearScan);
    check_golden(
        "tlp_linear_chung_lu.txt",
        &chung_lu_graph(),
        &TwoStageLocalPartitioner::new(config),
        8,
    );
}

#[test]
fn tlp_r_matches_golden() {
    let config = TlpConfig::new().seed(42);
    check_golden(
        "tlp_r_chung_lu.txt",
        &chung_lu_graph(),
        &EdgeRatioLocalPartitioner::new(config, 0.2).unwrap(),
        8,
    );
}

#[test]
fn tlp_on_genealogy_matches_golden() {
    let config = TlpConfig::new().seed(3);
    check_golden(
        "tlp_genealogy.txt",
        &genealogy(200, 331, 5),
        &TwoStageLocalPartitioner::new(config),
        6,
    );
}

#[test]
fn ne_matches_golden() {
    check_golden(
        "ne_chung_lu.txt",
        &chung_lu_graph(),
        &NePartitioner::new(42),
        8,
    );
}
