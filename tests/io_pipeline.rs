//! File-based pipeline: write an edge list, load it back through the
//! dataset loader, partition it, and round-trip the partition's numbers.

use std::io::Write;
use tlp::core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
use tlp::datasets::loader::{load, Provenance};
use tlp::datasets::{DatasetId, DatasetSpec};
use tlp::graph::generators::power_law_community;
use tlp::graph::io::{read_edge_list, write_edge_list};

#[test]
fn write_read_partition_roundtrip_exact_on_path() {
    // A path's sorted canonical edge list interns vertices in id order, so
    // the reload's first-seen remapping is the identity and the parsed
    // graph is bit-identical — making the partitions identical too.
    let original = tlp::graph::GraphBuilder::new()
        .add_edges((0u32..499).map(|v| (v, v + 1)))
        .build();
    let mut buf = Vec::new();
    write_edge_list(&original, &mut buf).unwrap();
    let reloaded = read_edge_list(buf.as_slice()).unwrap().graph;
    assert_eq!(reloaded, original);

    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(6));
    let part_a = tlp.partition(&original, 6).unwrap();
    let part_b = tlp.partition(&reloaded, 6).unwrap();
    assert_eq!(part_a, part_b);
}

#[test]
fn write_read_roundtrip_preserves_structure() {
    // General graphs come back relabeled (first-seen interning), so compare
    // label-independent structure and re-partitionability.
    let original = power_law_community(500, 3_000, 2.2, 10, 0.2, 4);
    let mut buf = Vec::new();
    write_edge_list(&original, &mut buf).unwrap();
    let reloaded = read_edge_list(buf.as_slice()).unwrap().graph;

    assert_eq!(reloaded.num_edges(), original.num_edges());
    let hist = tlp::graph::degree::degree_histogram;
    // Isolated vertices are dropped by the reload; compare non-zero bins.
    assert_eq!(&hist(&reloaded)[1..], &hist(&original)[1..]);

    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(6));
    let part = tlp.partition(&reloaded, 6).unwrap();
    part.validate_for(&reloaded).unwrap();
    let rf = PartitionMetrics::compute(&reloaded, &part).replication_factor;
    assert!(rf >= 1.0);
}

#[test]
fn dataset_loader_uses_real_file_end_to_end() {
    let dir = std::env::temp_dir().join(format!("tlp-e2e-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Drop a small real file where the loader expects G1.
    let g = power_law_community(200, 1_500, 2.0, 5, 0.2, 1);
    let path = dir.join("email-Eu-core.txt");
    let mut file = std::fs::File::create(&path).unwrap();
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    file.write_all(&buf).unwrap();
    drop(file);

    let spec = DatasetSpec::get(DatasetId::G1);
    let ds = load(spec, &dir, 1.0, 0).unwrap();
    assert!(matches!(ds.provenance, Provenance::Real(_)));
    assert_eq!(ds.graph.num_edges(), 1_500);

    // And it partitions like any other graph.
    let part = TwoStageLocalPartitioner::new(TlpConfig::new())
        .partition(&ds.graph, 4)
        .unwrap();
    assert_eq!(part.edge_counts().iter().sum::<usize>(), 1_500);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn directed_duplicated_input_is_cleaned() {
    // A deliberately messy file: comments, directed duplicates, self-loops,
    // extra columns, arbitrary ids.
    let data = "\
# messy input
1000 2000 7
2000 1000
3000 3000
2000 3000 1 2 3
% trailing comment
";
    let loaded = read_edge_list(data.as_bytes()).unwrap();
    assert_eq!(loaded.graph.num_vertices(), 3);
    assert_eq!(loaded.graph.num_edges(), 2);
    let part = TwoStageLocalPartitioner::new(TlpConfig::new())
        .partition(&loaded.graph, 2)
        .unwrap();
    assert_eq!(part.edge_counts().iter().sum::<usize>(), 2);
}
