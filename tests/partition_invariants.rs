//! Property-based invariants over arbitrary graphs: every partitioner must
//! produce valid, total, well-measured partitions no matter the input.

use proptest::prelude::*;
use tlp::baselines::{DbhPartitioner, EdgeOrder, GreedyPartitioner, RandomPartitioner};
use tlp::core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
use tlp::graph::{CsrGraph, GraphBuilder};
use tlp::metis::MetisPartitioner;

/// Strategy: an arbitrary simple graph with up to `max_v` vertices and
/// `max_e` raw (possibly duplicate / self-loop) edge tuples.
fn arb_graph(max_v: u32, max_e: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_v).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n), 0..max_e)
            .prop_map(move |edges| GraphBuilder::new().add_edges(edges).build())
    })
}

fn check_partitioner(graph: &CsrGraph, algo: &dyn EdgePartitioner, p: usize) {
    let partition = algo
        .partition(graph, p)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    // Totality: every edge assigned to a partition in range.
    partition.validate_for(graph).unwrap();
    assert_eq!(partition.num_partitions(), p);
    assert_eq!(
        partition.edge_counts().iter().sum::<usize>(),
        graph.num_edges()
    );
    // Metric invariants.
    let m = PartitionMetrics::compute(graph, &partition);
    assert!(m.replication_factor >= 1.0 - 1e-12);
    assert!(m.spanned_vertices <= m.covered_vertices);
    assert_eq!(
        m.vertex_counts.iter().sum::<usize>(),
        m.total_replicas,
        "per-partition vertex counts must sum to total replicas"
    );
    // A vertex can appear in at most min(p, degree) partitions.
    assert!(m.total_replicas <= graph.num_edges() * 2 + m.covered_vertices);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tlp_is_valid_on_arbitrary_graphs(graph in arb_graph(60, 200), p in 1usize..8, seed in 0u64..4) {
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed));
        check_partitioner(&graph, &tlp, p);
    }

    #[test]
    fn baselines_are_valid_on_arbitrary_graphs(graph in arb_graph(60, 200), p in 1usize..8) {
        check_partitioner(&graph, &RandomPartitioner::new(1), p);
        check_partitioner(&graph, &DbhPartitioner::new(1), p);
        check_partitioner(&graph, &GreedyPartitioner::new(EdgeOrder::Natural), p);
    }

    #[test]
    fn metis_is_valid_on_arbitrary_graphs(graph in arb_graph(40, 120), p in 1usize..6) {
        check_partitioner(&graph, &MetisPartitioner::default(), p);
    }

    #[test]
    fn tlp_is_deterministic_on_arbitrary_graphs(graph in arb_graph(40, 120), p in 1usize..6, seed in 0u64..8) {
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed));
        let a = tlp.partition(&graph, p).unwrap();
        let b = tlp.partition(&graph, p).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rf_is_one_for_single_partition(graph in arb_graph(50, 150)) {
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new());
        let part = tlp.partition(&graph, 1).unwrap();
        let m = PartitionMetrics::compute(&graph, &part);
        prop_assert!((m.replication_factor - 1.0).abs() < 1e-12);
        prop_assert_eq!(m.spanned_vertices, 0);
    }
}
