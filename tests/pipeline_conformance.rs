//! Registry conformance: every built-in algorithm runs by name through the
//! unified pipeline from a materialized CSR source AND from a strict
//! bounded-memory disk stream. Streaming-capable algorithms must produce
//! identical artifacts from both; random-access-only algorithms must refuse
//! the strict stream with the typed capability error — never silently.

use tlp::core::{AlgoConfig, Capability, PipelineError};
use tlp::graph::generators::chung_lu;
use tlp::graph::CsrSource;
use tlp::pipeline::{builtin_names, builtin_registry};
use tlp::store::{write_graph, BinaryFileSource, WriteOptions};

const P: usize = 8;
const BUDGET: usize = 256;

fn spec_of(name: &str) -> String {
    if name == "tlp-r" {
        "tlp-r=0.3".to_string()
    } else {
        name.to_string()
    }
}

#[test]
fn every_algorithm_conforms_from_csr_and_disk_sources() {
    let graph = chung_lu(900, 3600, 2.2, 19);
    let dir = std::env::temp_dir().join(format!("tlp-conformance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("graph.tlpg");
    write_graph(&bin, &graph, &WriteOptions::default()).unwrap();

    let registry = builtin_registry();
    let config = AlgoConfig::seeded(29);
    let mut streamed = 0usize;
    let mut refused = 0usize;
    for name in builtin_names() {
        let spec = spec_of(name);
        let entry = registry.entry_of(&spec).expect("registered");

        let from_csr = registry
            .run(&spec, &config, &mut CsrSource::new(&graph), P)
            .unwrap_or_else(|e| panic!("{name} from CSR failed: {e}"));
        assert_eq!(from_csr.num_partitions, P, "{name}");
        assert_eq!(
            from_csr.partition.num_edges(),
            graph.num_edges(),
            "{name} did not assign every edge"
        );

        let mut disk = BinaryFileSource::open(&bin, BUDGET)
            .unwrap_or_else(|e| panic!("{name}: open {}: {e}", bin.display()))
            .strict_streaming(true);
        match entry.capability {
            Capability::Streaming => {
                let from_disk = registry
                    .run(&spec, &config, &mut disk, P)
                    .unwrap_or_else(|e| panic!("{name} from disk stream failed: {e}"));
                assert_eq!(
                    from_disk.partition, from_csr.partition,
                    "{name}: disk stream and CSR runs placed edges differently"
                );
                assert_eq!(
                    from_disk.metrics, from_csr.metrics,
                    "{name}: disk stream and CSR artifacts disagree on metrics"
                );
                let peak = from_disk
                    .peak_stream_buffer
                    .unwrap_or_else(|| panic!("{name}: streaming run reported no peak buffer"));
                assert!(
                    peak <= BUDGET,
                    "{name}: peak {peak} exceeds budget {BUDGET}"
                );
                streamed += 1;
            }
            Capability::RandomAccess => {
                // The skip must be an explicit, typed refusal — not a
                // silent fallback to materialization.
                let err = registry
                    .run(&spec, &config, &mut disk, P)
                    .expect_err(&format!("{name} must refuse a strict stream"));
                match err {
                    PipelineError::NeedsRandomAccess { algorithm, .. } => {
                        assert_eq!(algorithm, from_csr.algorithm, "{name}");
                    }
                    other => panic!("{name}: expected NeedsRandomAccess, got {other}"),
                }
                refused += 1;
            }
        }
    }
    assert_eq!(streamed, 4, "streaming row count drifted");
    assert_eq!(refused, 8, "csr-only row count drifted");

    std::fs::remove_dir_all(&dir).unwrap();
}
