//! End-to-end pipeline tests spanning every crate: dataset -> partitioner ->
//! metrics, across the full algorithm line-up.

use tlp::baselines::{
    DbhPartitioner, EdgeOrder, FennelPartitioner, GreedyPartitioner, HdrfPartitioner,
    LdgPartitioner, RandomPartitioner, VertexOrder,
};
use tlp::core::{
    EdgePartitioner, PartitionMetrics, StageOneOnlyPartitioner, StageTwoOnlyPartitioner, TlpConfig,
    TwoStageLocalPartitioner,
};
use tlp::datasets::{DatasetId, DatasetSpec};
use tlp::metis::MetisPartitioner;

fn full_lineup() -> Vec<Box<dyn EdgePartitioner>> {
    let seed = 11;
    vec![
        Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed))),
        Box::new(StageOneOnlyPartitioner::new(TlpConfig::new().seed(seed))),
        Box::new(StageTwoOnlyPartitioner::new(TlpConfig::new().seed(seed))),
        Box::new(MetisPartitioner::default()),
        Box::new(LdgPartitioner::new(VertexOrder::Random(seed))),
        Box::new(FennelPartitioner::new(VertexOrder::Random(seed))),
        Box::new(GreedyPartitioner::new(EdgeOrder::Random(seed))),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::new(seed)),
        Box::new(RandomPartitioner::new(seed)),
    ]
}

#[test]
fn every_partitioner_produces_a_valid_total_partition() {
    let graph = DatasetSpec::get(DatasetId::G1).instantiate(0.2, 3);
    for algo in full_lineup() {
        for p in [1, 4, 10] {
            let partition = algo
                .partition(&graph, p)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
            partition.validate_for(&graph).unwrap();
            assert_eq!(
                partition.edge_counts().iter().sum::<usize>(),
                graph.num_edges(),
                "{} did not cover all edges at p={p}",
                algo.name()
            );
            let metrics = PartitionMetrics::compute(&graph, &partition);
            assert!(
                metrics.replication_factor >= 1.0,
                "{}: RF {} < 1",
                algo.name(),
                metrics.replication_factor
            );
        }
    }
}

#[test]
fn structured_partitioners_beat_random_on_every_dataset_family() {
    // One power-law dataset and the genealogy dataset, small scale.
    for (id, scale) in [(DatasetId::G1, 0.3), (DatasetId::G9, 0.002)] {
        let graph = DatasetSpec::get(id).instantiate(scale, 5);
        let p = 8;
        let rf = |algo: &dyn EdgePartitioner| {
            let part = algo.partition(&graph, p).unwrap();
            PartitionMetrics::compute(&graph, &part).replication_factor
        };
        let rf_random = rf(&RandomPartitioner::new(1));
        let rf_tlp = rf(&TwoStageLocalPartitioner::new(TlpConfig::new().seed(1)));
        let rf_metis = rf(&MetisPartitioner::default());
        assert!(
            rf_tlp < rf_random,
            "{id}: TLP {rf_tlp} vs Random {rf_random}"
        );
        assert!(
            rf_metis < rf_random,
            "{id}: METIS {rf_metis} vs Random {rf_random}"
        );
    }
}

#[test]
fn two_stage_is_at_least_as_good_as_the_worse_single_stage() {
    // The paper's core ablation claim, in its weakest testable form: TLP is
    // never worse than *both* single-stage extremes. On a single seed this
    // is noise-dominated (any one run can land a bad seed vertex), so the
    // claim is asserted on seed-averaged RF, as the paper's tables are.
    let graph = DatasetSpec::get(DatasetId::G1).instantiate(0.4, 9);
    let p = 10;
    let mean_rf = |make: &dyn Fn(u64) -> Box<dyn EdgePartitioner>| {
        let seeds = [0u64, 1, 2, 3, 4];
        let total: f64 = seeds
            .iter()
            .map(|&s| {
                let part = make(s).partition(&graph, p).unwrap();
                PartitionMetrics::compute(&graph, &part).replication_factor
            })
            .sum();
        total / seeds.len() as f64
    };
    let tlp = mean_rf(&|s| Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(s))));
    let s1 = mean_rf(&|s| Box::new(StageOneOnlyPartitioner::new(TlpConfig::new().seed(s))));
    let s2 = mean_rf(&|s| Box::new(StageTwoOnlyPartitioner::new(TlpConfig::new().seed(s))));
    // 1% relative slack: the two-stage run is statistically tied with the
    // better extreme when the modularity switch rarely fires on a graph
    // this small; "materially worse than both" is what must never happen.
    assert!(
        tlp <= s1.max(s2) * 1.01 + 1e-9,
        "TLP {tlp} materially worse than both single stages ({s1}, {s2})"
    );
}

#[test]
fn partition_counts_of_the_paper_all_work() {
    let graph = DatasetSpec::get(DatasetId::G2).instantiate(0.05, 7);
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(4));
    for p in [10, 15, 20] {
        let partition = tlp.partition(&graph, p).unwrap();
        assert_eq!(partition.num_partitions(), p);
        let metrics = PartitionMetrics::compute(&graph, &partition);
        // Balance: no partition more than ~2x ideal (overshoot is bounded
        // by one vertex's degree; small graphs give some slack).
        assert!(
            metrics.balance < 2.5,
            "balance {} at p={p}",
            metrics.balance
        );
    }
}

#[test]
fn rf_grows_with_partition_count() {
    // More machines -> more replication, for every sane partitioner.
    let graph = DatasetSpec::get(DatasetId::G1).instantiate(0.3, 2);
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(3));
    let rf_at = |p: usize| {
        let part = tlp.partition(&graph, p).unwrap();
        PartitionMetrics::compute(&graph, &part).replication_factor
    };
    let (rf4, rf16) = (rf_at(4), rf_at(16));
    assert!(rf4 < rf16, "RF(4)={rf4} should be below RF(16)={rf16}");
}
