//! Tests pinned to specific claims and worked examples of the paper.

use tlp::baselines::RandomPartitioner;
use tlp::core::stage2::{delta_m, mu_s2};
use tlp::core::{
    EdgePartitioner, Modularity, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner,
};
use tlp::graph::generators::power_law_community;
use tlp::graph::GraphBuilder;

/// Claim 1 / Eq. 6: per-partition modularity is inversely tied to RF. On a
/// degree-regular graph the relationship is an exact identity:
/// `d * Σ_k |V(P_k)| = 2m + Σ_k X_k` where `X_k` are the external
/// incidences (our `PartitionMetrics` modularity denominator).
#[test]
fn claim1_identity_holds_exactly_on_regular_graphs() {
    // A cycle: every vertex has degree 2.
    let n = 40u32;
    let g = GraphBuilder::new()
        .add_edges((0..n).map(|v| (v, (v + 1) % n)))
        .build();
    for p in [2, 4, 8] {
        let part = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1))
            .partition(&g, p)
            .unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        // Reconstruct X_k from modularity = E_k / X_k.
        let sum_external: f64 = m
            .edge_counts
            .iter()
            .zip(&m.modularity)
            .map(|(&e, &mk)| {
                if e == 0 || mk.is_infinite() {
                    0.0
                } else {
                    e as f64 / mk
                }
            })
            .sum();
        let lhs = 2.0 * m.total_replicas as f64; // d = 2
        let rhs = 2.0 * g.num_edges() as f64 + sum_external;
        assert!(
            (lhs - rhs).abs() < 1e-6,
            "identity violated at p={p}: {lhs} vs {rhs}"
        );
    }
}

/// Claim 1, qualitative form: a partitioning with higher average
/// per-partition modularity has a lower replication factor.
#[test]
fn higher_modularity_means_lower_rf() {
    let g = power_law_community(2000, 12_000, 2.1, 20, 0.2, 7);
    let p = 8;
    let tlp_part = TwoStageLocalPartitioner::new(TlpConfig::new().seed(3))
        .partition(&g, p)
        .unwrap();
    let rnd_part = RandomPartitioner::new(3).partition(&g, p).unwrap();
    let tlp = PartitionMetrics::compute(&g, &tlp_part);
    let rnd = PartitionMetrics::compute(&g, &rnd_part);
    let mean = |xs: &[f64]| xs.iter().filter(|x| x.is_finite()).sum::<f64>() / xs.len() as f64;
    assert!(tlp.replication_factor < rnd.replication_factor);
    assert!(
        mean(&tlp.modularity) > mean(&rnd.modularity),
        "TLP modularity {:?} should exceed Random {:?}",
        tlp.modularity,
        rnd.modularity
    );
}

/// Table II boundary: M = 1 is the stage switch point.
#[test]
fn table2_stage_criterion() {
    assert!(Modularity::new(0, 5).is_stage_one()); // loose
    assert!(Modularity::new(5, 5).is_stage_one()); // boundary -> Stage I
    assert!(!Modularity::new(6, 5).is_stage_one()); // tight -> Stage II
}

/// Fig. 5 worked example: M = 2/3 is Stage I, M = 5 is Stage II.
#[test]
fn fig5_worked_example() {
    let a = Modularity::new(2, 3);
    assert!((a.value() - 0.67).abs() < 0.01);
    assert!(a.is_stage_one());
    let b = Modularity::new(5, 1);
    assert_eq!(b.value(), 5.0);
    assert!(!b.is_stage_one());
}

/// Fig. 7 worked example: E=5, E_out=4; ΔM(g)=0.25, ΔM(e)=2.75, e wins.
#[test]
fn fig7_worked_example() {
    let dm_g = delta_m(5, 4, 1, 1);
    let dm_e = delta_m(5, 4, 3, 1);
    assert!((dm_g - 0.25).abs() < 1e-12);
    assert!((dm_e - 2.75).abs() < 1e-12);
    assert!(mu_s2(5, 4, 3, 1) > mu_s2(5, 4, 1, 1));
}

/// §III-E space claim: the partitioner's per-round state is the partition
/// plus its frontier — nothing proportional to already-emitted partitions.
/// Indirect test: partitioning succeeds and stays balanced even when p is
/// large relative to the graph, where any "keep everything" bug would show
/// up as starved rounds.
#[test]
fn many_small_partitions_stay_covered() {
    let g = power_law_community(1000, 6000, 2.1, 10, 0.2, 5);
    let part = TwoStageLocalPartitioner::new(TlpConfig::new().seed(8))
        .partition(&g, 50)
        .unwrap();
    assert_eq!(part.edge_counts().iter().sum::<usize>(), 6000);
    let nonempty = part.edge_counts().iter().filter(|&&c| c > 0).count();
    assert!(nonempty >= 45, "only {nonempty}/50 partitions used");
}

/// Table VI claim: Stage I selections have much higher average degree than
/// Stage II selections on heavy-tailed graphs.
#[test]
fn table6_stage_degree_gap() {
    let g = power_law_community(2000, 14_000, 2.0, 20, 0.25, 9);
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
    let (_, trace) = tlp.partition_with_trace(&g, 10).unwrap();
    let s = trace.stage_degree_summary();
    assert!(s.stage1_count > 0 && s.stage2_count > 0);
    assert!(
        s.stage1_avg_degree > 1.5 * s.stage2_avg_degree,
        "stage I {} vs stage II {}",
        s.stage1_avg_degree,
        s.stage2_avg_degree
    );
}
