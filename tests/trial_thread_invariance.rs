//! Thread-count invariance of the parallel trial runner.
//!
//! PR 1 promised that `--threads` is a throughput knob only: the winning
//! trial (ties broken by lowest trial index), its partition, and the full
//! per-trial RF vector are a function of the seed matrix alone. This pins
//! that promise over a seed × trials matrix at 1 vs. N worker threads, for
//! both selection-strategy fast paths.

use tlp::core::{ParallelTrialRunner, SelectionStrategy, TlpConfig};
use tlp::graph::generators::{chung_lu, rmat, RmatProbabilities};
use tlp::graph::CsrGraph;

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chung_lu", chung_lu(250, 1100, 2.2, 11)),
        ("rmat", rmat(8, 700, RmatProbabilities::default(), 12)),
    ]
}

#[test]
fn trial_results_are_invariant_under_thread_count() {
    for (name, graph) in graphs() {
        for strategy in [
            SelectionStrategy::IndexedHeap,
            SelectionStrategy::Incremental,
        ] {
            for seed in [0u64, 7, 42] {
                for trials in [2usize, 5] {
                    let base = TlpConfig::new()
                        .seed(seed)
                        .trials(trials)
                        .selection_strategy(strategy);
                    let single = ParallelTrialRunner::new(base.threads(1))
                        .run(&graph, 6)
                        .expect("single-threaded run failed");
                    for threads in [2usize, 4, 0] {
                        let multi = ParallelTrialRunner::new(base.threads(threads))
                            .run(&graph, 6)
                            .expect("multi-threaded run failed");
                        let label = format!(
                            "{name} {strategy:?} seed={seed} trials={trials} threads={threads}"
                        );
                        assert_eq!(single.best_trial, multi.best_trial, "{label}: winner");
                        assert_eq!(single.partition, multi.partition, "{label}: partition");
                        assert_eq!(single.trial_rfs, multi.trial_rfs, "{label}: RF vector");
                    }
                }
            }
        }
    }
}

/// The tie-break promise specifically: when several trials produce the same
/// best RF, the lowest trial index must win regardless of which worker
/// finished first. A single-partition run forces RF = 1.0 for every trial,
/// making every trial a tie.
#[test]
fn tied_trials_resolve_to_lowest_index_at_any_thread_count() {
    let graph = chung_lu(150, 600, 2.2, 3);
    for threads in [1usize, 2, 4, 0] {
        let config = TlpConfig::new().seed(5).trials(6).threads(threads);
        let report = ParallelTrialRunner::new(config)
            .run(&graph, 1)
            .expect("run failed");
        assert!(report.trial_rfs.iter().all(|&rf| rf == 1.0));
        assert_eq!(
            report.best_trial, 0,
            "threads={threads}: tie must go to trial 0"
        );
    }
}
