//! Scan-vs-incremental differential suite.
//!
//! The engine's fast paths — the lazy-heap selectors, the dirty-marking
//! `Incremental` strategy, the intersection kernels, the degree-bound
//! pruning, and the per-admission count cache — are all claimed to be
//! *value-neutral*: they must change cost only, never a selection. These
//! tests pin that claim by running the reference `LinearScan` strategy
//! (Algorithm 1 as written, with from-scratch frontier scans) against both
//! indexed strategies across every generator family, both reseed policies,
//! and p ∈ {4, 8, 32}, asserting bit-identical assignments; the kernels
//! are additionally checked pairwise on real adjacency slices.

use tlp::core::{
    EdgePartition, EdgePartitioner, ReseedPolicy, SelectionStrategy, TlpConfig,
    TwoStageLocalPartitioner,
};
use tlp::graph::generators::{
    barabasi_albert, chung_lu, erdos_renyi, genealogy, power_law_community, rmat, RmatProbabilities,
};
use tlp::graph::intersect::{
    galloping_intersection_size, merge_intersection_size, sorted_intersection_size,
    IntersectionKernel,
};
use tlp::graph::CsrGraph;

/// One representative per generator family, small enough that the full
/// strategy × reseed × p matrix stays fast.
fn generator_zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chung_lu", chung_lu(300, 1500, 2.1, 5)),
        ("erdos_renyi", erdos_renyi(200, 600, 6)),
        ("genealogy", genealogy(400, 650, 7)),
        ("barabasi_albert", barabasi_albert(250, 3, 8)),
        ("rmat", rmat(8, 900, RmatProbabilities::default(), 9)),
        (
            "power_law_community",
            power_law_community(300, 1200, 2.1, 6, 0.25, 10),
        ),
    ]
}

fn run_with(
    graph: &CsrGraph,
    p: usize,
    seed: u64,
    reseed: ReseedPolicy,
    strategy: SelectionStrategy,
) -> EdgePartition {
    let config = TlpConfig::new()
        .seed(seed)
        .reseed_policy(reseed)
        .selection_strategy(strategy);
    TwoStageLocalPartitioner::new(config)
        .partition(graph, p)
        .expect("partitioning failed")
}

/// The full differential matrix: every generator family, both reseed
/// policies, p ∈ {4, 8, 32}, both indexed strategies against the scan.
#[test]
fn indexed_strategies_are_bit_identical_to_scan() {
    for (name, graph) in generator_zoo() {
        for reseed in [ReseedPolicy::Reseed, ReseedPolicy::Break] {
            for p in [4, 8, 32] {
                for seed in [0u64, 1] {
                    let scan = run_with(&graph, p, seed, reseed, SelectionStrategy::LinearScan);
                    for strategy in [
                        SelectionStrategy::IndexedHeap,
                        SelectionStrategy::Incremental,
                    ] {
                        let fast = run_with(&graph, p, seed, reseed, strategy);
                        assert_eq!(
                            scan, fast,
                            "{name}: {strategy:?} diverged from LinearScan \
                             (reseed {reseed:?}, p={p}, seed={seed})"
                        );
                    }
                }
            }
        }
    }
}

/// The galloping and bitset kernels individually agree with the adaptive
/// dispatcher (and with each other) on real adjacency slices — including
/// the skewed hub-vs-leaf pairs that trigger the galloping path.
#[test]
fn kernels_agree_on_generated_adjacency() {
    for (name, graph) in generator_zoo() {
        let mut kernel = IntersectionKernel::new(graph.num_vertices());
        let n = graph.num_vertices() as u32;
        // Deterministic pair sample: stride through (v, v*7+13 mod n).
        for v in 0..n {
            let u = (v * 7 + 13) % n;
            let (a, b) = (graph.neighbors(v), graph.neighbors(u));
            let reference = sorted_intersection_size(a, b);
            assert_eq!(merge_intersection_size(a, b), reference, "{name} merge");
            assert_eq!(
                galloping_intersection_size(a, b),
                reference,
                "{name} gallop"
            );
            assert_eq!(
                kernel.bitset_intersection_size(a, b),
                reference,
                "{name} bitset"
            );
            // The loaded-member path (what the engine actually runs).
            kernel.load(&graph, u);
            assert_eq!(
                kernel.count_with_loaded(&graph, v),
                reference,
                "{name} loaded"
            );
        }
    }
}

/// The per-round trace counters must show the degree-bound pruning and the
/// admission cache actually cutting work on a non-trivial graph — and the
/// counters must be identical across strategies (scoring is shared engine
/// state, independent of how the argmax is located).
#[test]
fn trace_counters_show_pruned_and_cached_work() {
    let graph = chung_lu(400, 2400, 2.1, 4);
    let mut per_strategy = Vec::new();
    for strategy in [
        SelectionStrategy::LinearScan,
        SelectionStrategy::IndexedHeap,
        SelectionStrategy::Incremental,
    ] {
        let config = TlpConfig::new().seed(2).selection_strategy(strategy);
        let (_, trace) = TwoStageLocalPartitioner::new(config)
            .partition_with_trace(&graph, 4)
            .expect("partitioning failed");
        let rounds = trace.round_scoring().to_vec();
        assert!(!rounds.is_empty(), "no per-round scoring recorded");
        let rescored: u64 = rounds.iter().map(|r| r.rescored).sum();
        let skipped: u64 = rounds.iter().map(|r| r.skipped).sum();
        let cache_hits: u64 = rounds.iter().map(|r| r.cache_hits).sum();
        assert!(rescored > 0, "{strategy:?}: no terms were ever computed");
        assert!(
            skipped > 0,
            "{strategy:?}: degree-bound pruning never fired on a non-trivial graph"
        );
        assert!(
            cache_hits > 0,
            "{strategy:?}: admission cache never hit on a non-trivial graph"
        );
        per_strategy.push(rounds);
    }
    assert_eq!(per_strategy[0], per_strategy[1]);
    assert_eq!(per_strategy[0], per_strategy[2]);
}
