//! Observability conformance: every built-in algorithm, run through the
//! registry with a recording observer, emits the mandatory span skeleton
//! (`run` → `trial` → `round`/`pass`) and a `run.edges` counter covering
//! every edge. Streaming algorithms additionally emit per-chunk
//! `stream.*` counters whose totals match the source's [`PassStats`]
//! accounting (two passes over every edge).

use tlp::core::{AlgoConfig, Capability};
use tlp::graph::generators::chung_lu;
use tlp::graph::CsrSource;
use tlp::obs::{Event, EventKind, Field};
use tlp::pipeline::{builtin_names, builtin_registry};

const P: usize = 8;

fn spec_of(name: &str) -> String {
    if name == "tlp-r" {
        "tlp-r=0.3".to_string()
    } else {
        name.to_string()
    }
}

fn span_opens<'e>(events: &'e [Event], span: &str) -> Vec<&'e Event> {
    events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::SpanOpen { name, .. } if name == span))
        .collect()
}

fn counter_total(events: &[Event], counter: &str) -> u64 {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Counter { name, delta } if name == counter => Some(*delta),
            _ => None,
        })
        .sum()
}

#[test]
fn every_builtin_emits_the_mandatory_span_skeleton() {
    let graph = chung_lu(800, 3200, 2.2, 19);
    let registry = builtin_registry();
    let config = AlgoConfig::seeded(29);

    for name in builtin_names() {
        let spec = spec_of(name);
        let entry = registry.entry_of(&spec).expect("registered");
        let (artifact, events) = registry
            .run_recorded(&spec, &config, &mut CsrSource::new(&graph), P)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        // The root `run` span carries the algorithm label and p.
        let runs = span_opens(&events, "run");
        assert_eq!(runs.len(), 1, "{name}: expected exactly one run span");
        let EventKind::SpanOpen { fields, parent, .. } = &runs[0].kind else {
            unreachable!()
        };
        assert_eq!(*parent, None, "{name}: run span must be the root");
        assert!(
            fields.iter().any(|(k, _)| k == "algorithm"),
            "{name}: run span lost its algorithm field"
        );
        assert!(
            fields
                .iter()
                .any(|(k, v)| k == "p" && *v == Field::U64(P as u64)),
            "{name}: run span lost its p field"
        );

        // At least one trial, and inside it real work: engine rounds or
        // streaming/materialized passes.
        assert!(
            !span_opens(&events, "trial").is_empty(),
            "{name}: no trial span"
        );
        let rounds = span_opens(&events, "round").len();
        let passes = span_opens(&events, "pass").len();
        assert!(
            rounds + passes > 0,
            "{name}: no round or pass span under the trial"
        );

        // Every edge is accounted for exactly once at the run level.
        assert_eq!(
            counter_total(&events, "run.edges"),
            graph.num_edges() as u64,
            "{name}: run.edges does not cover the graph"
        );

        // Streaming baselines chunk the source twice (place + replay) and
        // must report exactly two passes' worth of edges.
        if entry.capability == Capability::Streaming {
            assert_eq!(
                counter_total(&events, "stream.edges"),
                2 * graph.num_edges() as u64,
                "{name}: stream.edges != two full passes"
            );
            assert!(
                counter_total(&events, "stream.chunk") >= 2,
                "{name}: fewer stream chunks than passes"
            );
        }

        // The folded report on the artifact agrees with the raw stream.
        let report = artifact.obs.expect("recorded run keeps its report");
        assert_eq!(report.events, events.len() as u64, "{name}");
        assert!(
            report.spans.iter().any(|s| s.name == "run"),
            "{name}: report lost the run span"
        );
    }
}

#[test]
fn kernel_and_scoring_counters_surface_for_the_paper_algorithm() {
    let graph = chung_lu(800, 3200, 2.2, 19);
    let registry = builtin_registry();
    let config = AlgoConfig::seeded(29);
    let (_, events) = registry
        .run_recorded("tlp", &config, &mut CsrSource::new(&graph), P)
        .expect("tlp run");
    for counter in [
        "round.select",
        "round.edges",
        "scoring.rescored",
        "kernel.load",
    ] {
        assert!(
            counter_total(&events, counter) > 0,
            "tlp run emitted no {counter} counts"
        );
    }
    // Every span that opens also closes, with balanced ids per trial.
    let mut open: std::collections::HashSet<(Option<u32>, u64)> = std::collections::HashSet::new();
    for event in &events {
        match &event.kind {
            EventKind::SpanOpen { id, .. } => {
                assert!(open.insert((event.trial, *id)), "span id reused while open");
            }
            EventKind::SpanClose { id, .. } => {
                assert!(open.remove(&(event.trial, *id)), "close without open");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "spans left open: {open:?}");
}
