//! Format compatibility: the checked-in golden v1 `.tlpg` bytes must stay
//! readable forever, and every source of the same graph — a v1 file
//! (decode + CSR rebuild), a v2 file (zero-copy arena), and an in-memory
//! CSR — must produce bit-identical partitions and metrics.
//!
//! To regenerate the fixture after an intentional v1 *writer* change (the
//! reader must still accept the old bytes!):
//!
//! ```text
//! TLP_GOLDEN_UPDATE=1 cargo test --test format_compat
//! ```

use std::path::PathBuf;
use tlp::core::{AlgoConfig, Capability};
use tlp::graph::generators::erdos_renyi;
use tlp::graph::{CsrGraph, CsrSource};
use tlp::pipeline::{builtin_names, builtin_registry};
use tlp::store::{
    write_graph, BinaryFileSource, FormatVersion, LoadedGraph, StoreReader, WriteOptions,
    VERSION_V2,
};

const P: usize = 8;

/// The graph the golden fixture was generated from.
fn fixture_graph() -> CsrGraph {
    erdos_renyi(128, 512, 21)
}

/// Original-id map stamped into the fixture (a non-identity mapping, so an
/// ids regression cannot hide behind the identity default).
fn fixture_ids(n: usize) -> Vec<u64> {
    (0..n as u64).map(|v| v * 10 + 7).collect()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("graph_v1.tlpg")
}

#[test]
fn golden_v1_bytes_still_open() {
    let path = fixture_path();
    let graph = fixture_graph();
    let ids = fixture_ids(graph.num_vertices());
    if std::env::var("TLP_GOLDEN_UPDATE").is_ok() {
        let options = WriteOptions {
            original_ids: Some(ids.clone()),
            source: None,
            version: FormatVersion::V1,
        };
        write_graph(&path, &graph, &options).unwrap();
    }

    // Raw decode path.
    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.version(), 1, "fixture is not a v1 file");
    let stored = reader.read_graph().unwrap();
    assert_eq!(stored.graph, graph, "golden v1 bytes decoded differently");
    assert_eq!(stored.original_ids.as_deref(), Some(ids.as_slice()));

    // Unified open path: a v1 file comes back decoded, not as an arena.
    let loaded = LoadedGraph::open(&path).unwrap();
    assert_eq!(loaded.format_version(), 1);
    assert_eq!(loaded.view().to_csr_graph(), graph);
    assert_eq!(loaded.original_ids(), Some(ids.as_slice()));
}

/// Runs every built-in algorithm from four sources of the same graph —
/// in-memory CSR, v1 file view, v2 arena view, and (for streaming-capable
/// algorithms) bounded disk streams of both files — and demands
/// bit-identical assignments and metrics everywhere.
#[test]
fn partitions_bit_identical_across_v1_v2_and_memory_sources() {
    let graph = erdos_renyi(600, 2400, 33);
    let dir = std::env::temp_dir().join(format!("tlp-format-compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let v1_path = dir.join("graph_v1.tlpg");
    let v2_path = dir.join("graph_v2.tlpg");
    for (path, version) in [(&v1_path, FormatVersion::V1), (&v2_path, FormatVersion::V2)] {
        let options = WriteOptions {
            version,
            ..WriteOptions::default()
        };
        write_graph(path, &graph, &options).unwrap();
    }

    let v1 = LoadedGraph::open(&v1_path).unwrap();
    let v2 = LoadedGraph::open(&v2_path).unwrap();
    assert_eq!(v1.format_version(), 1);
    assert_eq!(v2.format_version(), VERSION_V2);

    let registry = builtin_registry();
    let config = AlgoConfig::seeded(47);
    for name in builtin_names() {
        let spec = if name == "tlp-r" {
            "tlp-r=0.3".to_string()
        } else {
            name.to_string()
        };
        let reference = registry
            .run(&spec, &config, &mut CsrSource::new(&graph), P)
            .unwrap_or_else(|e| panic!("{name} from memory failed: {e}"));

        for (label, loaded) in [("v1", &v1), ("v2", &v2)] {
            let from_file = registry
                .run(&spec, &config, &mut CsrSource::new(loaded.view()), P)
                .unwrap_or_else(|e| panic!("{name} from {label} view failed: {e}"));
            assert_eq!(
                from_file.partition, reference.partition,
                "{name}: {label} view and in-memory runs placed edges differently"
            );
            assert_eq!(
                from_file.metrics, reference.metrics,
                "{name}: {label} view and in-memory artifacts disagree on metrics"
            );
        }

        if registry.entry_of(&spec).unwrap().capability == Capability::Streaming {
            for (label, path) in [("v1", &v1_path), ("v2", &v2_path)] {
                let mut stream = BinaryFileSource::open(path, 128)
                    .unwrap()
                    .strict_streaming(true);
                let from_stream = registry
                    .run(&spec, &config, &mut stream, P)
                    .unwrap_or_else(|e| panic!("{name} from {label} stream failed: {e}"));
                assert_eq!(
                    from_stream.partition, reference.partition,
                    "{name}: {label} stream and in-memory runs placed edges differently"
                );
            }
        }
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
