//! End-to-end check of the paper's Claim 1: the replication factor of a
//! partitioning decomposes as `RF = 1 + (1/p) Σ_k 1/M(P_k)` over a
//! per-partition compactness quantity `M(P_k)`.
//!
//! The derivation pinning the exact form used here: with `N` the number of
//! covered vertices and `S_v` the set of partitions vertex `v` appears in,
//!
//! ```text
//! RF = (1/N) Σ_v |S_v| = 1 + (1/N) Σ_v (|S_v| - 1).
//! ```
//!
//! Attributing each vertex's `|S_v| - 1` *extra* replicas to the non-home
//! partitions it appears in (home = lowest partition id in `S_v`) gives
//! per-partition counts `R_k` with `Σ_k R_k = Σ_v (|S_v| - 1)`, hence with
//! `M(P_k) := (N/p) / R_k` (average covered vertices per partition over
//! the extra replicas partition k caused):
//!
//! ```text
//! RF = 1 + (1/N) Σ_k R_k = 1 + (1/p) Σ_k 1/M(P_k)    — exactly.
//! ```
//!
//! A partition whose every vertex is home-owned has `R_k = 0`, i.e.
//! `M(P_k) = ∞` and a zero contribution — the same convention
//! `Modularity::value()` uses for `external == 0`, which is unit-tested
//! here alongside the end-to-end identity.

use tlp::core::{
    EdgePartition, EdgePartitioner, Modularity, PartitionMetrics, TlpConfig,
    TwoStageLocalPartitioner,
};
use tlp::graph::generators::{chung_lu, erdos_renyi, genealogy, rmat, RmatProbabilities};
use tlp::graph::CsrGraph;

/// Extra (non-home) replicas attributed to each partition: vertex `v`
/// counts once towards every partition in `S_v` except the lowest id.
fn extra_replicas_per_partition(graph: &CsrGraph, partition: &EdgePartition) -> Vec<usize> {
    let mut extra = vec![0usize; partition.num_partitions()];
    let mut pids: Vec<u32> = Vec::new();
    for v in graph.vertices() {
        pids.clear();
        pids.extend(graph.incident(v).map(|(_, e)| partition.partition_of(e)));
        pids.sort_unstable();
        pids.dedup();
        // Home partition = lowest id; every other appearance is a replica.
        for &pid in pids.iter().skip(1) {
            extra[pid as usize] += 1;
        }
    }
    extra
}

/// Asserts Claim 1's decomposition on a finished partitioning.
fn assert_claim1(graph: &CsrGraph, partition: &EdgePartition, label: &str) {
    let metrics = PartitionMetrics::compute(graph, partition);
    let p = partition.num_partitions();
    let n = metrics.covered_vertices as f64;
    let extra = extra_replicas_per_partition(graph, partition);

    // Σ_k R_k must equal the total number of extra replicas.
    assert_eq!(
        extra.iter().sum::<usize>(),
        metrics.total_replicas - metrics.covered_vertices,
        "{label}: replica attribution lost replicas"
    );

    // RF = 1 + (1/p) Σ_k 1/M(P_k) with M(P_k) = (N/p) / R_k; partitions
    // with R_k = 0 have infinite compactness and contribute nothing.
    let sum_inverse: f64 = extra
        .iter()
        .map(|&r_k| {
            let m_k = (n / p as f64) / r_k as f64; // ∞ when r_k == 0
            1.0 / m_k
        })
        .sum();
    let claimed_rf = 1.0 + sum_inverse / p as f64;
    assert!(
        (claimed_rf - metrics.replication_factor).abs() < 1e-9,
        "{label}: Claim 1 violated: decomposition {claimed_rf} vs measured RF {}",
        metrics.replication_factor
    );
}

#[test]
fn claim1_holds_on_generated_graphs() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("chung_lu", chung_lu(300, 1400, 2.1, 3)),
        ("erdos_renyi", erdos_renyi(200, 700, 4)),
        ("genealogy", genealogy(350, 580, 5)),
        ("rmat", rmat(8, 800, RmatProbabilities::default(), 6)),
    ];
    for (name, graph) in &graphs {
        for p in [2, 4, 8] {
            for seed in [0u64, 1] {
                let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed));
                let partition = tlp.partition(graph, p).expect("partitioning failed");
                assert_claim1(graph, &partition, &format!("{name} p={p} seed={seed}"));
            }
        }
    }
}

/// Claim 1's boundary case: a single partition replicates nothing, so the
/// sum of inverse compactness is zero and RF is exactly 1.
#[test]
fn claim1_single_partition_is_exact_one() {
    let graph = chung_lu(200, 900, 2.2, 7);
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
    let partition = tlp.partition(&graph, 1).expect("partitioning failed");
    let metrics = PartitionMetrics::compute(&graph, &partition);
    assert_eq!(metrics.replication_factor, 1.0);
    assert_claim1(&graph, &partition, "single partition");
}

/// The identity also holds for hand-built (non-TLP) assignments — it is a
/// property of the decomposition, not of the algorithm.
#[test]
fn claim1_holds_for_arbitrary_assignment() {
    let graph = erdos_renyi(120, 500, 9);
    let assignment: Vec<u32> = (0..graph.num_edges() as u32).map(|e| e % 5).collect();
    let partition = EdgePartition::new(5, assignment).expect("valid assignment");
    assert_claim1(&graph, &partition, "round-robin assignment");
}

/// `Modularity::value()` at `external == 0`: an allocated-but-isolated
/// partition is infinitely modular (and Stage II), while the empty
/// partition is 0 (and Stage I) — no division-by-zero NaN in either case.
#[test]
fn modularity_value_with_zero_external_edge_cases() {
    let isolated = Modularity::new(7, 0);
    assert!(isolated.value().is_infinite());
    assert!(isolated.value() > 0.0, "must be +inf, not -inf");
    assert!(!isolated.value().is_nan());
    assert!(!isolated.is_stage_one());

    let empty = Modularity::new(0, 0);
    assert_eq!(empty.value(), 0.0);
    assert!(!empty.value().is_nan());
    assert!(empty.is_stage_one());
}
