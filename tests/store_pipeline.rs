//! End-to-end store pipeline through the CLI binary: text edge list →
//! `.tlpg` binary → `tlp-cli partition --format bin --stream-budget N
//! --out-store DIR` → metrics identical to an in-memory run, and the
//! written partition store recomputes those metrics exactly.

use std::path::{Path, PathBuf};
use std::process::Command;
use tlp::baselines::{EdgeOrder, HdrfPartitioner};
use tlp::core::{EdgePartitioner, PartitionMetrics};
use tlp::graph::generators::chung_lu;
use tlp::graph::io;
use tlp::store::{write_graph, PartitionStoreReader, WriteOptions};

const P: usize = 8;
const BUDGET: usize = 1024;

struct Setup {
    dir: PathBuf,
    bin: PathBuf,
    /// The graph exactly as the CLI will see it (parsed back from text, so
    /// vertex ids went through the loader's first-seen interning).
    graph: tlp::graph::CsrGraph,
}

fn setup(tag: &str) -> Setup {
    let dir = std::env::temp_dir().join(format!("tlp-store-pipeline-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let generated = chung_lu(1_500, 6_000, 2.2, 31);
    let text = dir.join("graph.txt");
    let file = std::fs::File::create(&text).unwrap();
    io::write_edge_list(&generated, std::io::BufWriter::new(file)).unwrap();

    // Parse the text back so the reference graph matches the binary's
    // (interned) vertex ids, then convert that to the binary store.
    let loaded = io::read_edge_list_file(&text).unwrap();
    let bin = dir.join("graph.tlpg");
    let options = WriteOptions {
        original_ids: Some(loaded.original_ids),
        ..WriteOptions::default()
    };
    write_graph(&bin, &loaded.graph, &options).unwrap();

    Setup {
        dir,
        bin,
        graph: loaded.graph,
    }
}

fn run_cli(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_tlp-cli"))
        .args(args)
        .output()
        .expect("run tlp-cli");
    assert!(
        output.status.success(),
        "tlp-cli {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap()
}

fn field<'a>(stdout: &'a str, name: &str) -> &'a str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(name))
        .unwrap_or_else(|| panic!("no {name:?} line in output:\n{stdout}"))
        .trim()
}

#[test]
fn cli_streams_binary_store_and_roundtrips_the_partition_store() {
    let s = setup("bin");
    let store_dir = s.dir.join("parts");
    let stdout = run_cli(&[
        "partition",
        "--input",
        s.bin.to_str().unwrap(),
        "--partitions",
        &P.to_string(),
        "--algorithm",
        "hdrf",
        "--format",
        "bin",
        "--stream-budget",
        &BUDGET.to_string(),
        "--out-store",
        store_dir.to_str().unwrap(),
    ]);

    // The streamed run must report exactly what an in-memory natural-order
    // HDRF run computes (λ matches the CLI's placer).
    let reference = HdrfPartitioner::new(EdgeOrder::Natural, 1.1)
        .unwrap()
        .partition(&s.graph, P)
        .unwrap();
    let live = PartitionMetrics::compute(&s.graph, &reference);
    assert_eq!(
        field(&stdout, "replication factor:"),
        format!("{:.4}", live.replication_factor)
    );
    assert_eq!(field(&stdout, "balance:"), format!("{:.4}", live.balance));
    assert_eq!(
        field(&stdout, "spanned vertices:"),
        live.spanned_vertices.to_string()
    );
    let peak: usize = field(&stdout, "peak edge buffer:").parse().unwrap();
    assert!(peak <= BUDGET, "peak {peak} exceeds budget {BUDGET}");

    // The partition store the CLI wrote recomputes those metrics exactly —
    // manifest-level and from the reloaded segments.
    let reader = PartitionStoreReader::open(Path::new(&store_dir)).unwrap();
    assert_eq!(
        reader.manifest().replication_factor(),
        live.replication_factor
    );
    assert_eq!(reader.manifest().balance(), live.balance);
    let recomputed = reader.recompute_metrics().unwrap();
    assert_eq!(recomputed, live);

    std::fs::remove_dir_all(&s.dir).unwrap();
}

#[test]
fn format_auto_sniffs_binary_and_matches_text_input() {
    let s = setup("auto");
    let common = |input: &str, format: &str| {
        run_cli(&[
            "partition",
            "--input",
            input,
            "--partitions",
            &P.to_string(),
            "--algorithm",
            "hdrf",
            "--format",
            format,
            "--stream-budget",
            &BUDGET.to_string(),
        ])
    };
    let from_bin_auto = common(s.bin.to_str().unwrap(), "auto");
    let text = s.dir.join("graph.txt");
    let from_text = common(text.to_str().unwrap(), "text");
    for name in ["replication factor:", "balance:", "spanned vertices:"] {
        assert_eq!(
            field(&from_bin_auto, name),
            field(&from_text, name),
            "binary (auto) and text runs disagree on {name:?}"
        );
    }
    std::fs::remove_dir_all(&s.dir).unwrap();
}
