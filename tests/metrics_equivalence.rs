//! Every metrics path in the workspace reports the same numbers,
//! bit-for-bit: the canonical [`PartitionMetrics::compute`], the two-pass
//! [`StreamedMetrics`] accumulator (used by streaming pipeline runs), the
//! partition-store manifest's `replication_factor()` / `balance()`, and the
//! store reader's full `recompute_metrics()`.
//!
//! Four generator families × p ∈ {4, 8, 32}.

use tlp::core::{EdgePartition, PartitionMetrics, StreamedMetrics};
use tlp::graph::generators as gen;
use tlp::graph::CsrGraph;
use tlp::store::{write_partition_store, PartitionStoreReader};

/// A deterministic, well-spread assignment (multiplicative hash of the
/// edge id) so every partition gets edges and plenty of vertices span.
fn hashed_partition(graph: &CsrGraph, p: usize) -> EdgePartition {
    let assign: Vec<u32> = (0..graph.num_edges() as u64)
        .map(|e| (e.wrapping_mul(2654435761) % p as u64) as u32)
        .collect();
    EdgePartition::new(p, assign).expect("valid assignment")
}

/// Replays the `(edge, assignment)` sequence through the streaming
/// accumulator exactly as a bounded-memory pipeline run would.
fn streamed(graph: &CsrGraph, partition: &EdgePartition, p: usize) -> PartitionMetrics {
    let mut acc = StreamedMetrics::new(graph.num_vertices(), p);
    for (eid, edge) in graph.edges().iter().enumerate() {
        let (u, v) = edge.endpoints();
        acc.observe_assignment(u, v, partition.partition_of(eid as u32));
    }
    for (eid, edge) in graph.edges().iter().enumerate() {
        let (u, v) = edge.endpoints();
        acc.observe_external(u, v, partition.partition_of(eid as u32));
    }
    acc.finish()
}

fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chung-lu", gen::chung_lu(800, 3200, 2.2, 11)),
        ("erdos-renyi", gen::erdos_renyi(800, 3200, 12)),
        ("barabasi-albert", gen::barabasi_albert(800, 4, 13)),
        (
            "rmat",
            gen::rmat(10, 3200, gen::RmatProbabilities::default(), 14),
        ),
    ]
}

#[test]
fn all_metric_paths_agree_bit_for_bit() {
    let base = std::env::temp_dir().join(format!("tlp-metrics-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for (family, graph) in families() {
        for p in [4usize, 8, 32] {
            let partition = hashed_partition(&graph, p);
            let canonical = PartitionMetrics::compute(&graph, &partition);

            let accumulated = streamed(&graph, &partition, p);
            assert_eq!(
                accumulated, canonical,
                "{family} p={p}: StreamedMetrics drifted from compute()"
            );

            let dir = base.join(format!("{family}-{p}"));
            let manifest = write_partition_store(&dir, &graph, &partition)
                .unwrap_or_else(|e| panic!("{family} p={p}: write store: {e}"));
            assert_eq!(
                manifest.replication_factor(),
                canonical.replication_factor,
                "{family} p={p}: manifest RF drifted"
            );
            assert_eq!(
                manifest.balance(),
                canonical.balance,
                "{family} p={p}: manifest balance drifted"
            );

            let reader = PartitionStoreReader::open(&dir)
                .unwrap_or_else(|e| panic!("{family} p={p}: open store: {e}"));
            let recomputed = reader
                .recompute_metrics()
                .unwrap_or_else(|e| panic!("{family} p={p}: recompute: {e}"));
            assert_eq!(
                recomputed, canonical,
                "{family} p={p}: store recompute drifted from compute()"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
