//! Determinism contract of the observability layer.
//!
//! Observation must be strictly passive: an observed run's assignment is
//! bit-identical to the unobserved run, and the event stream itself is a
//! pure function of (graph, seed, config) — two same-seed runs emit
//! byte-identical canonical streams, and the worker thread count does not
//! change the merged stream (per-trial events are replayed in trial
//! order, never interleaved in completion order).

use tlp::core::AlgoConfig;
use tlp::graph::generators::{barabasi_albert, chung_lu, erdos_renyi};
use tlp::graph::{CsrGraph, CsrSource};
use tlp::obs::{canonical_lines, Event, EventKind};
use tlp::pipeline::builtin_registry;

const PARTITION_COUNTS: [usize; 3] = [4, 8, 32];

/// Three structurally different generator families, all small enough to
/// keep the full matrix fast (~2-4k edges each).
fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chung-lu", chung_lu(600, 2400, 2.2, 11)),
        ("erdos-renyi", erdos_renyi(700, 2800, 12)),
        ("barabasi-albert", barabasi_albert(600, 4, 13)),
    ]
}

#[test]
fn observed_runs_are_assignment_bit_identical_to_unobserved() {
    let registry = builtin_registry();
    for (family, graph) in families() {
        for p in PARTITION_COUNTS {
            for spec in ["tlp", "hdrf"] {
                let config = AlgoConfig::seeded(7);
                let plain = registry
                    .run(spec, &config, &mut CsrSource::new(&graph), p)
                    .unwrap_or_else(|e| panic!("{family}/{spec}/p={p} unobserved: {e}"));
                let (observed, events) = registry
                    .run_recorded(spec, &config, &mut CsrSource::new(&graph), p)
                    .unwrap_or_else(|e| panic!("{family}/{spec}/p={p} observed: {e}"));
                assert_eq!(
                    observed.partition, plain.partition,
                    "{family}/{spec}/p={p}: observation changed the assignment"
                );
                assert_eq!(
                    observed.metrics, plain.metrics,
                    "{family}/{spec}/p={p}: observation changed the metrics"
                );
                assert!(
                    !events.is_empty(),
                    "{family}/{spec}/p={p}: observed run emitted no events"
                );
                assert!(
                    observed.obs.is_some(),
                    "{family}/{spec}/p={p}: artifact missing its obs report"
                );
            }
        }
    }
}

#[test]
fn same_seed_runs_emit_byte_identical_event_streams() {
    let registry = builtin_registry();
    for (family, graph) in families() {
        for p in PARTITION_COUNTS {
            let config = AlgoConfig::seeded(23);
            let record = || {
                let (_, events) = registry
                    .run_recorded("tlp", &config, &mut CsrSource::new(&graph), p)
                    .unwrap_or_else(|e| panic!("{family}/p={p}: {e}"));
                events
            };
            let first = record();
            let second = record();
            assert_eq!(
                canonical_lines(&first),
                canonical_lines(&second),
                "{family}/p={p}: same-seed event streams diverged"
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_the_event_stream() {
    let registry = builtin_registry();
    for (family, graph) in families() {
        for p in PARTITION_COUNTS {
            let record = |threads: usize| {
                let config = AlgoConfig {
                    seed: 31,
                    trials: 4,
                    threads,
                    ..AlgoConfig::default()
                };
                registry
                    .run_recorded("tlp", &config, &mut CsrSource::new(&graph), p)
                    .unwrap_or_else(|e| panic!("{family}/p={p}/threads={threads}: {e}"))
            };
            let (serial, serial_events) = record(1);
            let (parallel, parallel_events) = record(4);
            assert_eq!(
                serial.partition, parallel.partition,
                "{family}/p={p}: thread count changed the winning partition"
            );
            assert_eq!(
                canonical_lines(&serial_events),
                canonical_lines(&parallel_events),
                "{family}/p={p}: thread count changed the canonical event stream"
            );
            // The replayed stream really covers all four trials, in order.
            let trial_indices: Vec<u64> = parallel_events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::SpanOpen { name, fields, .. } if name == "trial" => fields
                        .iter()
                        .find(|(k, _)| k == "index")
                        .map(|(_, v)| match v {
                            tlp::obs::Field::U64(i) => *i,
                            other => panic!("trial index field is {other:?}"),
                        }),
                    _ => None,
                })
                .collect();
            assert_eq!(
                trial_indices,
                vec![0, 1, 2, 3],
                "{family}/p={p}: trials missing or out of order in the merged stream"
            );
        }
    }
}

#[test]
fn canonical_form_strips_only_wall_clock_durations() {
    let registry = builtin_registry();
    let graph = chung_lu(400, 1600, 2.2, 5);
    let config = AlgoConfig::seeded(3);
    let (_, events) = registry
        .run_recorded("tlp", &config, &mut CsrSource::new(&graph), 4)
        .expect("run");
    for event in &events {
        let canonical = event.canonical();
        match (&event.kind, &canonical.kind) {
            (
                EventKind::SpanClose { id, dur_us },
                EventKind::SpanClose {
                    id: cid,
                    dur_us: cdur,
                },
            ) => {
                assert_eq!(id, cid);
                assert!(dur_us.is_some(), "live close should carry a duration");
                assert!(cdur.is_none(), "canonical close must not carry wall clock");
            }
            _ => assert_eq!(
                &canonical,
                &Event {
                    seq: event.seq,
                    trial: event.trial,
                    kind: event.kind.clone()
                },
                "canonicalization must only touch durations"
            ),
        }
    }
}
