#!/bin/bash
# CI check for the fault-tolerance pipeline: generate a 100k-edge Chung-Lu
# graph, SIGKILL a checkpointed TLP run at a seeded (and logged) random
# point mid-run, resume from the checkpoint directory, and require the
# final edge assignment to be byte-identical to the uninterrupted run.
# Invoked from the repo root. Override the kill point with FAULTS_CI_SEED.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The crash run is killed with SIGKILL, so $! must be the partitioner
# process itself — build once and background the binary directly. Both
# `cargo run` and a backgrounded shell function would put an intermediate
# process in $!, and killing that orphans the partitioner, which then
# races the resume run for the checkpoint directory.
cargo build --release -q --bin tlp-cli
BIN=./target/release/tlp-cli
cli() { "$BIN" "$@"; }
metrics() { grep -E '^(replication factor|balance|spanned vertices):' "$1"; }

SEED="${FAULTS_CI_SEED:-11}"
P=32
RUN_SEED=7

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed "$SEED" \
    --output "$WORK/graph.txt"

# Baseline: the uninterrupted run whose assignment the resumed run must
# reproduce bit for bit.
cli partition --input "$WORK/graph.txt" --format text --algorithm tlp \
    --partitions "$P" --seed "$RUN_SEED" --output "$WORK/base.tsv" \
    > "$WORK/base.txt"
metrics "$WORK/base.txt" > "$WORK/base.metrics"

# Seeded, logged kill point: 50..999 ms into the checkpointed run (the
# multiplier is Knuth's 2654435761, so nearby seeds scatter widely).
KILL_MS=$(( (SEED * 2654435761 + 12345) % 950 + 50 ))
echo "crash run: SIGKILL after ${KILL_MS}ms (FAULTS_CI_SEED=$SEED)"
"$BIN" partition --input "$WORK/graph.txt" --format text --algorithm tlp \
    --partitions "$P" --seed "$RUN_SEED" --checkpoint "$WORK/ckpt" \
    --output "$WORK/crash.tsv" > "$WORK/crash.txt" 2>&1 &
PID=$!
sleep "$(awk -v ms="$KILL_MS" 'BEGIN { printf "%.3f", ms / 1000 }')"
if kill -9 "$PID" 2>/dev/null; then
    echo "killed pid $PID mid-run"
else
    echo "run finished before the kill fired; resume degenerates to a no-op"
fi
wait "$PID" 2>/dev/null || true

if [ -f "$WORK/ckpt/checkpoint.tlpc" ]; then
    echo "checkpoint survived: $(stat -c%s "$WORK/ckpt/checkpoint.tlpc") bytes"
else
    echo "killed before the first round committed; resume restarts from round 0"
fi

# Resume and require bit-identity with the baseline: same assignment
# bytes, same metrics lines.
cli partition --input "$WORK/graph.txt" --format text --algorithm tlp \
    --partitions "$P" --seed "$RUN_SEED" --checkpoint "$WORK/ckpt" --resume \
    --output "$WORK/resumed.tsv" > "$WORK/resumed.txt" 2> "$WORK/resumed.log"
grep -E '^(resuming from|no checkpoint in)' "$WORK/resumed.log"
metrics "$WORK/resumed.txt" > "$WORK/resumed.metrics"
cmp "$WORK/base.tsv" "$WORK/resumed.tsv"
diff "$WORK/base.metrics" "$WORK/resumed.metrics"

rf=$(awk '/^replication factor:/ {print $NF}' "$WORK/resumed.txt")
echo "faults pipeline OK: resumed run is bit-identical to the baseline, RF $rf"
