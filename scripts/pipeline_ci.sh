#!/bin/bash
# Pipeline registry smoke: every algorithm in the builtin registry must be
# invocable by name through the CLI, and its replication factor on a fixed
# 100k-edge Chung-Lu graph (seed 11, p = 8, algorithm seed 42) must match
# the checked-in golden manifest exactly. Every run is seeded and
# single-threaded, so the numbers are bit-stable across machines.
#
# Regenerate the manifest after an intentional algorithm change with:
#   bash scripts/pipeline_ci.sh --regen
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }

# The registry's full name list (tlp-r takes its required R parameter).
ALGOS=(dbh fennel greedy hdrf ldg metis ne random stage1 stage2 tlp tlp-r=0.3)

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed 11 \
    --output "$WORK/graph.txt"

for algo in "${ALGOS[@]}"; do
    cli partition --input "$WORK/graph.txt" --partitions 8 --seed 42 \
        --algorithm "$algo" > "$WORK/run.txt"
    rf=$(awk '/^replication factor:/ {print $NF}' "$WORK/run.txt")
    echo "$algo $rf" >> "$WORK/manifest.txt"
    echo "pipeline-smoke: $algo RF $rf"
done

if [[ "${1:-}" == "--regen" ]]; then
    cp "$WORK/manifest.txt" scripts/pipeline_golden.txt
    echo "regenerated scripts/pipeline_golden.txt"
else
    diff scripts/pipeline_golden.txt "$WORK/manifest.txt"
    echo "pipeline smoke OK: ${#ALGOS[@]} algorithms match the golden manifest"
fi

# Golden event trace: profile a fixed-seed TLP run end to end through the
# CLI and diff the canonical stream (wall-clock durations stripped) against
# the checked-in golden. Pins the CLI-visible event schema and ordering.
cli generate --family chung-lu --vertices 2000 --edges 8000 --seed 41 \
    --output "$WORK/small.txt"
cli partition --input "$WORK/small.txt" --partitions 4 --seed 17 \
    --algorithm tlp --profile "$WORK/trace.jsonl" > /dev/null
cargo run --release -q -p tlp-obs --bin tlp-obs-report -- "$WORK/trace.jsonl" \
    --canonical > "$WORK/trace_canonical.jsonl"

if [[ "${1:-}" == "--regen" ]]; then
    cp "$WORK/trace_canonical.jsonl" scripts/obs_golden.jsonl
    echo "regenerated scripts/obs_golden.jsonl"
else
    diff scripts/obs_golden.jsonl "$WORK/trace_canonical.jsonl"
    echo "pipeline smoke OK: canonical event trace matches the golden stream"
fi
