#!/bin/bash
# Pipeline registry smoke: every algorithm in the builtin registry must be
# invocable by name through the CLI, and its replication factor on a fixed
# 100k-edge Chung-Lu graph (seed 11, p = 8, algorithm seed 42) must match
# the checked-in golden manifest exactly. Every run is seeded and
# single-threaded, so the numbers are bit-stable across machines.
#
# Regenerate the manifest after an intentional algorithm change with:
#   bash scripts/pipeline_ci.sh --regen
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    if [ -f "$WORK/serve.pids" ]; then
        while read -r pid; do
            kill "$pid" 2>/dev/null || true
        done < "$WORK/serve.pids"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }
convert() { cargo run --release -q -p tlp-store --bin tlp-convert -- "$@"; }

# The registry's full name list (tlp-r takes its required R parameter).
ALGOS=(dbh fennel greedy hdrf ldg metis ne random stage1 stage2 tlp tlp-r=0.3)

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed 11 \
    --output "$WORK/graph.txt"

for algo in "${ALGOS[@]}"; do
    cli partition --input "$WORK/graph.txt" --partitions 8 --seed 42 \
        --algorithm "$algo" > "$WORK/run.txt"
    rf=$(awk '/^replication factor:/ {print $NF}' "$WORK/run.txt")
    echo "$algo $rf" >> "$WORK/manifest.txt"
    echo "pipeline-smoke: $algo RF $rf"
done

if [[ "${1:-}" == "--regen" ]]; then
    cp "$WORK/manifest.txt" scripts/pipeline_golden.txt
    echo "regenerated scripts/pipeline_golden.txt"
else
    diff scripts/pipeline_golden.txt "$WORK/manifest.txt"
    echo "pipeline smoke OK: ${#ALGOS[@]} algorithms match the golden manifest"
fi

# Golden event trace: profile a fixed-seed TLP run end to end through the
# CLI and diff the canonical stream (wall-clock durations stripped) against
# the checked-in golden. Pins the CLI-visible event schema and ordering.
cli generate --family chung-lu --vertices 2000 --edges 8000 --seed 41 \
    --output "$WORK/small.txt"
cli partition --input "$WORK/small.txt" --partitions 4 --seed 17 \
    --algorithm tlp --profile "$WORK/trace.jsonl" > /dev/null
cargo run --release -q -p tlp-obs --bin tlp-obs-report -- "$WORK/trace.jsonl" \
    --canonical > "$WORK/trace_canonical.jsonl"

if [[ "${1:-}" == "--regen" ]]; then
    cp "$WORK/trace_canonical.jsonl" scripts/obs_golden.jsonl
    echo "regenerated scripts/obs_golden.jsonl"
else
    diff scripts/obs_golden.jsonl "$WORK/trace_canonical.jsonl"
    echo "pipeline smoke OK: canonical event trace matches the golden stream"
fi

# Format compatibility: the checked-in v1 golden bytes must open through
# today's reader, upgrade in place to v2, and partition identically in
# either format; a fresh text graph converted to v2 must partition
# identically to the text source; and the serving layer must answer a
# live load straight off a v2 zero-copy arena.

# --- Golden v1 bytes: readable, upgradable, partition-identical. -------
convert info tests/golden/graph_v1.tlpg | tee "$WORK/golden_info.txt"
grep -q "tlpg v1" "$WORK/golden_info.txt"

cp tests/golden/graph_v1.tlpg "$WORK/golden_upgraded.tlpg"
convert upgrade "$WORK/golden_upgraded.tlpg"
convert info "$WORK/golden_upgraded.tlpg" > "$WORK/upgraded_info.txt"
grep -q "tlpg v2" "$WORK/upgraded_info.txt"

cli partition --input tests/golden/graph_v1.tlpg --format bin --partitions 4 \
    --seed 42 --algorithm tlp --output "$WORK/golden_v1.tsv" > /dev/null
cli partition --input "$WORK/golden_upgraded.tlpg" --format bin --partitions 4 \
    --seed 42 --algorithm tlp --output "$WORK/golden_v2.tsv" > /dev/null
diff "$WORK/golden_v1.tsv" "$WORK/golden_v2.tsv"
echo "format-compat OK: golden v1 opens, upgrades, partitions identically"

# --- Text vs v2 binary: bit-identical assignments. ---------------------
convert to-bin "$WORK/graph.txt" "$WORK/graph_v2.tlpg"
convert info "$WORK/graph_v2.tlpg" > "$WORK/v2_info.txt"
grep -q "tlpg v2" "$WORK/v2_info.txt"
cli partition --input "$WORK/graph.txt" --format text --partitions 8 \
    --seed 42 --algorithm tlp --output "$WORK/text.tsv" > /dev/null
cli partition --input "$WORK/graph_v2.tlpg" --format bin --partitions 8 \
    --seed 42 --algorithm tlp --output "$WORK/bin.tsv" > /dev/null
diff "$WORK/text.tsv" "$WORK/bin.tsv"
echo "format-compat OK: text and v2 binary sources partition identically"

# --- Serve smoke on a v2 store: arena-backed graph, live load. ---------
cli partition --input "$WORK/graph_v2.tlpg" --format bin --partitions 8 \
    --seed 42 --algorithm hdrf --out-store "$WORK/store" > /dev/null
test -f "$WORK/store/MANIFEST.tlp"
cargo run --release -q -p tlp-serve --bin tlp-serve -- "$WORK/store" \
    --graph "$WORK/graph_v2.tlpg" --placer hdrf --addr 127.0.0.1:0 \
    > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVE_PID=$!
echo "$SERVE_PID" >> "$WORK/serve.pids"
ADDR=""
for _ in $(seq 1 100); do
    if grep -q "listening on" "$WORK/serve.out" 2>/dev/null; then
        ADDR=$(awk '/listening on/ {print $NF}' "$WORK/serve.out")
        break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "v2-store server did not come up:" >&2
    cat "$WORK/serve.out" "$WORK/serve.err" >&2
    exit 1
fi
cargo run --release -q -p tlp-serve --bin tlp-loadgen -- "$ADDR" \
    --ops 2000 --threads 2 --read-ratio 0.9 --zipf 1.1 --seed 42 \
    --shutdown | tee "$WORK/v2load.out"
grep -q " 0 protocol errors" "$WORK/v2load.out"
wait "$SERVE_PID"
echo "format-compat OK: serve smoke ran clean on a v2 zero-copy store"
