#!/bin/bash
# CI check for the serving subsystem: build a partition store from a
# 100k-edge Chung-Lu graph, serve it over TCP, and assert
#   1. a 50k-op 90/10 loadgen run completes with zero protocol errors
#      and emits BENCH_serve_latency.json through the obs bench writer;
#   2. a saturating connection burst gets typed Overloaded refusals
#      from a queue-bounded server (admission control, not buffering);
#   3. a write-only single-client run's flushed placements diff clean,
#      byte for byte, against a direct seeded streaming replay.
# Invoked from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    if [ -f "$WORK/serve.pids" ]; then
        while read -r pid; do
            kill "$pid" 2>/dev/null || true
        done < "$WORK/serve.pids"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }
tlp_serve() { cargo run --release -q -p tlp-serve --bin tlp-serve -- "$@"; }
loadgen() { cargo run --release -q -p tlp-serve --bin tlp-loadgen -- "$@"; }

# Build the bins up front so background launches don't race the compiler.
cargo build --release -q -p tlp -p tlp-serve

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed 11 \
    --output "$WORK/graph.txt"
cli partition --input "$WORK/graph.txt" --format text --algorithm hdrf \
    --partitions 8 --out-store "$WORK/store" > /dev/null
test -f "$WORK/store/MANIFEST.tlp"

# The direct-replay copy must start byte-identical to the served store.
cp -r "$WORK/store" "$WORK/store_direct"
diff -r "$WORK/store" "$WORK/store_direct"

# Starts tlp-serve on an ephemeral port. Sets ADDR to the bound address
# and SERVE_PID to the server's pid (runs in the parent shell so the pid
# survives for wait/kill; pids are also logged for the exit trap).
start_server() {
    local out="$1"
    shift
    tlp_serve "$@" --addr 127.0.0.1:0 > "$out" 2> "$out.err" &
    SERVE_PID=$!
    echo "$SERVE_PID" >> "$WORK/serve.pids"
    ADDR=""
    for _ in $(seq 1 100); do
        if grep -q "listening on" "$out" 2>/dev/null; then
            ADDR=$(awk '/listening on/ {print $NF}' "$out")
            return 0
        fi
        sleep 0.1
    done
    echo "server did not come up:" >&2
    cat "$out" "$out.err" >&2
    return 1
}

# --- 1. Mixed 90/10 load: zero protocol errors + bench artifact. -------
start_server "$WORK/serve1.out" "$WORK/store" --placer hdrf
loadgen "$ADDR" --ops 50000 --threads 4 --read-ratio 0.9 --zipf 1.1 --seed 42 \
    --bench "$WORK/BENCH_serve_latency.json" --shutdown | tee "$WORK/load.out"
grep -q " 0 protocol errors" "$WORK/load.out"
test -f "$WORK/BENCH_serve_latency.json"
# The bench artifact went through the shared obs writer: top-level keys
# must include the latency percentiles, throughput, and the failure
# taxonomy split (timeouts/resets) plus retry accounting.
for key in latency throughput ops protocol_errors timeouts resets retries; do
    grep -q "\"$key\"" "$WORK/BENCH_serve_latency.json"
done
wait "$SERVE_PID"   # --shutdown drains the server; it must exit 0

# The store data files are untouched (no flush was requested) — but the
# write mix must have left its placements in the durable WAL.
diff -r -x wal.tlpw "$WORK/store" "$WORK/store_direct"
test -f "$WORK/store/wal.tlpw"
test "$(stat -c %s "$WORK/store/wal.tlpw")" -gt 8

# --- 2. Saturating burst: typed Overloaded refusals. -------------------
start_server "$WORK/serve2.out" "$WORK/store" --placer hdrf \
    --workers 1 --queue-depth 0
loadgen "$ADDR" --burst 64 | tee "$WORK/burst.out"
overloaded=$(sed -n 's/^burst:.* \([0-9][0-9]*\) overloaded.*/\1/p' "$WORK/burst.out")
test -n "$overloaded"
test "$overloaded" -gt 0
kill "$SERVE_PID" 2>/dev/null || true

# --- 3. Bit-identity: served flush == direct seeded replay. ------------
# Phase 1's unflushed WAL records would replay into the served store on
# reopen and skew it against the direct run; this phase starts clean.
rm -f "$WORK/store/wal.tlpw"
start_server "$WORK/serve3.out" "$WORK/store" --placer hdrf
loadgen "$ADDR" --ops 5000 --threads 1 --read-ratio 0.0 --seed 777 \
    --flush --shutdown | tee "$WORK/writeonly.out"
grep -q " 0 protocol errors" "$WORK/writeonly.out"
wait "$SERVE_PID"

loadgen --replay "$WORK/store_direct" --placer hdrf \
    --ops 5000 --read-ratio 0.0 --seed 777 | tee "$WORK/replay.out"

# The flushed stores must be byte-identical, segment files and manifest.
diff -r "$WORK/store" "$WORK/store_direct"

echo "serve CI: mixed load clean, overload typed, flush bit-identical"
