#!/bin/bash
# Observability overhead smoke: on a 100k-edge Chung-Lu pipeline run the
# observed (--profile) partition must cost at most 2% more wall clock than
# the unobserved run (whose observer is the zero-cost NullObserver path),
# and the emitted trace must decode into a non-trivial report. Timings are
# min-of-5 of the CLI-reported algorithm time (graph load excluded), with
# a 10ms absolute slack so sub-second runs don't trip on scheduler noise.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed 11 \
    --output "$WORK/graph.txt"

# Min-of-N of the "time: X.XXs" line the partition command prints.
best_time() {
    local best=""
    for _ in 1 2 3 4 5; do
        local t
        t=$(cli partition "$@" | awk '/^time:/ {gsub(/s/, "", $NF); print $NF}')
        if [[ -z "$best" ]] || awk -v a="$t" -v b="$best" 'BEGIN {exit !(a < b)}'; then
            best="$t"
        fi
    done
    echo "$best"
}

plain=$(best_time --input "$WORK/graph.txt" --partitions 8 --seed 42)
observed=$(best_time --input "$WORK/graph.txt" --partitions 8 --seed 42 \
    --profile "$WORK/trace.jsonl")
echo "obs-overhead: unobserved ${plain}s, observed ${observed}s"

awk -v plain="$plain" -v observed="$observed" 'BEGIN {
    budget = plain * 1.02 + 0.010
    if (observed > budget) {
        printf "obs-overhead: observed run %.3fs exceeds budget %.3fs (unobserved %.3fs + 2%% + 10ms)\n",
            observed, budget, plain
        exit 1
    }
}'

# The trace the observed runs left behind must fold into a real report.
events=$(wc -l < "$WORK/trace.jsonl")
if [[ "$events" -lt 4 ]]; then
    echo "obs-overhead: trace has only $events events; expected the run skeleton"
    exit 1
fi
cargo run --release -q -p tlp-obs --bin tlp-obs-report -- "$WORK/trace.jsonl" \
    > "$WORK/report.txt"
grep -q "run" "$WORK/report.txt"
echo "obs-overhead OK: ${events}-event trace, report renders, overhead within 2%"
