#!/bin/bash
# Chaos CI for the serving layer: a seeded fault proxy sits between the
# load generator and a live tlp-serve; the server is SIGKILLed mid-run
# with acked placements living only in the WAL; a restarted server must
# report the recovered records, ride out a retry storm through the
# proxy, and — after re-running the identical idempotent stream — flush
# a store that is byte-for-byte identical to an uninterrupted offline
# replay of the same seed.
# Invoked from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    if [ -f "$WORK/chaos.pids" ]; then
        while read -r pid; do
            kill -9 "$pid" 2>/dev/null || true
        done < "$WORK/chaos.pids"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }
tlp_serve() { cargo run --release -q -p tlp-serve --bin tlp-serve -- "$@"; }
tlp_chaos() { cargo run --release -q -p tlp-serve --bin tlp-chaos -- "$@"; }
loadgen() { cargo run --release -q -p tlp-serve --bin tlp-loadgen -- "$@"; }

cargo build --release -q -p tlp -p tlp-serve

cli generate --family chung-lu --vertices 10000 --edges 30000 --seed 19 \
    --output "$WORK/graph.txt"
cli partition --input "$WORK/graph.txt" --format text --algorithm hdrf \
    --partitions 8 --out-store "$WORK/store" > /dev/null
cp -r "$WORK/store" "$WORK/store_direct"

# Waits for a "listening on" line in $1 and puts the address in ADDR.
wait_addr() {
    local out="$1"
    ADDR=""
    for _ in $(seq 1 100); do
        if grep -q "listening on" "$out" 2>/dev/null; then
            ADDR=$(awk '/listening on/ {print $NF}' "$out")
            return 0
        fi
        sleep 0.1
    done
    echo "process did not come up:" >&2
    cat "$out" "$out.err" >&2
    return 1
}

start_server() {
    local out="$1"
    tlp_serve "$WORK/store" --placer hdrf --addr 127.0.0.1:0 \
        > "$out" 2> "$out.err" &
    SERVE_PID=$!
    echo "$SERVE_PID" >> "$WORK/chaos.pids"
    wait_addr "$out"
    SERVE_ADDR=$ADDR
}

# --- 1. Kill -9 during load: acked placements live only in the WAL. ----
start_server "$WORK/serve1.out"
tlp_chaos 127.0.0.1:0 "$SERVE_ADDR" --seed 1234 --clean-every 2 --stall-ms 200 \
    > "$WORK/chaos.out" 2> "$WORK/chaos.err" &
CHAOS_PID=$!
echo "$CHAOS_PID" >> "$WORK/chaos.pids"
wait_addr "$WORK/chaos.out"
PROXY_ADDR=$ADDR

# Write-only single-client stream through the proxy, fsync per ack, no
# flush — every ack is backed by the WAL and nothing else.
loadgen "$PROXY_ADDR" --ops 20000 --threads 1 --read-ratio 0.0 --seed 777 \
    --retry-attempts 10 --retry-deadline-ms 30000 \
    > "$WORK/load1.out" 2>&1 &
LOAD_PID=$!
echo "$LOAD_PID" >> "$WORK/chaos.pids"
sleep 2
kill -9 "$SERVE_PID"        # the machine "dies" mid-run
kill -9 "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true

# The WAL holds the acked prefix.
test -f "$WORK/store/wal.tlpw"
test "$(stat -c %s "$WORK/store/wal.tlpw")" -gt 8

# --- 2. Restart: the server replays the WAL and says so. ---------------
start_server "$WORK/serve2.out"
recovered=$(sed -n 's/.* \([0-9][0-9]*\) wal records recovered.*/\1/p' "$WORK/serve2.out.err")
test -n "$recovered"
test "$recovered" -gt 0
echo "chaos CI: restart recovered $recovered wal records"

# --- 3. Retry storm through the proxy against the live server. ---------
# The proxy still points at the dead server's address; restart it at the
# new upstream so faulted connections hit a live service.
kill -9 "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
tlp_chaos 127.0.0.1:0 "$SERVE_ADDR" --seed 4321 --clean-every 2 --stall-ms 200 \
    > "$WORK/chaos2.out" 2> "$WORK/chaos2.err" &
CHAOS_PID=$!
echo "$CHAOS_PID" >> "$WORK/chaos.pids"
wait_addr "$WORK/chaos2.out"
PROXY_ADDR=$ADDR

# Read-only so the byte-identity stream below stays exactly seed 777.
# Multiple threads force multiple connections into the fault schedule;
# retries must absorb every reset/truncation/corruption/stall.
loadgen "$PROXY_ADDR" --ops 800 --threads 4 --read-ratio 1.0 --seed 55 \
    --retry-attempts 10 --retry-deadline-ms 30000 | tee "$WORK/storm.out"
grep -q " 0 protocol errors" "$WORK/storm.out"
kill -9 "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
cat "$WORK/chaos2.err" >&2 || true

# --- 4. Idempotent re-run + flush == uninterrupted offline replay. -----
# The same seed regenerates the same placement stream; the acked prefix
# dedups (fresh:false) without consulting the placer, so the decision
# sequence — and therefore the flushed bytes — match a run that never
# crashed.
loadgen "$SERVE_ADDR" --ops 20000 --threads 1 --read-ratio 0.0 --seed 777 \
    --flush --shutdown | tee "$WORK/load2.out"
grep -q " 0 protocol errors" "$WORK/load2.out"
wait "$SERVE_PID"

loadgen --replay "$WORK/store_direct" --placer hdrf \
    --ops 20000 --threads 1 --read-ratio 0.0 --seed 777 | tee "$WORK/replay.out"

# Byte-for-byte: every file, including the truncated (magic-only) WAL.
for f in "$WORK/store"/*; do
    cmp "$f" "$WORK/store_direct/$(basename "$f")"
done
diff -r "$WORK/store" "$WORK/store_direct"

echo "chaos CI: kill -9 lost zero acked placements, storm absorbed, flush bit-identical"
