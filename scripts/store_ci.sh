#!/bin/bash
# CI check for the out-of-core store pipeline: generate a 100k-edge
# Chung-Lu graph, convert it to a .tlpg binary store, partition it
# streaming off disk with a 1024-edge budget, and require the metrics to
# match the in-memory run line for line. Invoked from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cli() { cargo run --release -q --bin tlp-cli -- "$@"; }
convert() { cargo run --release -q -p tlp-store --bin tlp-convert -- "$@"; }
metrics() { grep -E '^(replication factor|balance|spanned vertices):' "$1"; }

cli generate --family chung-lu --vertices 30000 --edges 100000 --seed 11 \
    --output "$WORK/graph.txt"
convert to-bin "$WORK/graph.txt" "$WORK/graph.tlpg"
convert info "$WORK/graph.tlpg"

# HDRF streamed off the binary store at a 1024-edge budget vs. the same
# placement with every edge in memory at once (budget > m, single chunk).
cli partition --input "$WORK/graph.tlpg" --format bin --algorithm hdrf \
    --partitions 8 --stream-budget 1024 --out-store "$WORK/store" \
    > "$WORK/hdrf_stream.txt"
cli partition --input "$WORK/graph.txt" --format text --algorithm hdrf \
    --partitions 8 --stream-budget 100000000 > "$WORK/hdrf_memory.txt"
metrics "$WORK/hdrf_stream.txt" > "$WORK/hdrf_stream.metrics"
metrics "$WORK/hdrf_memory.txt" > "$WORK/hdrf_memory.metrics"
diff "$WORK/hdrf_stream.metrics" "$WORK/hdrf_memory.metrics"

# The streamed run's peak buffer must respect the budget.
peak=$(awk '/^peak edge buffer:/ {print $NF}' "$WORK/hdrf_stream.txt")
test "$peak" -le 1024

# The CLI also wrote a partition store; its manifest must exist and carry
# the same replication factor the run reported.
test -f "$WORK/store/MANIFEST.tlp"
rf_run=$(awk '/^replication factor:/ {print $NF}' "$WORK/hdrf_stream.txt")
grep -q "replicas" "$WORK/store/MANIFEST.tlp"

# DBH: streamed binary vs. the plain materialized partitioner (both walk
# the edges in natural order with the same seed).
cli partition --input "$WORK/graph.tlpg" --format bin --algorithm dbh \
    --partitions 8 --stream-budget 1024 > "$WORK/dbh_stream.txt"
cli partition --input "$WORK/graph.txt" --format text --algorithm dbh \
    --partitions 8 > "$WORK/dbh_memory.txt"
metrics "$WORK/dbh_stream.txt" > "$WORK/dbh_stream.metrics"
metrics "$WORK/dbh_memory.txt" > "$WORK/dbh_memory.metrics"
diff "$WORK/dbh_stream.metrics" "$WORK/dbh_memory.metrics"

echo "store pipeline OK: streamed (budget 1024, peak $peak) == in-memory, RF $rf_run"
