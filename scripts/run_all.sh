#!/bin/bash
# Full evaluation suite (invoked from the repo root). Large graphs run the R-sweep at half scale (the
# sweep is 36 partitioning runs per graph); everything else is full scale.
set -x
cd /root/repo
R=results
cargo run --release -q -p tlp-harness --bin table3 -- --out-dir $R
cargo run --release -q -p tlp-harness --bin table4 -- --out-dir $R
cargo run --release -q -p tlp-harness --bin table6 -- --out-dir $R
cargo run --release -q -p tlp-harness --bin fig9_10_11 -- --datasets G1,G2,G3,G4,G9 --out-dir $R/sweep_small
cargo run --release -q -p tlp-harness --bin fig9_10_11 -- --datasets G5,G6,G7,G8 --scale 0.5 --out-dir $R/sweep_big
echo "SUITE COMPLETE"
