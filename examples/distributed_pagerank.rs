//! Why the replication factor matters: a PowerGraph-style distributed
//! PageRank simulation over edge partitions.
//!
//! Each partition plays the role of one machine holding its edges plus a
//! local replica (mirror) of every vertex those edges touch. One PageRank
//! superstep then costs:
//!
//! * **gather**: every machine sums rank/degree over its local edges — free
//!   of communication;
//! * **sync**: every replicated vertex sends its partial sum to its master
//!   and receives the new rank back — `2 * (replicas - masters)` messages.
//!
//! Total sync traffic per superstep is therefore proportional to
//! `(RF - 1) * |V|`: exactly the quantity TLP minimizes. The example runs
//! the same PageRank over a TLP partition and a Random partition, checks
//! both produce identical ranks, and reports the traffic each one paid.
//!
//! Run with: `cargo run --release --example distributed_pagerank`

use tlp::baselines::RandomPartitioner;
use tlp::core::{
    EdgePartition, EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner,
};
use tlp::graph::generators::power_law_community;
use tlp::graph::CsrGraph;

const DAMPING: f64 = 0.85;
const SUPERSTEPS: usize = 20;

/// One superstep of edge-partitioned PageRank; returns the new ranks and
/// the number of sync messages exchanged.
fn superstep(graph: &CsrGraph, partition: &EdgePartition, ranks: &[f64]) -> (Vec<f64>, usize) {
    let p = partition.num_partitions();
    let n = graph.num_vertices();
    // Per-machine partial sums for each vertex replica.
    let mut partial = vec![vec![0.0f64; n]; p];
    let mut has_replica = vec![vec![false; n]; p];
    for (eid, edge) in graph.edges().iter().enumerate() {
        let k = partition.partition_of(eid as u32) as usize;
        let (u, v) = edge.endpoints();
        // Undirected PageRank: each endpoint contributes along the edge.
        partial[k][v as usize] += ranks[u as usize] / graph.degree(u) as f64;
        partial[k][u as usize] += ranks[v as usize] / graph.degree(v) as f64;
        has_replica[k][u as usize] = true;
        has_replica[k][v as usize] = true;
    }
    // Sync phase: replicas ship partials to the master (1 message each) and
    // receive the applied rank back (1 message each); the master replica
    // itself is local.
    let mut messages = 0usize;
    let mut new_ranks = vec![(1.0 - DAMPING) / n as f64; n];
    for v in 0..n {
        let mut replicas = 0usize;
        let mut sum = 0.0;
        for k in 0..p {
            if has_replica[k][v] {
                replicas += 1;
                sum += partial[k][v];
            }
        }
        if replicas > 0 {
            messages += 2 * (replicas - 1);
        }
        new_ranks[v] += DAMPING * sum;
    }
    (new_ranks, messages)
}

fn run_pagerank(graph: &CsrGraph, partition: &EdgePartition) -> (Vec<f64>, usize) {
    let n = graph.num_vertices();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut total_messages = 0usize;
    for _ in 0..SUPERSTEPS {
        let (next, messages) = superstep(graph, partition, &ranks);
        ranks = next;
        total_messages += messages;
    }
    (ranks, total_messages)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = power_law_community(5_000, 30_000, 2.1, 40, 0.2, 3);
    let p = 10;

    let tlp_part = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1)).partition(&graph, p)?;
    let rnd_part = RandomPartitioner::new(1).partition(&graph, p)?;
    let rf_tlp = PartitionMetrics::compute(&graph, &tlp_part).replication_factor;
    let rf_rnd = PartitionMetrics::compute(&graph, &rnd_part).replication_factor;

    let (ranks_tlp, msgs_tlp) = run_pagerank(&graph, &tlp_part);
    let (ranks_rnd, msgs_rnd) = run_pagerank(&graph, &rnd_part);

    // The partition must never change the numerical result.
    let max_diff = ranks_tlp
        .iter()
        .zip(&ranks_rnd)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 1e-12,
        "partitioning changed PageRank: {max_diff}"
    );

    println!("{SUPERSTEPS} PageRank supersteps over {p} machines\n");
    println!("{:>10}  {:>8}  {:>16}", "partition", "RF", "sync messages");
    println!("{:>10}  {:>8.3}  {:>16}", "TLP", rf_tlp, msgs_tlp);
    println!("{:>10}  {:>8.3}  {:>16}", "Random", rf_rnd, msgs_rnd);
    println!(
        "\nTLP cut sync traffic by {:.1}x (ranks identical to 1e-12; \
         only the communication bill changed)",
        msgs_rnd as f64 / msgs_tlp as f64
    );
    Ok(())
}
