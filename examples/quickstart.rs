//! Quickstart: load a graph, partition it with TLP, inspect the quality.
//!
//! Run with: `cargo run --release --example quickstart`

use tlp::core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
use tlp::graph::generators::power_law_community;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power-law graph with planted communities, standing in for a social
    // network. Any `CsrGraph` works — see `tlp::graph::io::read_edge_list`
    // for loading SNAP-style edge lists from disk.
    let graph = power_law_community(10_000, 60_000, 2.1, 50, 0.2, 42);
    println!(
        "graph: {} vertices, {} edges, average degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    // The two-stage local partitioner (TLP). The seed controls the random
    // seed-vertex choices; everything else is deterministic.
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(7));
    let partition = tlp.partition(&graph, 8)?;

    // Quality: the replication factor is the paper's headline metric —
    // the average number of machines each vertex must be copied to.
    let metrics = PartitionMetrics::compute(&graph, &partition);
    println!("replication factor: {:.3}", metrics.replication_factor);
    println!("balance (max/ideal load): {:.3}", metrics.balance);
    println!("spanned vertices: {}", metrics.spanned_vertices);
    for (k, (edges, vertices)) in metrics
        .edge_counts
        .iter()
        .zip(&metrics.vertex_counts)
        .enumerate()
    {
        println!("  partition {k}: {edges} edges, {vertices} vertices");
    }
    Ok(())
}
