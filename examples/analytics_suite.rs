//! Distributed analytics over edge partitions, with the bill itemized.
//!
//! Uses the `tlp-sim` engine to run three classic vertex programs —
//! connected components, single-source shortest paths, and PageRank — over
//! the same graph partitioned three ways (TLP, NE, Random), reporting the
//! sync messages each combination pays. The computed answers are identical
//! by construction; only the communication changes.
//!
//! Run with: `cargo run --release --example analytics_suite`

use tlp::baselines::{NePartitioner, RandomPartitioner};
use tlp::core::{
    EdgePartition, EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner,
};
use tlp::graph::generators::power_law_community;
use tlp::graph::CsrGraph;
use tlp::sim::{programs, Cluster, Engine};

fn partitions(graph: &CsrGraph, p: usize) -> Vec<(String, EdgePartition)> {
    let algos: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(1))),
        Box::new(NePartitioner::new(1)),
        Box::new(RandomPartitioner::new(1)),
    ];
    algos
        .into_iter()
        .map(|a| {
            let part = a.partition(graph, p).expect("partitioning succeeds");
            (a.name().to_string(), part)
        })
        .collect()
}

fn main() {
    let graph = power_law_community(4_000, 24_000, 2.1, 40, 0.2, 11);
    let p = 8;
    println!(
        "graph: {} vertices, {} edges on {p} machines\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    println!(
        "{:>10}  {:>7}  {:>14}  {:>14}  {:>14}",
        "partition", "RF", "CC msgs", "SSSP msgs", "PageRank msgs"
    );
    for (name, partition) in partitions(&graph, p) {
        let rf = PartitionMetrics::compute(&graph, &partition).replication_factor;
        let cluster = Cluster::new(&graph, &partition);
        let engine = Engine::new(&cluster);

        let cc = engine.run(&programs::ConnectedComponents, 200);
        let sssp = engine.run(&programs::ShortestPaths { source: 0 }, 200);
        let pr = engine.run(&programs::PageRank::default(), 60);
        assert!(cc.converged && sssp.converged, "analytics must converge");

        println!(
            "{name:>10}  {rf:>7.3}  {:>14}  {:>14}  {:>14}",
            cc.total_messages, sssp.total_messages, pr.total_messages
        );
    }

    println!(
        "\nsame answers on every row — the partitioner only changes how many \
         replica-sync messages each superstep costs (proportional to RF - 1)."
    );
}
