//! Offline vs streaming vs local partitioning: the paper's §II taxonomy.
//!
//! The paper positions *local* partitioning between two worlds: offline
//! methods (METIS) see the whole graph; streaming methods (LDG, DBH,
//! Greedy, HDRF) see one element at a time and keep all placement state;
//! local methods (TLP) see only the partition being grown plus its
//! frontier. This example measures both axes on one graph: quality (RF)
//! and an estimate of the peak partitioner-resident state.
//!
//! Run with: `cargo run --release --example streaming_vs_local`

use tlp::baselines::{DbhPartitioner, EdgeOrder, GreedyPartitioner, LdgPartitioner, VertexOrder};
use tlp::core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
use tlp::graph::generators::power_law_community;
use tlp::metis::MetisPartitioner;

struct Contender {
    algo: Box<dyn EdgePartitioner>,
    class: &'static str,
    /// Rough per-run working state, in machine words, as a function of
    /// n (vertices), m (edges), p (partitions) — mirrors §III-E's analysis.
    state_words: fn(n: usize, m: usize, p: usize) -> usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = power_law_community(15_000, 90_000, 2.1, 60, 0.25, 5);
    let p = 10;
    let (n, m) = (graph.num_vertices(), graph.num_edges());
    println!("graph: {n} vertices, {m} edges; p = {p}\n");

    let contenders = vec![
        Contender {
            algo: Box::new(MetisPartitioner::default()),
            class: "offline",
            // Multilevel: the whole graph plus all coarse levels (~2x).
            state_words: |n, m, _| 2 * (n + 2 * m),
        },
        Contender {
            algo: Box::new(LdgPartitioner::new(VertexOrder::Random(3))),
            class: "streaming",
            // All previously placed vertices must stay addressable.
            state_words: |n, _, p| n + p,
        },
        Contender {
            algo: Box::new(GreedyPartitioner::new(EdgeOrder::Random(3))),
            class: "streaming",
            // Replica sets A(v) for every vertex seen so far.
            state_words: |n, _, p| n * p.div_ceil(64) + p,
        },
        Contender {
            algo: Box::new(DbhPartitioner::new(3)),
            class: "streaming",
            // Stateless apart from the degree table.
            state_words: |n, _, _| n,
        },
        Contender {
            algo: Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(3))),
            class: "local",
            // One partition plus its frontier: O(L * d) of §III-E.
            state_words: |_, m, p| 2 * m / p,
        },
    ];

    println!(
        "{:>8}  {:>10}  {:>8}  {:>8}  {:>18}",
        "class", "algorithm", "RF", "time", "working state"
    );
    for c in &contenders {
        let start = std::time::Instant::now();
        let partition = c.algo.partition(&graph, p)?;
        let elapsed = start.elapsed();
        let metrics = PartitionMetrics::compute(&graph, &partition);
        let words = (c.state_words)(n, m, p);
        println!(
            "{:>8}  {:>10}  {:>8.3}  {:>7.2}s  {:>12} words",
            c.class,
            c.algo.name(),
            metrics.replication_factor,
            elapsed.as_secs_f64(),
            words
        );
    }

    println!(
        "\nreading the table: offline quality needs the whole graph in memory; \
         streaming stays cheap but replicates more; local partitioning (TLP) \
         holds one partition's state yet lands at offline-class quality."
    );
    Ok(())
}
