//! Algorithm shoot-out on a social-network workload.
//!
//! The paper's §I motivation: partitioning quality determines the
//! communication cost of distributed graph computation on social networks.
//! This example runs the full algorithm line-up — TLP, the METIS-style
//! multilevel partitioner, LDG, FENNEL, Greedy, HDRF, DBH, and Random — on
//! one synthetic social network and prints a league table.
//!
//! Run with: `cargo run --release --example social_network`

use tlp::baselines::{
    DbhPartitioner, EdgeOrder, FennelPartitioner, GreedyPartitioner, HdrfPartitioner,
    LdgPartitioner, RandomPartitioner, VertexOrder,
};
use tlp::core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
use tlp::graph::generators::power_law_community;
use tlp::metis::MetisPartitioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = power_law_community(20_000, 120_000, 2.0, 80, 0.25, 1);
    let p = 12;
    println!(
        "social network: {} users, {} friendships -> {p} machines\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let seed = 9;
    let lineup: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed))),
        Box::new(MetisPartitioner::default()),
        Box::new(LdgPartitioner::new(VertexOrder::Random(seed))),
        Box::new(FennelPartitioner::new(VertexOrder::Random(seed))),
        Box::new(GreedyPartitioner::new(EdgeOrder::Random(seed))),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::new(seed)),
        Box::new(RandomPartitioner::new(seed)),
    ];

    println!(
        "{:>10}  {:>8}  {:>8}  {:>9}",
        "algorithm", "RF", "balance", "time"
    );
    let mut results = Vec::new();
    for algo in &lineup {
        let start = std::time::Instant::now();
        let partition = algo.partition(&graph, p)?;
        let elapsed = start.elapsed();
        let m = PartitionMetrics::compute(&graph, &partition);
        results.push((algo.name().to_string(), m.replication_factor));
        println!(
            "{:>10}  {:>8.3}  {:>8.3}  {:>8.2}s",
            algo.name(),
            m.replication_factor,
            m.balance,
            elapsed.as_secs_f64()
        );
    }

    let best = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty line-up");
    println!(
        "\nlowest replication factor: {} ({:.3}) — every vertex copy above 1.0 \
         is one more machine that must receive that vertex's updates each superstep",
        best.0, best.1
    );
    Ok(())
}
