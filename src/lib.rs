//! Facade crate re-exporting the whole TLP workspace.
//!
//! See the individual crates for details:
//! [`graph`], [`core`], [`store`], [`baselines`], [`metis`],
//! [`pipeline`], [`datasets`], [`harness`], [`sim`], [`obs`].

pub use tlp_baselines as baselines;
pub use tlp_core as core;
pub use tlp_datasets as datasets;
pub use tlp_graph as graph;
pub use tlp_harness as harness;
pub use tlp_metis as metis;
pub use tlp_obs as obs;
pub use tlp_pipeline as pipeline;
pub use tlp_sim as sim;
pub use tlp_store as store;
