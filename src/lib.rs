//! Facade crate re-exporting the whole TLP workspace.
//!
//! See the individual crates for details:
//! [`graph`](tlp_graph), [`core`](tlp_core), [`store`](tlp_store),
//! [`baselines`](tlp_baselines), [`metis`](tlp_metis),
//! [`datasets`](tlp_datasets), [`harness`](tlp_harness), [`sim`](tlp_sim).

pub use tlp_baselines as baselines;
pub use tlp_core as core;
pub use tlp_datasets as datasets;
pub use tlp_graph as graph;
pub use tlp_harness as harness;
pub use tlp_metis as metis;
pub use tlp_sim as sim;
pub use tlp_store as store;
