//! `tlp-cli` — partition edge-list files from the command line.
//!
//! ```text
//! tlp-cli partition --input graph.txt --partitions 8 [--algorithm tlp]
//!                   [--seed 42] [--output assignment.tsv]
//! tlp-cli stats     --input graph.txt
//! tlp-cli generate  --family community --vertices 1000 --edges 5000
//!                   [--seed 42] [--output graph.txt]
//! ```
//!
//! `partition` reads a SNAP-style edge list (comments, duplicate and
//! directed edges, self-loops all tolerated) or a `.tlpg` binary store
//! (`--format bin`, or sniffed automatically), runs the chosen algorithm,
//! prints the quality metrics, and optionally writes one `u v partition`
//! line per edge (original vertex ids preserved) and/or an on-disk
//! partition store (`--out-store DIR`). For the streaming baselines,
//! `--stream-budget N` runs the placement out-of-core, holding at most `N`
//! edges in memory (reading `.tlpg` input straight off disk).

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use tlp::core::{AlgoConfig, Capability, PartitionMetrics, RunArtifact, TlpConfig};
use tlp::graph::generators as gen;
use tlp::graph::io;
use tlp::graph::CsrSource;
use tlp::pipeline::builtin_registry;
use tlp::store::{
    read_checkpoint, write_checkpoint, write_partition_store, BinaryFileSource, BudgetedCsrSource,
    LoadedGraph, MAGIC,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("partition") => cmd_partition(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tlp-cli — graph edge partitioning (TLP, ICDCS 2019)

subcommands:
  partition --input FILE --partitions P [--algorithm NAME] [--seed N] [--output FILE]
            [--trials T] [--threads N] [--format auto|text|bin]
            [--stream-budget N] [--out-store DIR]
            [--checkpoint DIR] [--resume]
            [--profile FILE.jsonl] [--obs-summary]
            algorithms (pipeline registry): tlp (default), tlp-r=<R>,
                        stage1, stage2, metis, ne, ldg, fennel,
                        greedy, hdrf, dbh, random
            --trials runs T independently seeded TLP trials (tlp only) and
            keeps the best replication factor; --threads caps the worker
            threads (default: all available cores)
            --format bin reads a .tlpg binary store (auto sniffs the magic);
            --stream-budget N streams edges out-of-core in natural order,
            at most N in memory (hdrf, dbh, greedy, random only);
            --out-store DIR writes per-partition edge segments + manifest
            --checkpoint DIR persists an engine snapshot after every
            completed partition (tlp only, single trial); --resume continues
            from DIR's snapshot — the result is bit-identical to the
            uninterrupted run with the same seed
            --profile FILE.jsonl records a structured event trace (inspect
            with tlp-obs-report); --obs-summary prints the aggregated
            span/counter table after the run. Observation never changes
            the partition: observed runs are bit-identical to plain ones
  stats     --input FILE
  generate  --family NAME --vertices N --edges M [--seed N] [--output FILE]
            families: community, chung-lu, erdos-renyi, barabasi-albert,
                      rmat, genealogy";

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 2] = ["resume", "obs-summary"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key:?}"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{name} has invalid value {raw:?}")),
    }
}

/// Input format of the `partition` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InputFormat {
    Text,
    Bin,
}

/// The `partition` subcommand's loaded input graph.
///
/// Text edge lists decode into an owned CSR; `.tlpg` files open through
/// [`LoadedGraph`], which for format v2 lends the file's embedded CSR as a
/// zero-copy arena — no per-edge decode and no CSR rebuild. Every
/// downstream consumer works on the [`GraphView`](tlp::graph::GraphView),
/// so the two paths share all the partitioning code.
enum InputGraph {
    Text(io::LoadedGraph),
    Bin(LoadedGraph),
}

impl InputGraph {
    fn view(&self) -> tlp::graph::GraphView<'_> {
        match self {
            InputGraph::Text(loaded) => loaded.graph.view(),
            InputGraph::Bin(stored) => stored.view(),
        }
    }

    /// External id of internal vertex `v` (identity when the file carries
    /// no id map).
    fn original_id(&self, v: usize) -> u64 {
        match self {
            InputGraph::Text(loaded) => loaded.original_ids[v],
            InputGraph::Bin(stored) => stored.original_ids().map_or(v as u64, |ids| ids[v]),
        }
    }
}

/// Resolves `--format` (sniffing the `.tlpg` magic for `auto`).
fn resolve_format(flag: Option<&str>, input: &str) -> Result<InputFormat, String> {
    match flag.unwrap_or("auto") {
        "text" => Ok(InputFormat::Text),
        "bin" => Ok(InputFormat::Bin),
        "auto" => {
            use std::io::Read;
            let mut head = [0u8; 8];
            let mut file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
            match file.read_exact(&mut head) {
                Ok(()) if head == MAGIC => Ok(InputFormat::Bin),
                _ => Ok(InputFormat::Text),
            }
        }
        other => Err(format!(
            "--format must be auto, text, or bin, got {other:?}"
        )),
    }
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = required(&flags, "input")?;
    let p: usize = parsed(&flags, "partitions", 0)?;
    if p == 0 {
        return Err("--partitions must be a positive integer".into());
    }
    let seed: u64 = parsed(&flags, "seed", 42)?;
    let trials: usize = parsed(&flags, "trials", 1)?;
    let threads: usize = parsed(&flags, "threads", 0)?;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("tlp");
    if trials == 0 {
        return Err("--trials must be a positive integer".into());
    }
    if trials > 1 && algorithm != "tlp" {
        return Err(format!(
            "--trials is only supported for the tlp algorithm, not {algorithm:?}"
        ));
    }
    let format = resolve_format(flags.get("format").map(String::as_str), input)?;
    let stream_budget: Option<usize> = match flags.get("stream-budget") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("flag --stream-budget has invalid value {raw:?}"))?,
        ),
    };
    if stream_budget == Some(0) {
        return Err("--stream-budget must be a positive number of edges".into());
    }
    if stream_budget.is_some() && trials > 1 {
        return Err("--stream-budget cannot be combined with --trials".into());
    }
    let registry = builtin_registry();
    let entry = registry
        .entry_of(algorithm)
        .ok_or_else(|| format!("unknown algorithm {algorithm:?}\n{USAGE}"))?;
    if stream_budget.is_some() && entry.capability != Capability::Streaming {
        return Err(format!(
            "--stream-budget supports hdrf, dbh, greedy, random — not {algorithm:?}"
        ));
    }
    let checkpoint_dir = flags.get("checkpoint").map(String::as_str);
    let resume = flags.contains_key("resume");
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint DIR".into());
    }
    if checkpoint_dir.is_some() {
        if algorithm != "tlp" {
            return Err(format!(
                "--checkpoint is only supported for the tlp algorithm, not {algorithm:?}"
            ));
        }
        if trials > 1 {
            return Err("--checkpoint cannot be combined with --trials".into());
        }
        if stream_budget.is_some() {
            return Err("--checkpoint cannot be combined with --stream-budget".into());
        }
    }

    let loaded = match format {
        InputFormat::Text => {
            InputGraph::Text(io::read_edge_list_file(input).map_err(|e| e.to_string())?)
        }
        InputFormat::Bin => InputGraph::Bin(
            LoadedGraph::open(Path::new(input)).map_err(|e| e.to_string())?,
        ),
    };
    let graph = loaded.view();
    eprintln!(
        "loaded {} ({}): {} vertices, {} edges",
        input,
        match &loaded {
            InputGraph::Text(_) => "text".to_string(),
            InputGraph::Bin(stored) => format!("tlpg v{}", stored.format_version()),
        },
        graph.num_vertices(),
        graph.num_edges()
    );

    let config = AlgoConfig {
        seed,
        threads,
        trials,
        ..AlgoConfig::default()
    };
    let profile_path = flags.get("profile").cloned();
    let obs_summary = flags.contains_key("obs-summary");
    let compute = || -> Result<RunArtifact, String> {
        let artifact = if let Some(budget) = stream_budget {
            // Out-of-core path: binary inputs stream straight off disk (the
            // source refuses to materialize), text inputs stream the parsed
            // graph in natural order. Either way the placer sees at most
            // `budget` edges at a time.
            let artifact = match format {
                InputFormat::Bin => {
                    let mut source = BinaryFileSource::open(Path::new(input), budget)
                        .map_err(|e| e.to_string())?
                        .strict_streaming(true);
                    registry
                        .run(algorithm, &config, &mut source, p)
                        .map_err(|e| e.to_string())?
                }
                InputFormat::Text => {
                    let mut source = BudgetedCsrSource::new(graph, budget);
                    registry
                        .run(algorithm, &config, &mut source, p)
                        .map_err(|e| e.to_string())?
                }
            };
            println!("stream budget:      {budget}");
            println!(
                "peak edge buffer:   {}",
                artifact.peak_stream_buffer.unwrap_or(0)
            );
            // Historical CLI behavior: streamed runs report the registry name.
            RunArtifact {
                algorithm: algorithm.to_string(),
                ..artifact
            }
        } else if let Some(dir) = checkpoint_dir {
            // Checkpointed TLP bypasses the registry (the engine snapshot hook
            // is not part of the Algorithm trait) but still emits the same
            // artifact as every other path.
            let dir = Path::new(dir);
            let snapshot = if resume {
                let snapshot = read_checkpoint(dir).map_err(|e| e.to_string())?;
                match &snapshot {
                    Some(ckpt) => eprintln!(
                        "resuming from {} at round {} of {}",
                        dir.display(),
                        ckpt.next_round,
                        ckpt.num_partitions
                    ),
                    None => eprintln!("no checkpoint in {}, starting from round 0", dir.display()),
                }
                snapshot
            } else {
                None
            };
            let tlp = tlp::core::TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed));
            let mut persist = |ckpt: &tlp::core::EngineCheckpoint| {
                write_checkpoint(dir, ckpt)
                    .map_err(|e| tlp::core::PartitionError::Checkpoint(e.to_string()))
            };
            let start = std::time::Instant::now();
            let partition = tlp
                .partition_with_checkpoints(graph, p, snapshot.as_ref(), Some(&mut persist))
                .map_err(|e| e.to_string())?;
            let seconds = start.elapsed().as_secs_f64();
            let metrics = PartitionMetrics::compute(graph, &partition);
            let mut artifact = RunArtifact::new("TLP", partition, metrics, seconds);
            artifact.checkpoint_dir = Some(dir.to_path_buf());
            artifact
        } else {
            registry
                .run(algorithm, &config, &mut CsrSource::new(graph), p)
                .map_err(|e| e.to_string())?
        };
        Ok(artifact)
    };
    // Observation is strictly passive: the same compute closure runs either
    // way, and observed partitions are bit-identical to unobserved ones.
    let mut artifact = if profile_path.is_some() || obs_summary {
        let (result, events) = tlp::obs::with_recording(compute);
        let mut artifact = result?;
        if let Some(path) = &profile_path {
            use tlp::obs::Observer;
            let mut writer = tlp::obs::JsonlObserver::create(Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            for event in &events {
                writer.record(event.clone());
            }
            writer.finish().map_err(|e| format!("{path}: {e}"))?;
            eprintln!("profile trace written to {path} ({} events)", events.len());
        }
        let report = tlp::obs::ObsReport::fold(&events);
        if obs_summary {
            println!("{}", report.render_table());
        }
        artifact.obs = Some(report);
        artifact
    } else {
        compute()?
    };
    if trials > 1 {
        let (best, worst) = artifact.rf_spread();
        println!("trials:             {trials}");
        println!(
            "per-trial RF:       {}",
            artifact
                .trial_rfs
                .iter()
                .map(|rf| format!("{rf:.4}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!(
            "RF spread:          best {best:.4}, worst {worst:.4} (trial {} kept)",
            artifact.best_trial.unwrap_or(0)
        );
    }

    println!("algorithm:          {}", artifact.algorithm);
    println!("partitions:         {p}");
    println!(
        "replication factor: {:.4}",
        artifact.metrics.replication_factor
    );
    println!("balance:            {:.4}", artifact.metrics.balance);
    println!("spanned vertices:   {}", artifact.metrics.spanned_vertices);
    println!("time:               {:.2}s", artifact.seconds);

    if let Some(dir) = flags.get("out-store") {
        let manifest = write_partition_store(Path::new(dir), graph, &artifact.partition)
            .map_err(|e| e.to_string())?;
        artifact.store_dir = Some(Path::new(dir).to_path_buf());
        eprintln!(
            "partition store written to {dir} ({} segments, manifest RF {:.4}, balance {:.4})",
            manifest.segments.len(),
            manifest.replication_factor(),
            manifest.balance()
        );
    }

    if let Some(output) = flags.get("output") {
        let mut file = std::fs::File::create(output).map_err(|e| e.to_string())?;
        writeln!(file, "# source\ttarget\tpartition").map_err(|e| e.to_string())?;
        for (eid, edge) in graph.edge_iter().enumerate() {
            let (u, v) = edge.endpoints();
            writeln!(
                file,
                "{}\t{}\t{}",
                loaded.original_id(u as usize),
                loaded.original_id(v as usize),
                artifact.partition.partition_of(eid as u32)
            )
            .map_err(|e| e.to_string())?;
        }
        eprintln!("assignment written to {output}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = required(&flags, "input")?;
    let loaded = io::read_edge_list_file(input).map_err(|e| e.to_string())?;
    let stats = tlp::graph::stats::GraphStats::of(&loaded.graph);
    println!("{stats}");
    if let Some(alpha) = tlp::graph::degree::power_law_exponent_mle(&loaded.graph, 5) {
        println!("power-law exponent (MLE, d_min=5): {alpha:.2}");
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let family = required(&flags, "family")?;
    let n: usize = parsed(&flags, "vertices", 1000)?;
    let m: usize = parsed(&flags, "edges", 5000)?;
    let seed: u64 = parsed(&flags, "seed", 42)?;
    let graph = match family {
        "community" => gen::power_law_community(n, m, 2.1, (n / 100).max(2), 0.25, seed),
        "chung-lu" => gen::chung_lu(n, m, 2.1, seed),
        "erdos-renyi" => gen::erdos_renyi(n, m, seed),
        "barabasi-albert" => gen::barabasi_albert(n, (m / n).max(1), seed),
        "rmat" => gen::rmat(
            (n as f64).log2().ceil() as u32,
            m,
            gen::RmatProbabilities::default(),
            seed,
        ),
        "genealogy" => gen::genealogy(n, m.max(n - 1), seed),
        other => return Err(format!("unknown family {other:?}\n{USAGE}")),
    };
    match flags.get("output") {
        Some(output) => {
            let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
            io::write_edge_list(&graph, file).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} vertices / {} edges to {output}",
                graph.num_vertices(),
                graph.num_edges()
            );
        }
        None => {
            io::write_edge_list(&graph, std::io::stdout().lock()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}
