//! Sharded read-through LRU cache for hot vertex lookups.
//!
//! The service's vertex-info queries are read-heavy and zipf-skewed, so a
//! small cache in front of the replica-set computation absorbs most of
//! the traffic. The cache is sharded by vertex id (power-of-two shard
//! count, one mutex per shard) so concurrent readers on different shards
//! never contend. Each shard keeps an exact LRU via a monotone tick and a
//! `BTreeMap` recency index — O(log n) per touch, no unsafe linked lists.
//!
//! Coherence rule: writers ([`PlaceEdge`](crate::protocol::Request::PlaceEdge))
//! invalidate both endpoints *after* committing under the service's write
//! lock, and readers fill the cache while holding the read lock, so a
//! cached entry can never outlive the state it was derived from.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached vertex lookup result: master partition + full replica set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedVertex {
    /// The vertex's master partition; `None` for isolated vertices.
    pub master: Option<u32>,
    /// All partitions holding a replica, sorted ascending.
    pub replicas: Vec<u32>,
}

struct Shard {
    /// vertex → (recency tick, value)
    map: HashMap<u32, (u64, CachedVertex)>,
    /// recency tick → vertex; the smallest key is the LRU victim.
    order: BTreeMap<u64, u32>,
    tick: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, vertex: u32) {
        if let Some((tick, _)) = self.map.get(&vertex) {
            let old = *tick;
            self.order.remove(&old);
            self.tick += 1;
            let now = self.tick;
            self.order.insert(now, vertex);
            if let Some((tick, _)) = self.map.get_mut(&vertex) {
                *tick = now;
            }
        }
    }
}

/// Sharded LRU cache with atomic hit/miss/eviction counters.
///
/// A total capacity of zero disables caching entirely: every lookup is a
/// miss and nothing is stored.
pub struct VertexCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (total capacity / shard count, min 1).
    per_shard: usize,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VertexCache {
    /// Creates a cache holding roughly `capacity` entries spread over
    /// `shards` shards (rounded up to a power of two, at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shard_count).max(1)
        };
        VertexCache {
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard,
            mask: shard_count - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, vertex: u32) -> &Mutex<Shard> {
        // Multiplicative hash so consecutive vertex ids spread across
        // shards instead of striping.
        let slot = (vertex as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[slot as usize & self.mask]
    }

    /// Looks up a vertex, bumping its recency on a hit.
    pub fn get(&self, vertex: u32) -> Option<CachedVertex> {
        if self.per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(vertex).lock().unwrap_or_else(|e| e.into_inner());
        let hit = shard.map.get(&vertex).map(|(_, value)| value.clone());
        match hit {
            Some(value) => {
                shard.touch(vertex);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a vertex, evicting the shard's LRU entry if
    /// the shard is at capacity.
    pub fn insert(&self, vertex: u32, value: CachedVertex) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(vertex).lock().unwrap_or_else(|e| e.into_inner());
        if let Some((old_tick, _)) = shard.map.remove(&vertex) {
            shard.order.remove(&old_tick);
        } else if shard.map.len() >= self.per_shard {
            if let Some((&victim_tick, &victim)) = shard.order.iter().next() {
                shard.order.remove(&victim_tick);
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let now = shard.tick;
        shard.order.insert(now, vertex);
        shard.map.insert(vertex, (now, value));
    }

    /// Drops a vertex's entry (used by writers after mutating state).
    pub fn invalidate(&self, vertex: u32) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(vertex).lock().unwrap_or_else(|e| e.into_inner());
        if let Some((tick, _)) = shard.map.remove(&vertex) {
            shard.order.remove(&tick);
        }
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(master: u32) -> CachedVertex {
        CachedVertex {
            master: Some(master),
            replicas: vec![master],
        }
    }

    #[test]
    fn get_insert_invalidate_and_counters() {
        let cache = VertexCache::new(64, 4);
        assert_eq!(cache.get(1), None);
        cache.insert(1, v(3));
        assert_eq!(cache.get(1), Some(v(3)));
        cache.invalidate(1);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_per_shard() {
        // One shard so recency order is total.
        let cache = VertexCache::new(2, 1);
        cache.insert(10, v(0));
        cache.insert(20, v(1));
        // Touch 10 so 20 becomes the LRU victim.
        assert!(cache.get(10).is_some());
        cache.insert(30, v(2));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(20).is_none(), "LRU entry evicted");
        assert!(cache.get(10).is_some());
        assert!(cache.get(30).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = VertexCache::new(0, 8);
        cache.insert(1, v(0));
        assert_eq!(cache.get(1), None);
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_updates_value_without_eviction() {
        let cache = VertexCache::new(2, 1);
        cache.insert(1, v(0));
        cache.insert(1, v(5));
        assert_eq!(cache.get(1), Some(v(5)));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 1);
    }
}
