//! In-process partition service: the state machine behind the TCP server.
//!
//! [`PartitionService`] owns a served graph + partition pair and answers
//! every protocol request. Reads (vertex/edge/neighbor lookups) run under
//! a shared `RwLock` read guard; writes ([`Request::PlaceEdge`],
//! [`Request::Flush`]) take the write guard. The vertex cache sits in
//! front of the replica-set computation and is filled under the read lock
//! and invalidated under the write lock, so cached entries never outlive
//! the state they were derived from.
//!
//! Online placement runs a [`StreamingPlacer`] seeded from the served
//! partition's counts (`seeded_streaming_placer`), so the sequence of
//! partitions handed out by a live server is bit-identical to a direct
//! streaming continuation over the same fresh edges — the property the
//! bit-identity test and the CI replay diff pin down.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use tlp_baselines::StreamingPlacer;
use tlp_core::{EdgePartition, PartitionId};
use tlp_graph::{CsrGraph, Edge, GraphView, VertexId};
use tlp_obs::counter;
use tlp_store::{
    write_partition_store, LoadedGraph, PartitionStoreReader, PlacementWal, StoreError, WalRecord,
};

use crate::cache::{CachedVertex, VertexCache};
use crate::protocol::{ErrorCode, HealthReport, Request, Response, ServeStats};

/// Why a service could not be constructed.
#[derive(Debug)]
pub enum ServiceError {
    /// The backing partition store failed to open or load.
    Store(StoreError),
    /// The placement spec or the (graph, partition) pair was rejected.
    Config(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Store(e) => write!(f, "partition store error: {e}"),
            ServiceError::Config(msg) => write!(f, "service configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Store(e) => Some(e),
            ServiceError::Config(_) => None,
        }
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

/// Mutable half of the service: everything online placement touches.
struct MutableState {
    /// Seeded streaming placer; its internal loads/replica sets already
    /// account for the base partition and every accepted placement.
    placer: Box<dyn StreamingPlacer + Send + Sync>,
    /// Canonical placed edge → partition, for idempotent replays and
    /// edge lookups. Disjoint from the base graph's edge set.
    placements: HashMap<(VertexId, VertexId), PartitionId>,
    /// Placed-edge adjacency: vertex → [(neighbor, partition)].
    adjacency: HashMap<VertexId, Vec<(VertexId, PartitionId)>>,
    /// Placements accumulated since the last successful flush.
    pending: u64,
    /// Placement WAL for store-backed services: appended (and fsynced)
    /// *before* a fresh placement is acknowledged. `None` for in-memory
    /// services, which make no durability promise.
    wal: Option<PlacementWal>,
    /// Set when a WAL append or truncate failed: the log no longer covers
    /// the in-memory state, so fresh placements are refused (typed
    /// [`ErrorCode::Internal`]) until a successful flush re-establishes
    /// a durable baseline.
    wal_poisoned: bool,
}

/// Backing storage for the served base graph.
///
/// `Owned` is a service-private CSR (built in memory or rebuilt from a
/// partition store's segments). `Arena` co-owns a [`LoadedGraph`] — for
/// v2 files a zero-copy arena — so any number of services, trial runners,
/// and benchmarks can share one immutable graph instead of N copies. All
/// read paths go through [`ServedGraph::view`], so request handling is
/// identical for both backings.
enum ServedGraph {
    Owned(CsrGraph),
    Arena(Arc<LoadedGraph>),
}

impl ServedGraph {
    fn view(&self) -> GraphView<'_> {
        match self {
            ServedGraph::Owned(graph) => graph.view(),
            ServedGraph::Arena(loaded) => loaded.view(),
        }
    }
}

/// The served graph + partition pair and all request handling.
pub struct PartitionService {
    graph: ServedGraph,
    base: EdgePartition,
    store_dir: Option<PathBuf>,
    state: RwLock<MutableState>,
    cache: VertexCache,
    lookups: AtomicU64,
    placements_done: AtomicU64,
    flushes: AtomicU64,
    started: Instant,
    /// Microseconds after `started` of the last successful flush;
    /// `u64::MAX` = never flushed.
    last_flush_micros: AtomicU64,
}

impl PartitionService {
    /// Wraps an in-memory graph + partition, with online placement driven
    /// by `spec` (`"hdrf"`, `"hdrf=<lambda>"`, or `"greedy"`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] if the spec is unknown or the partition
    /// does not cover the graph.
    pub fn new(
        graph: CsrGraph,
        partition: EdgePartition,
        spec: &str,
        cache_capacity: usize,
    ) -> Result<Self, ServiceError> {
        Self::build(ServedGraph::Owned(graph), partition, spec, cache_capacity)
    }

    /// Wraps a [`LoadedGraph`] behind an `Arc`, sharing its storage (for
    /// v2 files, the zero-copy arena) with every other holder instead of
    /// copying the graph into the service.
    ///
    /// # Errors
    ///
    /// Same as [`PartitionService::new`].
    pub fn from_loaded(
        loaded: Arc<LoadedGraph>,
        partition: EdgePartition,
        spec: &str,
        cache_capacity: usize,
    ) -> Result<Self, ServiceError> {
        Self::build(ServedGraph::Arena(loaded), partition, spec, cache_capacity)
    }

    fn build(
        graph: ServedGraph,
        partition: EdgePartition,
        spec: &str,
        cache_capacity: usize,
    ) -> Result<Self, ServiceError> {
        let placer = tlp_pipeline::seeded_streaming_placer(spec, graph.view(), &partition)
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        Ok(PartitionService {
            graph,
            base: partition,
            store_dir: None,
            state: RwLock::new(MutableState {
                placer,
                placements: HashMap::new(),
                adjacency: HashMap::new(),
                pending: 0,
                wal: None,
                wal_poisoned: false,
            }),
            cache: VertexCache::new(cache_capacity, 16),
            lookups: AtomicU64::new(0),
            placements_done: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            started: Instant::now(),
            last_flush_micros: AtomicU64::new(u64::MAX),
        })
    }

    /// Opens a partition store directory and serves it; flushes write
    /// back into the same directory.
    ///
    /// If the directory carries a placement WAL (`wal.tlpw`), its records
    /// — every placement acknowledged before a crash — are replayed
    /// through the normal dedup path before serving starts: records whose
    /// edge already reached the base graph (the crash hit between a flush
    /// and its WAL truncate) are skipped, the rest re-drive the seeded
    /// placer, which by construction re-derives the recorded partitions.
    /// Zero acknowledged placements are lost.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] if the store is missing, torn, or corrupt
    /// (including a corrupt WAL record); [`ServiceError::Config`] for a
    /// bad placement spec or a WAL that disagrees with the replayed
    /// placer (a mismatched store/WAL pair).
    pub fn open_store(dir: &Path, spec: &str, cache_capacity: usize) -> Result<Self, ServiceError> {
        let reader = PartitionStoreReader::open(dir)?;
        let (graph, partition) = reader.load()?;
        let mut service = PartitionService::new(graph, partition, spec, cache_capacity)?;
        service.attach_store(dir)?;
        Ok(service)
    }

    /// Opens a partition store directory but serves the base graph from
    /// `graph_path` instead of rebuilding a CSR out of the store's
    /// segments: the file opens through [`LoadedGraph`] (for a v2 file,
    /// the zero-copy arena) and the segments contribute only the edge
    /// assignment, cross-checked edge by edge against the file. Flushes
    /// write back into `dir`, same as [`PartitionService::open_store`].
    ///
    /// # Errors
    ///
    /// Everything [`PartitionService::open_store`] reports, plus
    /// [`ServiceError::Store`] when the graph file and the store disagree
    /// on the edge set (they do not belong together).
    pub fn open_store_with_graph(
        dir: &Path,
        graph_path: &Path,
        spec: &str,
        cache_capacity: usize,
    ) -> Result<Self, ServiceError> {
        let loaded = Arc::new(LoadedGraph::open(graph_path)?);
        let reader = PartitionStoreReader::open(dir)?;
        let partition = reader.load_assignment(loaded.view())?;
        let mut service = Self::build(ServedGraph::Arena(loaded), partition, spec, cache_capacity)?;
        service.attach_store(dir)?;
        Ok(service)
    }

    /// Marks `dir` as this service's backing store and replays its
    /// placement WAL (every placement acknowledged before a crash)
    /// through the normal dedup path: records whose edge already reached
    /// the base graph are skipped, the rest re-drive the seeded placer,
    /// which by construction re-derives the recorded partitions.
    fn attach_store(&mut self, dir: &Path) -> Result<(), ServiceError> {
        self.store_dir = Some(dir.to_path_buf());

        let (wal, replay) = PlacementWal::open(dir)?;
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        for record in &replay.records {
            let (source, target) = (record.u, record.v);
            // Dedup path, same as a live PlaceEdge: base-graph edges
            // were flushed before the crash, duplicates are impossible
            // by the append-only-on-fresh rule but harmless.
            if self.graph.view().edge_id(source, target).is_some()
                || state.placements.contains_key(&(source, target))
            {
                continue;
            }
            let pid = state.placer.place(source, target);
            if pid != record.partition {
                return Err(ServiceError::Config(format!(
                    "wal replay of edge ({source},{target}) placed into partition {pid}, \
                     but the log recorded {} — store and wal do not belong together",
                    record.partition
                )));
            }
            Self::register_placement(state, source, target, pid);
            counter("serve.wal.replayed", 1);
        }
        state.wal = Some(wal);
        Ok(())
    }

    /// Sets the WAL group-commit interval (see
    /// [`PlacementWal::set_group_commit`]); no-op for in-memory services.
    pub fn set_wal_group_commit(&self, every: u64) {
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        if let Some(wal) = state.wal.as_mut() {
            wal.set_group_commit(every);
        }
    }

    /// A borrowed view of the served base graph.
    pub fn graph(&self) -> GraphView<'_> {
        self.graph.view()
    }

    /// Number of partitions served.
    pub fn num_partitions(&self) -> usize {
        self.base.num_partitions()
    }

    /// The vertex cache (for tests and counter export).
    pub fn cache(&self) -> &VertexCache {
        &self.cache
    }

    /// Handles one request against the service state. Infallible at this
    /// layer: failures become typed [`Response::Error`] replies.
    /// [`Request::Shutdown`] is acknowledged but drain orchestration
    /// belongs to the server in front of this service.
    pub fn handle(&self, request: &Request) -> Response {
        counter("serve.requests", 1);
        match request {
            Request::Ping => Response::Pong,
            Request::VertexLookup { vertex } => self.vertex_lookup(*vertex),
            Request::EdgeLookup { u, v } => self.edge_lookup(*u, *v),
            Request::Neighbors { vertex, partition } => self.neighbors(*vertex, *partition),
            Request::PlaceEdge { u, v } => self.place_edge(*u, *v),
            Request::Stats => Response::StatsReport(self.stats()),
            Request::Health => Response::HealthReport(self.health()),
            Request::Flush => self.flush(),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Durability snapshot (the `draining` field is false at this layer;
    /// the TCP server overlays its own drain state).
    pub fn health(&self) -> HealthReport {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let last_flush = self.last_flush_micros.load(Ordering::Relaxed);
        HealthReport {
            wal_depth: state.wal.as_ref().map_or(0, PlacementWal::depth),
            pending_placements: state.pending,
            flushes: self.flushes.load(Ordering::Relaxed),
            last_flush_age_secs: if last_flush == u64::MAX {
                u64::MAX
            } else {
                (self.started.elapsed().as_micros() as u64).saturating_sub(last_flush) / 1_000_000
            },
            durable: state.wal.is_some() && !state.wal_poisoned,
            draining: false,
        }
    }

    /// Service-level counter snapshot (server-level fields are zero; the
    /// TCP layer overlays its own).
    pub fn stats(&self) -> ServeStats {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        ServeStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            placements: self.placements_done.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            pending_placements: state.pending,
            num_vertices: self.graph.view().num_vertices() as u64,
            num_partitions: self.base.num_partitions() as u64,
            num_edges: self.graph.view().num_edges() as u64,
            ..ServeStats::default()
        }
    }

    fn in_range(&self, vertex: VertexId) -> bool {
        (vertex as usize) < self.graph.view().num_vertices()
    }

    /// Per-partition incident-edge counts for `vertex`, base + placed.
    fn partition_counts(&self, state: &MutableState, vertex: VertexId) -> Vec<u64> {
        let mut counts = vec![0u64; self.base.num_partitions()];
        for (_, eid) in self.graph.view().incident(vertex) {
            counts[self.base.partition_of(eid) as usize] += 1;
        }
        if let Some(placed) = state.adjacency.get(&vertex) {
            for &(_, pid) in placed {
                counts[pid as usize] += 1;
            }
        }
        counts
    }

    fn compute_vertex(&self, state: &MutableState, vertex: VertexId) -> CachedVertex {
        let counts = self.partition_counts(state, vertex);
        let mut master: Option<(u64, u32)> = None;
        let mut replicas = Vec::new();
        for (pid, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            replicas.push(pid as u32);
            // Strict > keeps the lowest pid on ties.
            if master.is_none_or(|(best, _)| count > best) {
                master = Some((count, pid as u32));
            }
        }
        CachedVertex {
            master: master.map(|(_, pid)| pid),
            replicas,
        }
    }

    fn vertex_lookup(&self, vertex: VertexId) -> Response {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        counter("serve.lookups", 1);
        if !self.in_range(vertex) {
            return Response::Error(ErrorCode::NotFound);
        }
        if let Some(cached) = self.cache.get(vertex) {
            counter("serve.cache.hits", 1);
            return Response::VertexInfo {
                master: cached.master,
                replicas: cached.replicas,
            };
        }
        counter("serve.cache.misses", 1);
        // Fill while holding the read lock: a concurrent writer cannot
        // commit (and invalidate) until this guard drops, so the entry we
        // insert matches the state we read.
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let info = self.compute_vertex(&state, vertex);
        self.cache.insert(vertex, info.clone());
        drop(state);
        Response::VertexInfo {
            master: info.master,
            replicas: info.replicas,
        }
    }

    fn edge_lookup(&self, u: VertexId, v: VertexId) -> Response {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        counter("serve.lookups", 1);
        if u == v || !self.in_range(u) || !self.in_range(v) {
            return Response::Error(if u == v {
                ErrorCode::BadRequest
            } else {
                ErrorCode::NotFound
            });
        }
        let edge = Edge::new(u, v);
        if let Some(eid) = self.graph.view().edge_id(edge.source(), edge.target()) {
            return Response::EdgeInfo {
                partition: self.base.partition_of(eid),
            };
        }
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        match state.placements.get(&(edge.source(), edge.target())) {
            Some(&pid) => Response::EdgeInfo { partition: pid },
            None => Response::Error(ErrorCode::NotFound),
        }
    }

    fn neighbors(&self, vertex: VertexId, partition: u32) -> Response {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        counter("serve.lookups", 1);
        if partition as usize >= self.base.num_partitions() {
            return Response::Error(ErrorCode::BadRequest);
        }
        if !self.in_range(vertex) {
            return Response::Error(ErrorCode::NotFound);
        }
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let mut neighbors: Vec<u32> = self
            .graph
            .view()
            .incident(vertex)
            .filter(|&(_, eid)| self.base.partition_of(eid) == partition)
            .map(|(n, _)| n)
            .collect();
        if let Some(placed) = state.adjacency.get(&vertex) {
            neighbors.extend(
                placed
                    .iter()
                    .filter(|&&(_, pid)| pid == partition)
                    .map(|&(n, _)| n),
            );
        }
        drop(state);
        neighbors.sort_unstable();
        Response::NeighborList { neighbors }
    }

    /// Records an accepted fresh placement in the lookup maps. The placer
    /// itself was already advanced by the caller.
    fn register_placement(state: &mut MutableState, source: VertexId, target: VertexId, pid: u32) {
        state.placements.insert((source, target), pid);
        state
            .adjacency
            .entry(source)
            .or_default()
            .push((target, pid));
        state
            .adjacency
            .entry(target)
            .or_default()
            .push((source, pid));
        state.pending += 1;
    }

    fn place_edge(&self, u: VertexId, v: VertexId) -> Response {
        if u == v || !self.in_range(u) || !self.in_range(v) {
            return Response::Error(ErrorCode::BadRequest);
        }
        let edge = Edge::new(u, v);
        let (source, target) = edge.endpoints();
        // Base-graph edges and duplicate placements are idempotent: report
        // the existing partition without consulting the placer, so the
        // placer's decision sequence depends only on *fresh* edges.
        if let Some(eid) = self.graph.view().edge_id(source, target) {
            return Response::Placed {
                partition: self.base.partition_of(eid),
                fresh: false,
            };
        }
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        // Poison check comes *before* the dedup check: a placement that was
        // applied in memory but never reached the log must not be re-acked
        // as a durable-looking duplicate on retry.
        if state.wal_poisoned {
            return Response::Error(ErrorCode::Internal);
        }
        if let Some(&pid) = state.placements.get(&(source, target)) {
            return Response::Placed {
                partition: pid,
                fresh: false,
            };
        }
        let pid = state.placer.place(source, target);
        // Append-before-ack: the record must be durable before the client
        // hears `Placed`. On failure the placement still enters the
        // in-memory maps (the placer already advanced; dropping it would
        // fork the decision sequence) but the ack is withheld and the
        // service refuses fresh placements until a flush re-baselines.
        let logged = match state.wal.as_mut() {
            Some(wal) => match wal.append(&WalRecord {
                u: source,
                v: target,
                partition: pid,
            }) {
                Ok(()) => {
                    counter("serve.wal.append", 1);
                    true
                }
                Err(_) => {
                    counter("serve.wal.append_failed", 1);
                    false
                }
            },
            None => true, // in-memory service: no durability promise
        };
        Self::register_placement(&mut state, source, target, pid);
        if !logged {
            state.wal_poisoned = true;
        }
        // Invalidate while still holding the write guard: a reader that
        // re-fills afterwards recomputes from the committed state.
        self.cache.invalidate(source);
        self.cache.invalidate(target);
        drop(state);
        if !logged {
            return Response::Error(ErrorCode::Internal);
        }
        self.placements_done.fetch_add(1, Ordering::Relaxed);
        counter("serve.placements", 1);
        Response::Placed {
            partition: pid,
            fresh: true,
        }
    }

    fn flush(&self) -> Response {
        let Some(dir) = &self.store_dir else {
            return Response::Error(ErrorCode::BadRequest);
        };
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        let edges = state.placements.len() as u64;
        match self.write_merged(dir, &state) {
            Ok(()) => {
                state.pending = 0;
                self.flushes.fetch_add(1, Ordering::Relaxed);
                self.last_flush_micros
                    .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
                counter("serve.flushes", 1);
                // The store now covers every logged placement, so the WAL
                // restarts empty. Truncation failure is non-fatal for this
                // flush (the store committed; replaying stale records is
                // idempotent) but poisons fresh placements until the next
                // successful flush re-baselines the log. Success clears an
                // earlier append poison for the same reason.
                if let Some(wal) = state.wal.as_mut() {
                    match wal.truncate() {
                        Ok(()) => state.wal_poisoned = false,
                        Err(_) => {
                            counter("serve.wal.truncate_failed", 1);
                            state.wal_poisoned = true;
                        }
                    }
                }
                Response::Flushed { edges }
            }
            Err(_) => Response::Error(ErrorCode::Internal),
        }
    }

    /// Merges base + placed edges into one sorted canonical list and
    /// rewrites the partition store atomically (manifest-last commit).
    fn write_merged(&self, dir: &Path, state: &MutableState) -> Result<(), ServiceError> {
        let mut placed: Vec<(Edge, PartitionId)> = state
            .placements
            .iter()
            .map(|(&(s, t), &pid)| (Edge::new(s, t), pid))
            .collect();
        placed.sort_unstable_by_key(|&(e, _)| e);

        let graph = self.graph.view();
        let base_len = graph.num_edges();
        let mut edges = Vec::with_capacity(base_len + placed.len());
        let mut assignment = Vec::with_capacity(base_len + placed.len());
        let mut bi = 0usize;
        let mut pi = 0usize;
        while bi < base_len || pi < placed.len() {
            let take_base = match (bi < base_len, placed.get(pi)) {
                (true, Some(&(p, _))) => graph.edge(bi as u32) < p,
                (true, None) => true,
                _ => false,
            };
            if take_base {
                edges.push(graph.edge(bi as u32));
                assignment.push(self.base.partition_of(bi as u32));
                bi += 1;
            } else {
                let (edge, pid) = placed[pi];
                edges.push(edge);
                assignment.push(pid);
                pi += 1;
            }
        }

        let merged_graph = CsrGraph::from_sorted_canonical_edges(graph.num_vertices(), edges)
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        let merged_partition = EdgePartition::new(self.base.num_partitions(), assignment)
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        write_partition_store(dir, &merged_graph, &merged_partition)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::GraphBuilder;

    /// Path graph 0-1-2-3 plus edge 0-2: partitions chosen by hand.
    fn service() -> PartitionService {
        let graph = GraphBuilder::new()
            .reserve_vertices(5)
            .add_edges([(0, 1), (1, 2), (2, 3), (0, 2)])
            .build();
        // Canonical sorted order: (0,1) (0,2) (1,2) (2,3).
        let partition = EdgePartition::new(2, vec![0, 1, 0, 1]).unwrap();
        PartitionService::new(graph, partition, "greedy", 128).unwrap()
    }

    #[test]
    fn vertex_lookup_reports_master_and_replicas() {
        let svc = service();
        // Vertex 2 touches edges (0,2)=p1, (1,2)=p0, (2,3)=p1 → master 1.
        match svc.handle(&Request::VertexLookup { vertex: 2 }) {
            Response::VertexInfo { master, replicas } => {
                assert_eq!(master, Some(1));
                assert_eq!(replicas, vec![0, 1]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Vertex 4 is isolated.
        match svc.handle(&Request::VertexLookup { vertex: 4 }) {
            Response::VertexInfo { master, replicas } => {
                assert_eq!(master, None);
                assert!(replicas.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Second lookup hits the cache.
        let before = svc.cache().hits();
        svc.handle(&Request::VertexLookup { vertex: 2 });
        assert_eq!(svc.cache().hits(), before + 1);
    }

    #[test]
    fn edge_and_neighbor_lookups() {
        let svc = service();
        assert_eq!(
            svc.handle(&Request::EdgeLookup { u: 2, v: 0 }),
            Response::EdgeInfo { partition: 1 },
            "endpoint order does not matter"
        );
        assert_eq!(
            svc.handle(&Request::EdgeLookup { u: 0, v: 3 }),
            Response::Error(ErrorCode::NotFound)
        );
        assert_eq!(
            svc.handle(&Request::Neighbors {
                vertex: 2,
                partition: 1
            }),
            Response::NeighborList {
                neighbors: vec![0, 3]
            }
        );
        assert_eq!(
            svc.handle(&Request::Neighbors {
                vertex: 2,
                partition: 9
            }),
            Response::Error(ErrorCode::BadRequest)
        );
    }

    #[test]
    fn placement_is_idempotent_and_updates_lookups() {
        let svc = service();
        // (1,3) is a fresh edge.
        let first = svc.handle(&Request::PlaceEdge { u: 3, v: 1 });
        let Response::Placed { partition, fresh } = first else {
            panic!("unexpected response {first:?}");
        };
        assert!(fresh);
        // Replay (either endpoint order) reports the same partition, stale.
        assert_eq!(
            svc.handle(&Request::PlaceEdge { u: 1, v: 3 }),
            Response::Placed {
                partition,
                fresh: false
            }
        );
        // The placed edge is now visible to lookups.
        assert_eq!(
            svc.handle(&Request::EdgeLookup { u: 1, v: 3 }),
            Response::EdgeInfo { partition }
        );
        // Base edges report their stored partition, stale.
        assert_eq!(
            svc.handle(&Request::PlaceEdge { u: 0, v: 1 }),
            Response::Placed {
                partition: 0,
                fresh: false
            }
        );
        // Self-loops and out-of-range endpoints are rejected.
        assert_eq!(
            svc.handle(&Request::PlaceEdge { u: 1, v: 1 }),
            Response::Error(ErrorCode::BadRequest)
        );
        assert_eq!(
            svc.handle(&Request::PlaceEdge { u: 1, v: 99 }),
            Response::Error(ErrorCode::BadRequest)
        );
        let stats = svc.stats();
        assert_eq!(stats.placements, 1);
        assert_eq!(stats.pending_placements, 1);
    }

    #[test]
    fn placement_invalidates_cached_vertices() {
        let svc = service();
        // Prime the cache for vertex 3 (edge (2,3)=p1 only).
        match svc.handle(&Request::VertexLookup { vertex: 3 }) {
            Response::VertexInfo { replicas, .. } => assert_eq!(replicas, vec![1]),
            other => panic!("unexpected response {other:?}"),
        }
        let Response::Placed { partition, .. } = svc.handle(&Request::PlaceEdge { u: 3, v: 1 })
        else {
            panic!("placement failed");
        };
        // The re-read must see the placed edge's partition.
        match svc.handle(&Request::VertexLookup { vertex: 3 }) {
            Response::VertexInfo { replicas, .. } => {
                assert!(
                    replicas.contains(&partition),
                    "replicas {replicas:?} missing placed partition {partition}"
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn flush_without_store_dir_is_rejected() {
        let svc = service();
        assert_eq!(
            svc.handle(&Request::Flush),
            Response::Error(ErrorCode::BadRequest)
        );
    }

    #[test]
    fn flush_roundtrips_through_partition_store() {
        let dir = std::env::temp_dir().join(format!(
            "tlp-serve-flush-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let svc = service();
        write_partition_store(&dir, svc.graph(), &svc.base).unwrap();
        let svc = PartitionService::open_store(&dir, "greedy", 128).unwrap();
        let Response::Placed { partition, .. } = svc.handle(&Request::PlaceEdge { u: 3, v: 1 })
        else {
            panic!("placement failed");
        };
        assert_eq!(svc.handle(&Request::Flush), Response::Flushed { edges: 1 });
        assert_eq!(svc.stats().pending_placements, 0);

        let reader = PartitionStoreReader::open(&dir).unwrap();
        let (graph, part) = reader.load().unwrap();
        assert_eq!(graph.num_edges(), 5);
        let eid = graph.edge_id(1, 3).expect("flushed edge present");
        assert_eq!(part.partition_of(eid), partition);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_store_with_graph_serves_from_the_arena() {
        let dir = std::env::temp_dir().join(format!(
            "tlp-serve-arena-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let built = service();
        let store_dir = dir.join("store");
        write_partition_store(&store_dir, built.graph(), &built.base).unwrap();
        let graph_path = dir.join("graph.tlpg");
        tlp_store::write_graph(
            &graph_path,
            &built.graph().to_csr_graph(),
            &tlp_store::WriteOptions::default(),
        )
        .unwrap();

        // Every request answered from the arena must match the
        // segment-rebuilt service bit for bit.
        let rebuilt = PartitionService::open_store(&store_dir, "greedy", 128).unwrap();
        let arena = PartitionService::open_store_with_graph(&store_dir, &graph_path, "greedy", 128)
            .unwrap();
        for request in [
            Request::VertexLookup { vertex: 2 },
            Request::EdgeLookup { u: 0, v: 2 },
            Request::Neighbors {
                vertex: 1,
                partition: 0,
            },
            Request::Stats,
        ] {
            assert_eq!(arena.handle(&request), rebuilt.handle(&request), "{request:?}");
        }

        // A graph that does not match the store is rejected, not served.
        let other = GraphBuilder::new()
            .reserve_vertices(5)
            .add_edges([(0, 1), (1, 2), (2, 3), (1, 3)])
            .build();
        let other_path = dir.join("other.tlpg");
        tlp_store::write_graph(&other_path, &other, &tlp_store::WriteOptions::default()).unwrap();
        let err = match PartitionService::open_store_with_graph(&store_dir, &other_path, "greedy", 128)
        {
            Ok(_) => panic!("a graph that does not match the store was accepted"),
            Err(err) => err,
        };
        assert!(
            matches!(err, ServiceError::Store(StoreError::Corrupt(_))),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
