//! Deterministic in-process TCP fault proxy for chaos testing.
//!
//! [`ChaosProxy`] sits between a client and a live `tlp-serve` server and
//! injects network faults on a seeded per-connection schedule: hard
//! connection drops, partial-frame truncation, byte-level corruption of
//! the response stream, and slow-loris stalls that outlast the client's
//! read timeout. Which connection gets which fault is a pure function of
//! `(seed, connection index)` — see [`ChaosSchedule::fault_for`] — so a
//! test can predict exactly which connections must be answered cleanly
//! and a failing run replays bit-identically from its seed.
//!
//! The proxy is the adversary in `serve_chaos.rs` and `chaos_ci.sh`: the
//! server behind it must never panic, never leak a worker, and keep
//! answering every clean connection while faults rain on the others.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64 — the same mixer the store's fault injector uses, local so
/// the schedule stays a pure leaf with no cross-crate coupling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fault a single proxied connection is subjected to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Relay faithfully in both directions until EOF.
    Clean,
    /// Drop the client connection immediately, before any upstream
    /// contact — the client sees a reset/EOF where a reply was due.
    Reset,
    /// Relay the request, then forward only a prefix of the reply and
    /// close — a torn response frame.
    Truncate,
    /// Relay the request, then flip one byte of the reply stream — an
    /// undecodable or checksum-violating frame.
    Corrupt,
    /// Swallow the request and stall past the client's read timeout
    /// without ever contacting the upstream (slow-loris).
    Stall,
}

/// Seeded per-connection fault plan.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    /// Seed for the fault choice and for byte positions inside
    /// truncate/corrupt faults.
    pub seed: u64,
    /// Every `clean_every`-th connection (index `0, clean_every, …`)
    /// passes clean; `0` means *no* guaranteed-clean connections.
    pub clean_every: u64,
    /// How long a [`ConnFault::Stall`] holds the connection open; pick
    /// something longer than the client's read timeout.
    pub stall: Duration,
}

impl Default for ChaosSchedule {
    fn default() -> Self {
        ChaosSchedule {
            seed: 0,
            clean_every: 2,
            stall: Duration::from_millis(500),
        }
    }
}

impl ChaosSchedule {
    /// The fault for the `index`-th accepted connection. Pure, so tests
    /// and the proxy agree on which connections are clean.
    pub fn fault_for(&self, index: u64) -> ConnFault {
        if self.clean_every != 0 && index.is_multiple_of(self.clean_every) {
            return ConnFault::Clean;
        }
        match mix(self.seed ^ index) % 4 {
            0 => ConnFault::Reset,
            1 => ConnFault::Truncate,
            2 => ConnFault::Corrupt,
            _ => ConnFault::Stall,
        }
    }
}

/// Snapshot of how many faults of each kind the proxy has injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Connections relayed faithfully.
    pub clean: u64,
    /// Connections dropped on arrival.
    pub resets: u64,
    /// Replies cut short mid-frame.
    pub truncations: u64,
    /// Replies with a flipped byte.
    pub corruptions: u64,
    /// Connections stalled past the read timeout.
    pub stalls: u64,
}

#[derive(Default)]
struct Counters {
    clean: AtomicU64,
    resets: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
}

struct Shared {
    upstream: SocketAddr,
    schedule: ChaosSchedule,
    stop: AtomicBool,
    counters: Counters,
    /// Finished connection-handler threads, joined on shutdown.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fault proxy; dropping it (or calling
/// [`shutdown`](ChaosProxy::shutdown)) stops the acceptor and joins
/// every handler.
pub struct ChaosProxy {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (use `"127.0.0.1:0"` for an ephemeral port) and
    /// starts proxying to `upstream` under `schedule`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the listener cannot bind.
    pub fn start(
        listen: &str,
        upstream: SocketAddr,
        schedule: ChaosSchedule,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            schedule,
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            handlers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ChaosProxy {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far.
    pub fn counts(&self) -> ChaosCounts {
        let c = &self.shared.counters;
        ChaosCounts {
            clean: c.clean.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            truncations: c.truncations.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins the acceptor and every handler thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock a parked accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers = {
            let mut guard = self
                .shared
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut index = 0u64;
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let fault = shared.schedule.fault_for(index);
        let conn_seed = mix(shared.schedule.seed ^ index.wrapping_add(0x5eed));
        index += 1;
        let shared_for_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            handle_connection(&shared_for_conn, client, fault, conn_seed);
        });
        shared
            .handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn handle_connection(shared: &Arc<Shared>, client: TcpStream, fault: ConnFault, conn_seed: u64) {
    let counters = &shared.counters;
    match fault {
        ConnFault::Reset => {
            counters.resets.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
        }
        ConnFault::Stall => {
            counters.stalls.fetch_add(1, Ordering::Relaxed);
            stall(shared, &client);
        }
        ConnFault::Clean | ConnFault::Truncate | ConnFault::Corrupt => {
            match fault {
                ConnFault::Clean => counters.clean.fetch_add(1, Ordering::Relaxed),
                ConnFault::Truncate => counters.truncations.fetch_add(1, Ordering::Relaxed),
                _ => counters.corruptions.fetch_add(1, Ordering::Relaxed),
            };
            relay(shared, client, fault, conn_seed);
        }
    }
}

/// Reads (and discards) whatever the client sends, without answering,
/// until the stall budget elapses — the client's read timeout fires
/// first if the schedule is configured as documented.
fn stall(shared: &Shared, client: &TcpStream) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(20)));
    let deadline = std::time::Instant::now() + shared.schedule.stall;
    let mut sink = [0u8; 256];
    let mut conn = client;
    while std::time::Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
        match conn.read(&mut sink) {
            Ok(0) => break, // client gave up
            Ok(_) => {}     // swallow
            Err(_) => {}    // timeout tick; keep stalling
        }
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// Bidirectional relay. The request direction is always faithful; the
/// reply direction applies the fault.
fn relay(shared: &Arc<Shared>, client: TcpStream, fault: ConnFault, conn_seed: u64) {
    let upstream = match TcpStream::connect(shared.upstream) {
        Ok(stream) => stream,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    // Short read timeouts keep both pumps responsive to proxy shutdown.
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    let up = {
        let (client, upstream) = match (client.try_clone(), upstream.try_clone()) {
            (Ok(c), Ok(u)) => (c, u),
            _ => {
                let _ = client.shutdown(Shutdown::Both);
                return;
            }
        };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || pump(client, upstream, &shared.stop, &mut Faithful))
    };
    let mut transform: Box<dyn ReplyTransform> = match fault {
        ConnFault::Truncate => Box::new(Truncating {
            // Cut inside the first reply frame: past the length prefix,
            // short of any full minimal frame.
            budget: 1 + (conn_seed % 5) as usize,
        }),
        ConnFault::Corrupt => Box::new(Corrupting {
            // Flip a low-offset byte so the damage lands in the first
            // frame's header or body, not in a never-read tail.
            at: (conn_seed % 7) as usize,
            xor: (0x01u8 << (conn_seed % 8)).max(1),
            seen: 0,
            done: false,
        }),
        _ => Box::new(Faithful),
    };
    pump(upstream, client, &shared.stop, transform.as_mut());
    let _ = up.join();
}

/// Byte-stream transform applied to the reply direction.
trait ReplyTransform: Send {
    /// Mutates/limits `chunk`; returns `false` to cut the connection
    /// after forwarding whatever remains in `chunk`.
    fn apply(&mut self, chunk: &mut Vec<u8>) -> bool;
}

struct Faithful;
impl ReplyTransform for Faithful {
    fn apply(&mut self, _chunk: &mut Vec<u8>) -> bool {
        true
    }
}

struct Truncating {
    budget: usize,
}
impl ReplyTransform for Truncating {
    fn apply(&mut self, chunk: &mut Vec<u8>) -> bool {
        if chunk.len() >= self.budget {
            chunk.truncate(self.budget);
            return false;
        }
        self.budget -= chunk.len();
        true
    }
}

struct Corrupting {
    at: usize,
    xor: u8,
    seen: usize,
    done: bool,
}
impl ReplyTransform for Corrupting {
    fn apply(&mut self, chunk: &mut Vec<u8>) -> bool {
        if !self.done && self.at < self.seen + chunk.len() {
            let offset = self.at - self.seen;
            chunk[offset] ^= self.xor;
            self.done = true;
        }
        self.seen += chunk.len();
        true
    }
}

/// One-direction byte pump with a transform; exits on EOF, error, stop
/// flag, or when the transform cuts the stream.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    stop: &AtomicBool,
    transform: &mut dyn ReplyTransform,
) {
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let mut chunk = buf[..n].to_vec();
                let keep_going = transform.apply(&mut chunk);
                if to.write_all(&chunk).is_err() || to.flush().is_err() {
                    break;
                }
                if !keep_going {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn schedule_is_deterministic_and_covers_every_fault() {
        let schedule = ChaosSchedule {
            seed: 9,
            clean_every: 2,
            stall: Duration::from_millis(1),
        };
        let a: Vec<ConnFault> = (0..64).map(|i| schedule.fault_for(i)).collect();
        let b: Vec<ConnFault> = (0..64).map(|i| schedule.fault_for(i)).collect();
        assert_eq!(a, b, "same seed, same plan");
        for (i, fault) in a.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*fault, ConnFault::Clean, "even connections are clean");
            }
        }
        for needed in [
            ConnFault::Reset,
            ConnFault::Truncate,
            ConnFault::Corrupt,
            ConnFault::Stall,
        ] {
            assert!(
                a.contains(&needed),
                "64 connections never drew {needed:?} — schedule too narrow"
            );
        }
        let other = ChaosSchedule {
            seed: 10,
            ..schedule.clone()
        };
        let c: Vec<ConnFault> = (0..64).map(|i| other.fault_for(i)).collect();
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn clean_every_zero_means_no_guaranteed_clean_slots() {
        let schedule = ChaosSchedule {
            seed: 3,
            clean_every: 0,
            stall: Duration::from_millis(1),
        };
        assert!((0..32).all(|i| schedule.fault_for(i) != ConnFault::Clean));
    }
}
