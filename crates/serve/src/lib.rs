//! `tlp-serve`: online serving of partitioned graphs.
//!
//! The partitioners in this workspace *produce* edge partitions; this
//! crate *serves* one. [`PartitionService`] opens a `.tlpg` graph +
//! partition store and answers vertex→master/replica lookups,
//! edge→partition lookups, partition-local neighbor queries, and online
//! [`PlaceEdge`](protocol::Request::PlaceEdge) placement of fresh edges
//! via a [`tlp_baselines::StreamingPlacer`] seeded from the served
//! partition — so a live server's placements are bit-identical to a
//! direct streaming continuation.
//!
//! Around the service sit:
//! - [`protocol`] — the length-prefixed, versioned binary frame format;
//! - [`cache`] — a sharded read-through LRU for hot vertex lookups;
//! - [`server`] — a bounded-queue TCP front-end (`std::net`, fixed
//!   worker pool, typed overload/drain refusals, graceful shutdown);
//! - [`client`] — a minimal blocking client;
//! - [`loadgen`] — a zipf-skewed read/write load generator reporting
//!   throughput + latency percentiles through the shared obs path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CachedVertex, VertexCache};
pub use client::ServeClient;
pub use loadgen::{
    run_burst, run_load, run_replay, BurstReport, LoadConfig, LoadReport, ReplayReport, ZipfSampler,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, ProtocolError, Request, Response, ServeStats, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use service::{PartitionService, ServiceError};
