//! `tlp-serve`: online serving of partitioned graphs.
//!
//! The partitioners in this workspace *produce* edge partitions; this
//! crate *serves* one. [`PartitionService`] opens a `.tlpg` graph +
//! partition store and answers vertex→master/replica lookups,
//! edge→partition lookups, partition-local neighbor queries, and online
//! [`PlaceEdge`](protocol::Request::PlaceEdge) placement of fresh edges
//! via a [`tlp_baselines::StreamingPlacer`] seeded from the served
//! partition — so a live server's placements are bit-identical to a
//! direct streaming continuation.
//!
//! Around the service sit:
//! - [`protocol`] — the length-prefixed, versioned binary frame format;
//! - [`cache`] — a sharded read-through LRU for hot vertex lookups;
//! - [`server`] — a bounded-queue TCP front-end (`std::net`, fixed
//!   worker pool, typed overload/drain refusals, graceful shutdown);
//! - [`client`] — a minimal blocking client plus a retrying wrapper
//!   ([`RetryingClient`]) with seeded decorrelated-jitter backoff;
//! - [`loadgen`] — a zipf-skewed read/write load generator reporting
//!   throughput + latency percentiles through the shared obs path;
//! - [`chaos`] — a deterministic TCP fault proxy (resets, truncation,
//!   corruption, slow-loris stalls) for chaos testing the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CachedVertex, VertexCache};
pub use chaos::{ChaosCounts, ChaosProxy, ChaosSchedule, ConnFault};
pub use client::{
    request_is_idempotent, AttemptError, ClientError, RetryPolicy, RetryingClient, ServeClient,
};
pub use loadgen::{
    run_burst, run_load, run_replay, BurstReport, LoadConfig, LoadReport, ReplayReport, ZipfSampler,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, HealthReport, ProtocolError, Request, Response, ServeStats, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use service::{PartitionService, ServiceError};
