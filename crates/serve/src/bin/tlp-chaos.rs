//! Standalone chaos proxy for CI and manual fault drills.
//!
//! ```text
//! tlp-chaos LISTEN_ADDR UPSTREAM_ADDR [--seed N] [--clean-every N]
//!           [--stall-ms N]
//! ```
//!
//! Binds `LISTEN_ADDR` (port 0 for ephemeral), proxies to
//! `UPSTREAM_ADDR`, and injects the seeded fault schedule described in
//! [`tlp_serve::chaos`]. Prints `tlp-chaos listening on ADDR` once ready
//! and runs until killed; fault counts go to stderr every few seconds so
//! a CI log shows the storm actually happened.

use std::process::ExitCode;
use std::time::Duration;

use tlp_serve::{ChaosProxy, ChaosSchedule};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tlp-chaos LISTEN_ADDR UPSTREAM_ADDR [--seed N] [--clean-every N] [--stall-ms N]"
    );
    ExitCode::from(2)
}

struct Cli {
    listen: String,
    upstream: String,
    schedule: ChaosSchedule,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut positional = Vec::new();
    let mut schedule = ChaosSchedule::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--seed" => schedule.seed = parse(&value_for("--seed")?)?,
            "--clean-every" => schedule.clean_every = parse(&value_for("--clean-every")?)?,
            "--stall-ms" => {
                schedule.stall = Duration::from_millis(parse(&value_for("--stall-ms")?)?);
            }
            _ if !arg.starts_with('-') && positional.len() < 2 => positional.push(arg),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let mut positional = positional.into_iter();
    let (Some(listen), Some(upstream)) = (positional.next(), positional.next()) else {
        return Err("need LISTEN_ADDR and UPSTREAM_ADDR".to_string());
    };
    Ok(Cli {
        listen,
        upstream,
        schedule,
    })
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("not a valid number: {raw:?}"))
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("tlp-chaos: {message}");
            }
            return usage();
        }
    };
    let upstream = match cli.upstream.parse() {
        Ok(addr) => addr,
        Err(_) => {
            eprintln!("tlp-chaos: not a socket address: {:?}", cli.upstream);
            return usage();
        }
    };
    let proxy = match ChaosProxy::start(&cli.listen, upstream, cli.schedule) {
        Ok(proxy) => proxy,
        Err(error) => {
            eprintln!("tlp-chaos: bind {}: {error}", cli.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("tlp-chaos listening on {}", proxy.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3));
        let counts = proxy.counts();
        eprintln!(
            "tlp-chaos: {} clean, {} resets, {} truncations, {} corruptions, {} stalls",
            counts.clean, counts.resets, counts.truncations, counts.corruptions, counts.stalls
        );
    }
}
