//! Serves a partition store over TCP.
//!
//! ```text
//! tlp-serve STORE_DIR [--addr HOST:PORT] [--placer SPEC] [--workers N]
//!           [--queue-depth N] [--cache N] [--read-timeout-secs N]
//! ```
//!
//! Prints `tlp-serve listening on ADDR` once the listener is bound (with
//! `--addr 127.0.0.1:0` the kernel-assigned port appears here), then
//! serves until a client sends `Shutdown` or the process is killed.
//! Placement uses a streaming placer (`hdrf`, `hdrf=<lambda>`, or
//! `greedy`) seeded from the served partition, and `Flush` rewrites the
//! store in place through the atomic manifest-last commit.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tlp_serve::{serve, PartitionService, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tlp-serve STORE_DIR [--addr HOST:PORT] [--placer SPEC] [--workers N] \
         [--queue-depth N] [--cache N] [--read-timeout-secs N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut placer = "hdrf".to_string();
    let mut config = ServerConfig::default();
    let mut cache = 4096usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return usage(),
            "--addr" => match value_for("--addr") {
                Ok(v) => addr = v,
                Err(e) => return fail(&e),
            },
            "--placer" => match value_for("--placer") {
                Ok(v) => placer = v,
                Err(e) => return fail(&e),
            },
            "--workers" => match parse(value_for("--workers")) {
                Ok(v) => config.workers = v,
                Err(e) => return fail(&e),
            },
            "--queue-depth" => match parse(value_for("--queue-depth")) {
                Ok(v) => config.queue_depth = v,
                Err(e) => return fail(&e),
            },
            "--cache" => match parse(value_for("--cache")) {
                Ok(v) => cache = v,
                Err(e) => return fail(&e),
            },
            "--read-timeout-secs" => match parse::<u64>(value_for("--read-timeout-secs")) {
                Ok(v) => config.read_timeout = Duration::from_secs(v.max(1)),
                Err(e) => return fail(&e),
            },
            _ if store.is_none() && !arg.starts_with('-') => store = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let Some(store) = store else {
        return usage();
    };

    let service = match PartitionService::open_store(&store, &placer, cache) {
        Ok(service) => service,
        Err(error) => return fail(&format!("{}: {error}", store.display())),
    };
    eprintln!(
        "tlp-serve: store {} — {} vertices, {} edges, {} partitions, placer {placer}",
        store.display(),
        service.graph().num_vertices(),
        service.graph().num_edges(),
        service.num_partitions(),
    );
    let handle = match serve(service, &addr, config) {
        Ok(handle) => handle,
        Err(error) => return fail(&format!("bind {addr}: {error}")),
    };
    println!("tlp-serve listening on {}", handle.addr());
    // The parent (a CI script) reads the line to learn the port; make
    // sure it is not stuck in the stdout buffer.
    let _ = std::io::stdout().flush();
    handle.wait();
    eprintln!("tlp-serve: drained, exiting");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(value: Result<String, String>) -> Result<T, String> {
    let raw = value?;
    raw.parse()
        .map_err(|_| format!("not a valid number: {raw:?}"))
}

fn fail(message: &str) -> ExitCode {
    eprintln!("tlp-serve: {message}");
    ExitCode::FAILURE
}
