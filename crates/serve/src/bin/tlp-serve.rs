//! Serves a partition store over TCP.
//!
//! ```text
//! tlp-serve STORE_DIR [--graph FILE.tlpg] [--addr HOST:PORT] [--placer SPEC]
//!           [--workers N] [--queue-depth N] [--cache N]
//!           [--read-timeout-secs N] [--write-timeout-ms N]
//!           [--wal-group-commit N]
//! ```
//!
//! Prints `tlp-serve listening on ADDR` once the listener is bound (with
//! `--addr 127.0.0.1:0` the kernel-assigned port appears here), then
//! serves until a client sends `Shutdown` or the process is killed.
//! Placement uses a streaming placer (`hdrf`, `hdrf=<lambda>`, or
//! `greedy`) seeded from the served partition; every fresh placement is
//! appended to the store's durable WAL before it is acknowledged, and
//! `Flush` rewrites the store in place through the atomic manifest-last
//! commit (then truncates the WAL). On startup, WAL records left by a
//! crash are replayed before serving begins. With `--graph`, the base
//! graph is served from the given `.tlpg` file (for a v2 file, straight
//! out of the zero-copy arena) and the store contributes only the edge
//! assignment, cross-checked against the file.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tlp_serve::{serve, PartitionService, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tlp-serve STORE_DIR [--graph FILE.tlpg] [--addr HOST:PORT] [--placer SPEC] \
         [--workers N] [--queue-depth N] [--cache N] [--read-timeout-secs N] \
         [--write-timeout-ms N] [--wal-group-commit N]"
    );
    ExitCode::from(2)
}

/// Everything the command line controls, parsed before any I/O happens.
#[derive(Debug)]
struct Cli {
    store: PathBuf,
    graph: Option<PathBuf>,
    addr: String,
    placer: String,
    config: ServerConfig,
    cache: usize,
    wal_group_commit: u64,
}

/// Parses the argument list. `Err(message)` is a usage error (exit 2);
/// an empty message means plain `--help`.
fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut store: Option<PathBuf> = None;
    let mut graph: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut placer = "hdrf".to_string();
    let mut config = ServerConfig::default();
    let mut cache = 4096usize;
    let mut wal_group_commit = 1u64;

    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => addr = value_for("--addr")?,
            "--graph" => graph = Some(PathBuf::from(value_for("--graph")?)),
            "--placer" => placer = value_for("--placer")?,
            "--workers" => config.workers = parse(&value_for("--workers")?)?,
            "--queue-depth" => config.queue_depth = parse(&value_for("--queue-depth")?)?,
            "--cache" => cache = parse(&value_for("--cache")?)?,
            "--read-timeout-secs" => {
                let secs: u64 = parse(&value_for("--read-timeout-secs")?)?;
                if secs == 0 {
                    return Err(
                        "--read-timeout-secs must be at least 1 (0 would let a dead peer \
                         pin a worker forever)"
                            .to_string(),
                    );
                }
                config.read_timeout = Duration::from_secs(secs);
            }
            "--write-timeout-ms" => {
                let millis: u64 = parse(&value_for("--write-timeout-ms")?)?;
                if millis == 0 {
                    return Err("--write-timeout-ms must be at least 1".to_string());
                }
                config.write_timeout = Duration::from_millis(millis);
            }
            "--wal-group-commit" => {
                wal_group_commit = parse(&value_for("--wal-group-commit")?)?;
                if wal_group_commit == 0 {
                    return Err("--wal-group-commit must be at least 1".to_string());
                }
            }
            _ if store.is_none() && !arg.starts_with('-') => store = Some(PathBuf::from(arg)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let Some(store) = store else {
        return Err("need a STORE_DIR".to_string());
    };
    Ok(Cli {
        store,
        graph,
        addr,
        placer,
        config,
        cache,
        wal_group_commit,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("tlp-serve: {message}");
            }
            return usage();
        }
    };

    let service = match &cli.graph {
        Some(graph) => {
            PartitionService::open_store_with_graph(&cli.store, graph, &cli.placer, cli.cache)
        }
        None => PartitionService::open_store(&cli.store, &cli.placer, cli.cache),
    };
    let service = match service {
        Ok(service) => service,
        Err(error) => return fail(&format!("{}: {error}", cli.store.display())),
    };
    service.set_wal_group_commit(cli.wal_group_commit);
    let health = service.health();
    eprintln!(
        "tlp-serve: store {} — {} vertices, {} edges, {} partitions, placer {}, \
         {} wal records recovered",
        cli.store.display(),
        service.graph().num_vertices(),
        service.graph().num_edges(),
        service.num_partitions(),
        cli.placer,
        health.pending_placements,
    );
    let handle = match serve(service, &cli.addr, cli.config) {
        Ok(handle) => handle,
        Err(error) => return fail(&format!("bind {}: {error}", cli.addr)),
    };
    println!("tlp-serve listening on {}", handle.addr());
    // The parent (a CI script) reads the line to learn the port; make
    // sure it is not stuck in the stdout buffer.
    let _ = std::io::stdout().flush();
    handle.wait();
    eprintln!("tlp-serve: drained, exiting");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("not a valid number: {raw:?}"))
}

fn fail(message: &str) -> ExitCode {
    eprintln!("tlp-serve: {message}");
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn parse_line(line: &str) -> Result<Cli, String> {
        parse_args(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn defaults_and_overrides() {
        let cli = parse_line("store").unwrap();
        assert_eq!(cli.store, PathBuf::from("store"));
        assert_eq!(cli.addr, "127.0.0.1:0");
        assert_eq!(cli.placer, "hdrf");
        assert_eq!(cli.wal_group_commit, 1);

        let cli = parse_line(
            "store --addr 0.0.0.0:7070 --placer greedy --workers 2 --queue-depth 8 \
             --cache 64 --read-timeout-secs 5 --write-timeout-ms 50 --wal-group-commit 16",
        )
        .unwrap();
        assert_eq!(cli.addr, "0.0.0.0:7070");
        assert_eq!(cli.placer, "greedy");
        assert_eq!(cli.config.workers, 2);
        assert_eq!(cli.config.queue_depth, 8);
        assert_eq!(cli.cache, 64);
        assert_eq!(cli.config.read_timeout, Duration::from_secs(5));
        assert_eq!(cli.config.write_timeout, Duration::from_millis(50));
        assert_eq!(cli.wal_group_commit, 16);
    }

    #[test]
    fn zero_timeouts_are_usage_errors_not_silent_clamps() {
        let err = parse_line("store --read-timeout-secs 0").unwrap_err();
        assert!(err.contains("--read-timeout-secs"), "{err}");
        let err = parse_line("store --write-timeout-ms 0").unwrap_err();
        assert!(err.contains("--write-timeout-ms"), "{err}");
        let err = parse_line("store --wal-group-commit 0").unwrap_err();
        assert!(err.contains("--wal-group-commit"), "{err}");
    }

    #[test]
    fn missing_store_values_and_unknown_flags_are_rejected() {
        assert!(parse_line("").unwrap_err().contains("STORE_DIR"));
        assert!(parse_line("store --workers")
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_line("store --bogus")
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_line("store --workers nope")
            .unwrap_err()
            .contains("not a valid number"));
        // --help is a clean (empty-message) usage exit.
        assert_eq!(parse_line("--help").unwrap_err(), "");
    }
}
