//! Drives load against a running `tlp-serve` server.
//!
//! ```text
//! tlp-loadgen ADDR [--ops N] [--threads N] [--read-ratio F] [--zipf S]
//!             [--seed N] [--bench FILE] [--flush] [--shutdown]
//! tlp-loadgen ADDR --burst K          # saturation probe
//! tlp-loadgen --replay STORE_DIR [--ops N] [--read-ratio F] ...
//! ```
//!
//! The normal mode discovers the served graph's dimensions with a
//! `Stats` request, runs the configured read/write mix, and prints a
//! one-line summary; `--bench FILE` additionally writes the full
//! [`LoadReport`](tlp_serve::LoadReport) through the shared obs bench
//! writer. Exits non-zero if any protocol error occurred.
//!
//! `--replay STORE_DIR` applies the *same* request stream (same seed and
//! generator) directly to the store, offline — the ground truth the CI
//! bit-identity diff compares a served run against (single thread only).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tlp_serve::{
    run_burst, run_load, run_replay, LoadConfig, Request, Response, RetryPolicy, ServeClient,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tlp-loadgen ADDR [--ops N] [--threads N] [--read-ratio F] [--zipf S] \
         [--seed N] [--retry-attempts N] [--retry-deadline-ms N] \
         [--bench FILE] [--flush] [--shutdown] [--burst K]\n\
         \u{20}      tlp-loadgen --replay STORE_DIR [--placer SPEC] [load flags]"
    );
    ExitCode::from(2)
}

struct Cli {
    addr: Option<String>,
    replay: Option<PathBuf>,
    placer: String,
    bench: Option<PathBuf>,
    burst: Option<usize>,
    flush: bool,
    shutdown: bool,
    config: LoadConfig,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        addr: None,
        replay: None,
        placer: "hdrf".to_string(),
        bench: None,
        burst: None,
        flush: false,
        shutdown: false,
        config: LoadConfig {
            addr: String::new(),
            threads: 4,
            ops: 10_000,
            read_ratio: 0.9,
            zipf_skew: 1.1,
            num_vertices: 0,
            num_partitions: 0,
            seed: 42,
            read_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
        },
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--replay" => cli.replay = Some(PathBuf::from(value_for("--replay")?)),
            "--placer" => cli.placer = value_for("--placer")?,
            "--bench" => cli.bench = Some(PathBuf::from(value_for("--bench")?)),
            "--burst" => cli.burst = Some(parse(&value_for("--burst")?)?),
            "--ops" => cli.config.ops = parse(&value_for("--ops")?)?,
            "--threads" => cli.config.threads = parse(&value_for("--threads")?)?,
            "--read-ratio" => cli.config.read_ratio = parse(&value_for("--read-ratio")?)?,
            "--zipf" => cli.config.zipf_skew = parse(&value_for("--zipf")?)?,
            "--seed" => cli.config.seed = parse(&value_for("--seed")?)?,
            "--retry-attempts" => {
                cli.config.retry.max_attempts = parse(&value_for("--retry-attempts")?)?;
                if cli.config.retry.max_attempts == 0 {
                    return Err("--retry-attempts must be at least 1".to_string());
                }
            }
            "--retry-deadline-ms" => {
                cli.config.retry.deadline =
                    Duration::from_millis(parse(&value_for("--retry-deadline-ms")?)?);
            }
            "--flush" => cli.flush = true,
            "--shutdown" => cli.shutdown = true,
            _ if cli.addr.is_none() && !arg.starts_with('-') => cli.addr = Some(arg),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("not a valid number: {raw:?}"))
}

fn main() -> ExitCode {
    let mut cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("tlp-loadgen: {message}");
            }
            return usage();
        }
    };

    if let Some(store) = &cli.replay {
        cli.config.threads = 1;
        return match run_replay(&cli.config, store, &cli.placer) {
            Ok(report) => {
                println!(
                    "replay: {} ops, {} placements, {} flushed into {}",
                    report.ops,
                    report.placements,
                    report.flushed,
                    store.display()
                );
                ExitCode::SUCCESS
            }
            Err(error) => {
                eprintln!("tlp-loadgen: replay: {error}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(addr) = cli.addr.clone() else {
        return usage();
    };
    cli.config.addr = addr.clone();

    if let Some(connections) = cli.burst {
        let report = run_burst(&addr, connections, cli.config.read_timeout);
        println!(
            "burst: {} attempted, {} served, {} overloaded, {} draining, \
             {} timeouts, {} resets",
            report.attempted,
            report.served,
            report.overloaded,
            report.draining,
            report.timeouts,
            report.resets
        );
        if let Some(bench) = &cli.bench {
            if let Err(error) = tlp_obs::bench::write_bench_json(bench, &report) {
                eprintln!("tlp-loadgen: {}: {error}", bench.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    // Discover the served graph's dimensions.
    let mut control = match ServeClient::connect(&addr, cli.config.read_timeout) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("tlp-loadgen: connect {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match control.request(&Request::Stats) {
        Ok(Response::StatsReport(stats)) => {
            cli.config.num_vertices = stats.num_vertices as u32;
            cli.config.num_partitions = stats.num_partitions as u32;
        }
        other => {
            eprintln!("tlp-loadgen: stats request failed: {other:?}");
            return ExitCode::FAILURE;
        }
    }

    let report = match run_load(&cli.config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("tlp-loadgen: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "load: {} ops ({} ok, {} not-found, {} refused, {} protocol errors: \
         {} timeouts + {} resets; {} retries) in {:.2}s — \
         {:.0} ops/s, p50 {}us p95 {}us p99 {}us",
        report.ops,
        report.ok,
        report.not_found,
        report.refused,
        report.protocol_errors,
        report.timeouts,
        report.resets,
        report.retries,
        report.elapsed_us as f64 / 1e6,
        report.throughput,
        report.latency.p50,
        report.latency.p95,
        report.latency.p99,
    );
    if let Some(bench) = &cli.bench {
        if let Err(error) = tlp_obs::bench::write_bench_json(bench, &report) {
            eprintln!("tlp-loadgen: {}: {error}", bench.display());
            return ExitCode::FAILURE;
        }
        println!("bench report written to {}", bench.display());
    }

    if cli.flush {
        match control.request(&Request::Flush) {
            Ok(Response::Flushed { edges }) => println!("flushed {edges} placements"),
            other => {
                eprintln!("tlp-loadgen: flush failed: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cli.shutdown {
        match control.request(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => println!("server draining"),
            other => {
                eprintln!("tlp-loadgen: shutdown failed: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    if report.protocol_errors > 0 {
        eprintln!(
            "tlp-loadgen: {} protocol errors — failing",
            report.protocol_errors
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
