//! The `tlp-serve` wire protocol: length-prefixed, versioned binary frames.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +----------------+-----------+------------------+
//! | len: u32 LE    | ver: u8   | body: len-1 bytes|
//! +----------------+-----------+------------------+
//! ```
//!
//! `len` counts the version byte plus the body, so an empty body is
//! illegal and a reader always knows exactly how much to consume. Bodies
//! start with a one-byte opcode (requests `0x01..`, responses `0x81..`)
//! followed by fixed-width little-endian fields; variable-length lists are
//! `u32` count prefixed. Frames larger than [`MAX_FRAME_LEN`] are refused
//! before any allocation, so a hostile length prefix can never balloon
//! memory.
//!
//! Decoding mirrors the store's torn-tail contract: truncated or garbage
//! bytes yield a typed [`ProtocolError`], never a panic, and trailing
//! bytes after a well-formed message are an error (a frame is exactly one
//! message).

use std::io::{self, Read, Write};

/// Wire protocol version stamped into every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame's declared length (version byte + body). Large
/// enough for any response the server emits (a neighbor list of a
/// maximum-degree vertex), small enough that a corrupt length prefix
/// cannot trigger an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 22;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Vertex → master/replica-set lookup.
    VertexLookup {
        /// The vertex to look up.
        vertex: u32,
    },
    /// Edge → owning-partition lookup (endpoints in either order).
    EdgeLookup {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Partition-local neighbor query: neighbors of `vertex` reachable
    /// through edges owned by `partition`.
    Neighbors {
        /// The vertex whose neighbors are requested.
        vertex: u32,
        /// The partition to restrict to.
        partition: u32,
    },
    /// Online placement of a new edge against the served partition state.
    PlaceEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Server counter snapshot.
    Stats,
    /// Persist accumulated placements into the partition store.
    Flush,
    /// Begin a graceful drain: stop accepting, finish in-flight work.
    Shutdown,
    /// Readiness/durability probe: WAL depth, flush recency, drain state.
    Health,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::VertexLookup`].
    VertexInfo {
        /// The vertex's master partition; `None` for an isolated vertex.
        master: Option<u32>,
        /// Every partition holding a replica, sorted ascending.
        replicas: Vec<u32>,
    },
    /// Reply to [`Request::EdgeLookup`].
    EdgeInfo {
        /// The partition owning the edge.
        partition: u32,
    },
    /// Reply to [`Request::Neighbors`].
    NeighborList {
        /// Matching neighbors, sorted ascending.
        neighbors: Vec<u32>,
    },
    /// Reply to [`Request::PlaceEdge`].
    Placed {
        /// The partition the edge landed in (or already lived in).
        partition: u32,
        /// True when this request performed the placement; false when the
        /// edge already existed (idempotent replays, base-graph edges).
        fresh: bool,
    },
    /// Reply to [`Request::Stats`].
    StatsReport(ServeStats),
    /// Reply to [`Request::Flush`].
    Flushed {
        /// Number of accumulated placements persisted.
        edges: u64,
    },
    /// Reply to [`Request::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// Reply to [`Request::Health`].
    HealthReport(HealthReport),
    /// Typed failure reply; the connection stays usable unless the error
    /// says otherwise ([`ErrorCode::Overloaded`] / [`ErrorCode::Draining`]
    /// are followed by a close).
    Error(ErrorCode),
}

/// Typed server-side failure codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the connection: the accept queue is
    /// full. Sent once, then the connection is closed — the server never
    /// buffers beyond its configured bounds.
    Overloaded,
    /// The server is draining for shutdown and takes no new work.
    Draining,
    /// The requested vertex/edge/partition does not exist.
    NotFound,
    /// The request was structurally valid but semantically rejected
    /// (self-loop placement, out-of-range vertex, undecodable frame).
    BadRequest,
    /// An internal failure (e.g. a flush I/O error); details are logged
    /// server-side.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::Draining => 2,
            ErrorCode::NotFound => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Draining,
            3 => ErrorCode::NotFound,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Internal,
            other => return Err(ProtocolError::UnknownOpcode { found: other }),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::NotFound => "not found",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Internal => "internal error",
        };
        f.write_str(text)
    }
}

/// Server counter snapshot carried by [`Response::StatsReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Lookup-family requests (vertex, edge, neighbors).
    pub lookups: u64,
    /// Fresh placements performed.
    pub placements: u64,
    /// Connections refused with [`ErrorCode::Overloaded`].
    pub overloads: u64,
    /// Requests refused with [`ErrorCode::Draining`].
    pub drained: u64,
    /// Frames that failed to decode.
    pub protocol_errors: u64,
    /// Vertex-cache hits.
    pub cache_hits: u64,
    /// Vertex-cache misses.
    pub cache_misses: u64,
    /// Vertex-cache evictions.
    pub cache_evictions: u64,
    /// Placements accumulated but not yet flushed.
    pub pending_placements: u64,
    /// Vertices in the served graph (placement id space).
    pub num_vertices: u64,
    /// Partitions served.
    pub num_partitions: u64,
    /// Edges in the served base graph.
    pub num_edges: u64,
}

/// Readiness/durability snapshot carried by [`Response::HealthReport`].
///
/// `last_flush_age_secs` is [`u64::MAX`] when the service has never
/// flushed since it opened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Records in the placement WAL awaiting the next flush (the replay
    /// backlog a restart would work through). Zero for in-memory services.
    pub wal_depth: u64,
    /// Placements accumulated in memory since the last successful flush.
    pub pending_placements: u64,
    /// Successful flushes since the service opened.
    pub flushes: u64,
    /// Seconds since the last successful flush; `u64::MAX` if none yet.
    pub last_flush_age_secs: u64,
    /// True when the service is store-backed and its WAL is healthy:
    /// every acknowledged placement is on stable storage.
    pub durable: bool,
    /// True when the server in front of this service is draining
    /// (overlaid by the TCP layer; always false straight from the
    /// service).
    pub draining: bool,
}

/// Why a frame or message failed to decode (or a frame failed to move).
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket/file I/O failed.
    Io(io::Error),
    /// The bytes ended before the message was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The frame declared a protocol version this build cannot speak.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The message opcode is not part of the protocol.
    UnknownOpcode {
        /// The opcode byte found.
        found: u8,
    },
    /// A well-formed message was followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The frame header declared a length beyond [`MAX_FRAME_LEN`] (or
    /// zero).
    FrameTooLarge {
        /// The declared length.
        len: u32,
    },
    /// A field held a value outside its domain (e.g. a non-boolean flag
    /// byte or an absurd list length).
    BadPayload {
        /// Which field was malformed.
        what: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtocolError::Truncated { what } => write!(f, "frame truncated while reading {what}"),
            ProtocolError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            ProtocolError::UnknownOpcode { found } => write!(f, "unknown opcode {found:#04x}"),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "frame length {len} outside (0, {MAX_FRAME_LEN}]")
            }
            ProtocolError::BadPayload { what } => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_VERTEX_LOOKUP: u8 = 0x02;
const OP_EDGE_LOOKUP: u8 = 0x03;
const OP_NEIGHBORS: u8 = 0x04;
const OP_PLACE_EDGE: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_FLUSH: u8 = 0x07;
const OP_SHUTDOWN: u8 = 0x08;
const OP_HEALTH: u8 = 0x09;

// Response opcodes.
const OP_PONG: u8 = 0x81;
const OP_VERTEX_INFO: u8 = 0x82;
const OP_EDGE_INFO: u8 = 0x83;
const OP_NEIGHBOR_LIST: u8 = 0x84;
const OP_PLACED: u8 = 0x85;
const OP_STATS_REPORT: u8 = 0x86;
const OP_FLUSHED: u8 = 0x87;
const OP_SHUTTING_DOWN: u8 = 0x88;
const OP_HEALTH_REPORT: u8 = 0x89;
const OP_ERROR: u8 = 0xFF;

/// Bounded cursor over a message body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(ProtocolError::BadPayload { what })?;
        if end > self.bytes.len() {
            return Err(ProtocolError::Truncated { what });
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::BadPayload { what }),
        }
    }

    fn u32_list(&mut self, what: &'static str) -> Result<Vec<u32>, ProtocolError> {
        let count = self.u32(what)? as usize;
        // A list can never be longer than the bytes backing it.
        if count > self.bytes.len().saturating_sub(self.at) / 4 {
            return Err(ProtocolError::Truncated { what });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let extra = self.bytes.len() - self.at;
        if extra != 0 {
            return Err(ProtocolError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u32_list(out: &mut Vec<u8>, values: &[u32]) {
    push_u32(out, values.len() as u32);
    for &value in values {
        push_u32(out, value);
    }
}

/// Encodes a request body (opcode + fields, no frame header).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match request {
        Request::Ping => out.push(OP_PING),
        Request::VertexLookup { vertex } => {
            out.push(OP_VERTEX_LOOKUP);
            push_u32(&mut out, *vertex);
        }
        Request::EdgeLookup { u, v } => {
            out.push(OP_EDGE_LOOKUP);
            push_u32(&mut out, *u);
            push_u32(&mut out, *v);
        }
        Request::Neighbors { vertex, partition } => {
            out.push(OP_NEIGHBORS);
            push_u32(&mut out, *vertex);
            push_u32(&mut out, *partition);
        }
        Request::PlaceEdge { u, v } => {
            out.push(OP_PLACE_EDGE);
            push_u32(&mut out, *u);
            push_u32(&mut out, *v);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Flush => out.push(OP_FLUSH),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Health => out.push(OP_HEALTH),
    }
    out
}

/// Decodes a request body.
///
/// # Errors
///
/// Typed [`ProtocolError`]s for truncation, unknown opcodes, and trailing
/// bytes — never a panic, whatever the input.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let mut cursor = Cursor::new(body);
    let opcode = cursor.u8("request opcode")?;
    let request = match opcode {
        OP_PING => Request::Ping,
        OP_VERTEX_LOOKUP => Request::VertexLookup {
            vertex: cursor.u32("vertex")?,
        },
        OP_EDGE_LOOKUP => Request::EdgeLookup {
            u: cursor.u32("edge endpoint u")?,
            v: cursor.u32("edge endpoint v")?,
        },
        OP_NEIGHBORS => Request::Neighbors {
            vertex: cursor.u32("vertex")?,
            partition: cursor.u32("partition")?,
        },
        OP_PLACE_EDGE => Request::PlaceEdge {
            u: cursor.u32("edge endpoint u")?,
            v: cursor.u32("edge endpoint v")?,
        },
        OP_STATS => Request::Stats,
        OP_FLUSH => Request::Flush,
        OP_SHUTDOWN => Request::Shutdown,
        OP_HEALTH => Request::Health,
        found => return Err(ProtocolError::UnknownOpcode { found }),
    };
    cursor.finish()?;
    Ok(request)
}

/// Encodes a response body (opcode + fields, no frame header).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match response {
        Response::Pong => out.push(OP_PONG),
        Response::VertexInfo { master, replicas } => {
            out.push(OP_VERTEX_INFO);
            match master {
                Some(m) => {
                    out.push(1);
                    push_u32(&mut out, *m);
                }
                None => {
                    out.push(0);
                    push_u32(&mut out, 0);
                }
            }
            push_u32_list(&mut out, replicas);
        }
        Response::EdgeInfo { partition } => {
            out.push(OP_EDGE_INFO);
            push_u32(&mut out, *partition);
        }
        Response::NeighborList { neighbors } => {
            out.push(OP_NEIGHBOR_LIST);
            push_u32_list(&mut out, neighbors);
        }
        Response::Placed { partition, fresh } => {
            out.push(OP_PLACED);
            push_u32(&mut out, *partition);
            out.push(u8::from(*fresh));
        }
        Response::StatsReport(stats) => {
            out.push(OP_STATS_REPORT);
            for value in stats_fields(stats) {
                push_u64(&mut out, value);
            }
        }
        Response::Flushed { edges } => {
            out.push(OP_FLUSHED);
            push_u64(&mut out, *edges);
        }
        Response::ShuttingDown => out.push(OP_SHUTTING_DOWN),
        Response::HealthReport(health) => {
            out.push(OP_HEALTH_REPORT);
            push_u64(&mut out, health.wal_depth);
            push_u64(&mut out, health.pending_placements);
            push_u64(&mut out, health.flushes);
            push_u64(&mut out, health.last_flush_age_secs);
            out.push(u8::from(health.durable));
            out.push(u8::from(health.draining));
        }
        Response::Error(code) => {
            out.push(OP_ERROR);
            out.push(code.to_byte());
        }
    }
    out
}

fn stats_fields(stats: &ServeStats) -> [u64; 13] {
    [
        stats.requests,
        stats.lookups,
        stats.placements,
        stats.overloads,
        stats.drained,
        stats.protocol_errors,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.pending_placements,
        stats.num_vertices,
        stats.num_partitions,
        stats.num_edges,
    ]
}

/// Decodes a response body.
///
/// # Errors
///
/// Typed [`ProtocolError`]s — never a panic, whatever the input.
pub fn decode_response(body: &[u8]) -> Result<Response, ProtocolError> {
    let mut cursor = Cursor::new(body);
    let opcode = cursor.u8("response opcode")?;
    let response = match opcode {
        OP_PONG => Response::Pong,
        OP_VERTEX_INFO => {
            let has_master = cursor.bool("master flag")?;
            let master_value = cursor.u32("master")?;
            let replicas = cursor.u32_list("replica list")?;
            Response::VertexInfo {
                master: has_master.then_some(master_value),
                replicas,
            }
        }
        OP_EDGE_INFO => Response::EdgeInfo {
            partition: cursor.u32("partition")?,
        },
        OP_NEIGHBOR_LIST => Response::NeighborList {
            neighbors: cursor.u32_list("neighbor list")?,
        },
        OP_PLACED => Response::Placed {
            partition: cursor.u32("partition")?,
            fresh: cursor.bool("fresh flag")?,
        },
        OP_STATS_REPORT => {
            let mut fields = [0u64; 13];
            for field in &mut fields {
                *field = cursor.u64("stats field")?;
            }
            let [requests, lookups, placements, overloads, drained, protocol_errors, cache_hits, cache_misses, cache_evictions, pending_placements, num_vertices, num_partitions, num_edges] =
                fields;
            Response::StatsReport(ServeStats {
                requests,
                lookups,
                placements,
                overloads,
                drained,
                protocol_errors,
                cache_hits,
                cache_misses,
                cache_evictions,
                pending_placements,
                num_vertices,
                num_partitions,
                num_edges,
            })
        }
        OP_FLUSHED => Response::Flushed {
            edges: cursor.u64("flushed count")?,
        },
        OP_SHUTTING_DOWN => Response::ShuttingDown,
        OP_HEALTH_REPORT => Response::HealthReport(HealthReport {
            wal_depth: cursor.u64("wal depth")?,
            pending_placements: cursor.u64("pending placements")?,
            flushes: cursor.u64("flush count")?,
            last_flush_age_secs: cursor.u64("last flush age")?,
            durable: cursor.bool("durable flag")?,
            draining: cursor.bool("draining flag")?,
        }),
        OP_ERROR => Response::Error(ErrorCode::from_byte(cursor.u8("error code")?)?),
        found => return Err(ProtocolError::UnknownOpcode { found }),
    };
    cursor.finish()?;
    Ok(response)
}

/// Writes one frame (header + version + body) and flushes the writer.
///
/// # Errors
///
/// [`ProtocolError::Io`] on write failure; [`ProtocolError::FrameTooLarge`]
/// if `body` exceeds the frame bound.
pub fn write_frame<W: Write>(writer: &mut W, body: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(body.len() + 1)
        .map_err(|_| ProtocolError::FrameTooLarge { len: u32::MAX })?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&[PROTOCOL_VERSION])?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, returning its body. `Ok(None)` means the peer closed
/// the connection cleanly *between* frames; EOF mid-frame is
/// [`ProtocolError::Truncated`].
///
/// # Errors
///
/// Typed [`ProtocolError`]s for short frames, oversized or zero lengths,
/// and version mismatches; [`ProtocolError::Io`] for socket failures
/// (including read timeouts, surfaced as their `io::ErrorKind`).
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtocolError::Truncated {
                    what: "frame header",
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated {
                what: "frame payload",
            }
        } else {
            ProtocolError::Io(e)
        }
    })?;
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion { found: version });
    }
    payload.remove(0);
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn request_bodies_round_trip() {
        let requests = [
            Request::Ping,
            Request::VertexLookup { vertex: 7 },
            Request::EdgeLookup { u: 3, v: 9 },
            Request::Neighbors {
                vertex: 4,
                partition: 2,
            },
            Request::PlaceEdge { u: 1, v: 2 },
            Request::Stats,
            Request::Flush,
            Request::Shutdown,
            Request::Health,
        ];
        for request in requests {
            let body = encode_request(&request);
            assert_eq!(decode_request(&body).unwrap(), request);
        }
    }

    #[test]
    fn response_bodies_round_trip() {
        let responses = [
            Response::Pong,
            Response::VertexInfo {
                master: Some(3),
                replicas: vec![1, 3, 5],
            },
            Response::VertexInfo {
                master: None,
                replicas: vec![],
            },
            Response::EdgeInfo { partition: 6 },
            Response::NeighborList {
                neighbors: vec![0, 2, 9],
            },
            Response::Placed {
                partition: 4,
                fresh: true,
            },
            Response::StatsReport(ServeStats {
                requests: 10,
                cache_hits: 3,
                ..ServeStats::default()
            }),
            Response::Flushed { edges: 42 },
            Response::ShuttingDown,
            Response::HealthReport(HealthReport {
                wal_depth: 17,
                pending_placements: 17,
                flushes: 2,
                last_flush_age_secs: u64::MAX,
                durable: true,
                draining: false,
            }),
            Response::Error(ErrorCode::Overloaded),
        ];
        for response in responses {
            let body = encode_response(&response);
            assert_eq!(decode_response(&body).unwrap(), response);
        }
    }

    #[test]
    fn frames_round_trip_through_io() {
        let body = encode_request(&Request::EdgeLookup { u: 1, v: 2 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut reader = wire.as_slice();
        let read = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(read, body);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_garbage_frames_are_typed_errors() {
        // EOF mid-header.
        let mut short = &[0x05u8, 0x00][..];
        assert!(matches!(
            read_frame(&mut short),
            Err(ProtocolError::Truncated { .. })
        ));
        // Zero and oversized lengths.
        let mut zero = &0u32.to_le_bytes()[..];
        assert!(matches!(
            read_frame(&mut zero),
            Err(ProtocolError::FrameTooLarge { len: 0 })
        ));
        let mut huge = &u32::MAX.to_le_bytes()[..];
        assert!(matches!(
            read_frame(&mut huge),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
        // Bad version byte.
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Ping)).unwrap();
        wire[4] = 99;
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtocolError::BadVersion { found: 99 })
        ));
        // Trailing bytes after a message.
        let mut body = encode_request(&Request::Ping);
        body.push(0);
        assert!(matches!(
            decode_request(&body),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
        // A replica list whose count outruns the bytes backing it.
        let mut lying = vec![OP_VERTEX_INFO, 1];
        lying.extend_from_slice(&7u32.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&lying),
            Err(ProtocolError::Truncated { .. })
        ));
    }
}
