//! Load generation against a running `tlp-serve` server.
//!
//! The generator drives a configurable read/write mix from N client
//! threads, each with its own connection and deterministic RNG
//! (`seed + thread index`). Reads are vertex lookups (with a slice of
//! partition-local neighbor queries) over a zipf-skewed key space — the
//! skew is what makes the vertex cache earn its keep. Writes are
//! `PlaceEdge` requests over uniform random pairs. Per-op latencies are
//! measured client-side in microseconds and folded through the shared
//! [`tlp_obs::percentiles`] path into a [`LoadReport`] that serializes
//! through the obs bench writer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tlp_obs::{percentiles, Percentiles};

use crate::client::{AttemptError, ClientError, RetryPolicy, RetryingClient, ServeClient};
use crate::protocol::{ErrorCode, ProtocolError, Request, Response};

/// Tunables for one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Client threads, each with its own connection.
    pub threads: usize,
    /// Total operations across all threads.
    pub ops: u64,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Zipf skew exponent for read keys (0 = uniform).
    pub zipf_skew: f64,
    /// Vertex id space to draw keys from.
    pub num_vertices: u32,
    /// Partitions (for neighbor queries).
    pub num_partitions: u32,
    /// Base RNG seed; thread `i` uses `seed + i`.
    pub seed: u64,
    /// Client-side read timeout per reply.
    pub read_timeout: Duration,
    /// Retry policy for each client; thread `i` jitters with
    /// `retry.seed + i`. `max_attempts: 1` recovers the old
    /// fail-immediately behavior.
    pub retry: RetryPolicy,
}

/// Outcome of a load run, serialized into `BENCH_serve_latency.json`.
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Operations attempted.
    pub ops: u64,
    /// Operations that got a non-error reply.
    pub ok: u64,
    /// Replies carrying [`ErrorCode::NotFound`] (expected for lookups of
    /// absent edges; not a failure).
    pub not_found: u64,
    /// Operations that exhausted their retries on
    /// [`ErrorCode::Overloaded`] or [`ErrorCode::Draining`] refusals.
    pub refused: u64,
    /// Operations lost to transport/decode failures or terminal error
    /// replies after retries — must be zero in a healthy run.
    pub protocol_errors: u64,
    /// Transport failures (subset of `protocol_errors`) whose final error
    /// was a read/write timeout.
    pub timeouts: u64,
    /// Transport failures (subset of `protocol_errors`) whose final error
    /// was anything else: connection reset, refused connect, truncated or
    /// undecodable reply.
    pub resets: u64,
    /// Retry attempts performed across all threads (beyond first tries).
    pub retries: u64,
    /// Operations that gave up after exhausting attempts or deadline.
    pub exhausted: u64,
    /// Client threads used.
    pub threads: u64,
    /// Wall-clock duration of the whole run, microseconds.
    pub elapsed_us: u64,
    /// Completed operations per second.
    pub throughput: f64,
    /// Latency percentiles over all successful operations, microseconds.
    pub latency: Percentiles,
}

/// Zipf(s) sampler over `0..n` via a precomputed CDF + binary search.
/// Deterministic given the RNG; `s = 0` degenerates to uniform.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` keys with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "zipf sampler needs a non-empty key space");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for rank in 1..=n as u64 {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one key in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    not_found: AtomicU64,
    refused: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
    resets: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

/// Buckets a final (post-retry) failure: timeout vs everything else.
fn classify_failure(tally: &Tally, error: &AttemptError) {
    match error {
        AttemptError::Refused(_) => {
            tally.refused.fetch_add(1, Ordering::Relaxed);
        }
        AttemptError::Transport(e) => {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let timed_out = matches!(
                e,
                ProtocolError::Io(io)
                    if matches!(io.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
            );
            if timed_out {
                tally.timeouts.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.resets.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs the configured mix and folds the result. Each thread drives
/// `ops / threads` operations (the remainder goes to thread 0).
///
/// # Errors
///
/// [`std::io::Error`] if any client connection cannot be established.
pub fn run_load(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let zipf = Arc::new(ZipfSampler::new(
        config.num_vertices.max(1),
        config.zipf_skew,
    ));
    let tally = Arc::new(Tally::default());
    let threads = config.threads.max(1);
    let per_thread = config.ops / threads as u64;
    let start = Instant::now();

    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut ops = per_thread;
        if t == 0 {
            ops += config.ops % threads as u64;
        }
        let zipf = Arc::clone(&zipf);
        let tally = Arc::clone(&tally);
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new(
                &config.addr,
                config.read_timeout,
                RetryPolicy {
                    seed: config.retry.seed.wrapping_add(t as u64),
                    ..config.retry.clone()
                },
            );
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64));
            let mut latencies = Vec::with_capacity(ops as usize);
            for _ in 0..ops {
                let request = next_request(&config, &zipf, &mut rng);
                let sent = Instant::now();
                // A failed op no longer aborts the thread: the retrying
                // client reconnects, and the remaining ops still run.
                match client.request(&request) {
                    Ok(response) => {
                        latencies.push(sent.elapsed().as_micros() as u64);
                        match response {
                            Response::Error(ErrorCode::NotFound) => {
                                tally.not_found.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Error(ErrorCode::Overloaded)
                            | Response::Error(ErrorCode::Draining) => {
                                // Unreachable with retries on, but keep the
                                // bucket for `max_attempts: 1` runs.
                                tally.refused.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Error(_) => {
                                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Err(
                        ClientError::Exhausted { last_error, .. }
                        | ClientError::NotRetryable(last_error),
                    ) => {
                        tally.exhausted.fetch_add(1, Ordering::Relaxed);
                        classify_failure(&tally, &last_error);
                    }
                }
            }
            tally.retries.fetch_add(client.retries(), Ordering::Relaxed);
            latencies
        }));
    }

    let mut all_latencies = Vec::new();
    for handle in handles {
        if let Ok(latencies) = handle.join() {
            all_latencies.extend(latencies);
        }
    }
    let elapsed = start.elapsed();
    let ok = tally.ok.load(Ordering::Relaxed);
    let not_found = tally.not_found.load(Ordering::Relaxed);
    let completed = ok + not_found;
    let latency = percentiles(&mut all_latencies).unwrap_or(Percentiles {
        count: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        max: 0,
    });
    Ok(LoadReport {
        ops: config.ops,
        ok,
        not_found,
        refused: tally.refused.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        timeouts: tally.timeouts.load(Ordering::Relaxed),
        resets: tally.resets.load(Ordering::Relaxed),
        retries: tally.retries.load(Ordering::Relaxed),
        exhausted: tally.exhausted.load(Ordering::Relaxed),
        threads: threads as u64,
        elapsed_us: elapsed.as_micros() as u64,
        throughput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency,
    })
}

fn next_request(config: &LoadConfig, zipf: &ZipfSampler, rng: &mut StdRng) -> Request {
    if rng.gen_bool(config.read_ratio.clamp(0.0, 1.0)) {
        // 1-in-8 reads is a partition-local neighbor query; the rest are
        // hot vertex lookups (the cache's target traffic).
        if config.num_partitions > 0 && rng.gen_range(0u32..8) == 0 {
            Request::Neighbors {
                vertex: zipf.sample(rng),
                partition: rng.gen_range(0..config.num_partitions),
            }
        } else {
            Request::VertexLookup {
                vertex: zipf.sample(rng),
            }
        }
    } else {
        let n = config.num_vertices.max(2);
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        Request::PlaceEdge { u, v }
    }
}

/// Outcome of a saturation burst: how many connections got a typed
/// refusal versus being served.
#[derive(Clone, Debug, Serialize)]
pub struct BurstReport {
    /// Connections attempted.
    pub attempted: u64,
    /// Connections whose first reply was [`ErrorCode::Overloaded`].
    pub overloaded: u64,
    /// Connections whose first reply was [`ErrorCode::Draining`].
    pub draining: u64,
    /// Connections served normally (got a `Pong`).
    pub served: u64,
    /// Connections whose read timed out (server accepted but never
    /// answered in time).
    pub timeouts: u64,
    /// Connections torn down some other way: reset, refused connect,
    /// truncated or undecodable reply.
    pub resets: u64,
}

/// Opens `connections` concurrent connections that each send one `Ping`
/// and wait, verifying a saturated server answers with typed
/// [`ErrorCode::Overloaded`] refusals instead of buffering without bound.
pub fn run_burst(addr: &str, connections: usize, read_timeout: Duration) -> BurstReport {
    let mut handles = Vec::with_capacity(connections);
    for _ in 0..connections {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = match ServeClient::connect(&addr, read_timeout) {
                Ok(client) => client,
                Err(_) => return BurstOutcome::Reset,
            };
            match client.request(&Request::Ping) {
                Ok(Response::Pong) => BurstOutcome::Served,
                Ok(Response::Error(ErrorCode::Overloaded)) => BurstOutcome::Overloaded,
                Ok(Response::Error(ErrorCode::Draining)) => BurstOutcome::Draining,
                Err(ProtocolError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    BurstOutcome::Timeout
                }
                _ => BurstOutcome::Reset,
            }
        }));
    }
    let mut report = BurstReport {
        attempted: connections as u64,
        overloaded: 0,
        draining: 0,
        served: 0,
        timeouts: 0,
        resets: 0,
    };
    for handle in handles {
        match handle.join().unwrap_or(BurstOutcome::Reset) {
            BurstOutcome::Served => report.served += 1,
            BurstOutcome::Overloaded => report.overloaded += 1,
            BurstOutcome::Draining => report.draining += 1,
            BurstOutcome::Timeout => report.timeouts += 1,
            BurstOutcome::Reset => report.resets += 1,
        }
    }
    report
}

enum BurstOutcome {
    Served,
    Overloaded,
    Draining,
    Timeout,
    Reset,
}

/// Outcome of an offline replay (see [`run_replay`]).
#[derive(Clone, Debug, Serialize)]
pub struct ReplayReport {
    /// Requests applied.
    pub ops: u64,
    /// Fresh placements performed.
    pub placements: u64,
    /// Placements persisted by the final flush.
    pub flushed: u64,
}

/// Replays the exact request stream `run_load` would send — same seed,
/// same mix, same generator — directly against a
/// [`PartitionService`](crate::service::PartitionService)
/// opened from `store_dir`, then flushes. With `threads = 1` the applied
/// write sequence is identical to what a served single-client run
/// processed, so the flushed store is byte-identical to the server's —
/// the ground truth for the CI bit-identity diff. (With several threads
/// the server-side arrival interleaving is nondeterministic, so replay
/// applies thread streams sequentially and only `threads = 1` is
/// comparable.)
///
/// # Errors
///
/// [`crate::service::ServiceError`] if the store cannot be opened or the
/// final flush fails.
pub fn run_replay(
    config: &LoadConfig,
    store_dir: &std::path::Path,
    spec: &str,
) -> Result<ReplayReport, crate::service::ServiceError> {
    use crate::service::{PartitionService, ServiceError};

    let service = PartitionService::open_store(store_dir, spec, 0)?;
    let mut effective = config.clone();
    effective.num_vertices = service.graph().num_vertices() as u32;
    effective.num_partitions = service.num_partitions() as u32;
    let zipf = ZipfSampler::new(effective.num_vertices.max(1), effective.zipf_skew);
    let threads = effective.threads.max(1) as u64;
    let per_thread = effective.ops / threads;
    let mut ops = 0u64;
    for t in 0..threads {
        let mut rng = StdRng::seed_from_u64(effective.seed.wrapping_add(t));
        let thread_ops = per_thread + if t == 0 { effective.ops % threads } else { 0 };
        for _ in 0..thread_ops {
            let request = next_request(&effective, &zipf, &mut rng);
            service.handle(&request);
            ops += 1;
        }
    }
    let placements = service.stats().placements;
    let flushed = match service.handle(&Request::Flush) {
        Response::Flushed { edges } => edges,
        other => {
            return Err(ServiceError::Config(format!(
                "replay flush failed: {other:?}"
            )))
        }
    };
    Ok(ReplayReport {
        ops,
        placements,
        flushed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skew_concentrates_mass_on_low_ranks() {
        let sampler = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u32;
        const DRAWS: u32 = 10_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 over 1000 keys the top-10 mass is ~58%; uniform
        // would give 1%. Accept a generous band.
        assert!(head > DRAWS / 3, "zipf head mass too small: {head}/{DRAWS}");
        // Zero skew degenerates to (roughly) uniform.
        let uniform = ZipfSampler::new(1000, 0.0);
        let mut head = 0u32;
        for _ in 0..DRAWS {
            if uniform.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(
            head < DRAWS / 20,
            "uniform head mass too large: {head}/{DRAWS}"
        );
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_in_range() {
        let sampler = ZipfSampler::new(64, 0.9);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = sampler.sample(&mut a);
            assert_eq!(x, sampler.sample(&mut b));
            assert!(x < 64);
        }
    }
}
