//! Minimal blocking client for the `tlp-serve` protocol.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtocolError, Request, Response,
};

/// One framed TCP connection to a `tlp-serve` server.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects and applies a read timeout (a server drain or overload
    /// close surfaces as an error rather than a hang).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the connection cannot be established.
    pub fn connect(addr: &str, read_timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its reply. An EOF where a reply was
    /// expected decodes as [`ProtocolError::Truncated`].
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]: socket failures, undecodable replies, or a
    /// server-side close before the reply.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        match read_frame(&mut self.reader)? {
            Some(body) => decode_response(&body),
            None => Err(ProtocolError::Truncated {
                what: "response frame",
            }),
        }
    }

    /// Reads one unsolicited frame (the refusal a saturated or draining
    /// server sends before closing). `Ok(None)` means the server closed
    /// without sending anything.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] from the read or decode.
    pub fn read_refusal(&mut self) -> Result<Option<Response>, ProtocolError> {
        match read_frame(&mut self.reader)? {
            Some(body) => Ok(Some(decode_response(&body)?)),
            None => Ok(None),
        }
    }
}
