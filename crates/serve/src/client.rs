//! Blocking clients for the `tlp-serve` protocol.
//!
//! [`ServeClient`] is the bare one-connection client. [`RetryingClient`]
//! wraps it with a [`RetryPolicy`]: reconnect-and-retry on transport
//! failures and typed [`ErrorCode::Overloaded`]/[`ErrorCode::Draining`]
//! refusals, with decorrelated-jitter backoff from a seeded RNG so test
//! runs are deterministic. Only idempotent requests are retried — see
//! [`request_is_idempotent`] for the taxonomy.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlp_obs::counter;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, ProtocolError, Request,
    Response,
};

/// One framed TCP connection to a `tlp-serve` server.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects and applies a read timeout (a server drain or overload
    /// close surfaces as an error rather than a hang).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the connection cannot be established.
    pub fn connect(addr: &str, read_timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its reply. An EOF where a reply was
    /// expected decodes as [`ProtocolError::Truncated`].
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]: socket failures, undecodable replies, or a
    /// server-side close before the reply.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        match read_frame(&mut self.reader)? {
            Some(body) => decode_response(&body),
            None => Err(ProtocolError::Truncated {
                what: "response frame",
            }),
        }
    }

    /// Reads one unsolicited frame (the refusal a saturated or draining
    /// server sends before closing). `Ok(None)` means the server closed
    /// without sending anything.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] from the read or decode.
    pub fn read_refusal(&mut self) -> Result<Option<Response>, ProtocolError> {
        match read_frame(&mut self.reader)? {
            Some(body) => Ok(Some(decode_response(&body)?)),
            None => Ok(None),
        }
    }
}

/// Whether a request may be safely re-sent when its outcome is unknown
/// (the transport failed after the request may have been applied).
///
/// * Reads (`Ping`, `VertexLookup`, `EdgeLookup`, `Neighbors`, `Stats`,
///   `Health`) — trivially idempotent.
/// * `PlaceEdge` — idempotent *by service construction*: the dedup path
///   answers a redelivered edge with the already-chosen partition
///   (`fresh: false`) instead of consulting the placer, and WAL replay
///   preserves that across a server restart.
/// * `Flush` — idempotent: it rewrites the store to the same merged
///   state; a duplicate flush is a no-op rewrite.
/// * `Shutdown` — **not** idempotent: redelivering a drain after a
///   restart would kill the replacement server.
pub fn request_is_idempotent(request: &Request) -> bool {
    !matches!(request, Request::Shutdown)
}

/// Retry tunables for [`RetryingClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// Wall-clock budget across all attempts and backoffs.
    pub deadline: Duration,
    /// Floor of the decorrelated-jitter backoff.
    pub base_backoff: Duration,
    /// Cap of the decorrelated-jitter backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter RNG — equal seeds give equal backoff
    /// sequences, which keeps chaos tests deterministic.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            deadline: Duration::from_secs(10),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// Decorrelated jitter: `sleep = min(cap, uniform(base, prev * 3))`.
/// Pure in `(rng state, prev)`, so backoff sequences are testable.
fn next_backoff(rng: &mut StdRng, prev: Duration, policy: &RetryPolicy) -> Duration {
    let base = policy.base_backoff.as_micros() as u64;
    let hi = (prev.as_micros() as u64).saturating_mul(3).max(base);
    let jittered = rng.gen_range(base..=hi);
    Duration::from_micros(jittered.min(policy.max_backoff.as_micros() as u64))
}

/// What the last attempt died of.
#[derive(Debug)]
pub enum AttemptError {
    /// The connection, write, read, or decode failed.
    Transport(ProtocolError),
    /// The server answered with a retryable refusal
    /// ([`ErrorCode::Overloaded`] or [`ErrorCode::Draining`]).
    Refused(ErrorCode),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::Transport(e) => write!(f, "transport error: {e}"),
            AttemptError::Refused(code) => write!(f, "refused: {code:?}"),
        }
    }
}

/// Why a [`RetryingClient`] request gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The request is not idempotent, so the failed attempt was not
    /// repeated (its outcome on the server is unknown).
    NotRetryable(AttemptError),
    /// Every allowed attempt failed (or the deadline expired).
    Exhausted {
        /// Attempts actually made.
        attempts: u32,
        /// The failure from the final attempt.
        last_error: AttemptError,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NotRetryable(e) => write!(f, "not retryable: {e}"),
            ClientError::Exhausted {
                attempts,
                last_error,
            } => write!(f, "exhausted after {attempts} attempts: {last_error}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A [`ServeClient`] that survives flaky transport: reconnects lazily,
/// retries idempotent requests under a [`RetryPolicy`], and treats
/// `Overloaded`/`Draining` refusals as retryable-after-backoff rather
/// than terminal.
pub struct RetryingClient {
    addr: String,
    read_timeout: Duration,
    policy: RetryPolicy,
    conn: Option<ServeClient>,
    rng: StdRng,
    retries: u64,
}

impl RetryingClient {
    /// Creates a client for `addr`; no connection is made until the
    /// first request (so a not-yet-listening server costs a retry, not a
    /// construction failure).
    pub fn new(addr: &str, read_timeout: Duration, policy: RetryPolicy) -> Self {
        let rng = StdRng::seed_from_u64(policy.seed);
        RetryingClient {
            addr: addr.to_string(),
            read_timeout,
            policy,
            conn: None,
            rng,
            retries: 0,
        }
    }

    /// Retries performed so far (attempts beyond the first, summed over
    /// all requests).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn attempt(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        if self.conn.is_none() {
            self.conn = Some(
                ServeClient::connect(&self.addr, self.read_timeout).map_err(ProtocolError::Io)?,
            );
        }
        match self.conn.as_mut() {
            Some(conn) => conn.request(request),
            None => unreachable!("connection established above"),
        }
    }

    /// Sends `request`, retrying per the policy.
    ///
    /// Application-level answers — including terminal refusals like
    /// [`ErrorCode::NotFound`] or [`ErrorCode::Internal`] — are returned
    /// as-is; only transport failures and `Overloaded`/`Draining`
    /// refusals trigger a reconnect + backoff + retry.
    ///
    /// # Errors
    ///
    /// [`ClientError::NotRetryable`] for a failed non-idempotent request,
    /// [`ClientError::Exhausted`] when attempts or deadline run out.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        let mut backoff = self.policy.base_backoff;
        loop {
            attempts += 1;
            let last_error = match self.attempt(request) {
                Ok(Response::Error(code @ (ErrorCode::Overloaded | ErrorCode::Draining))) => {
                    // The refusal frame precedes a server-side close;
                    // the next attempt needs a fresh connection.
                    self.conn = None;
                    AttemptError::Refused(code)
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conn = None;
                    AttemptError::Transport(e)
                }
            };
            if !request_is_idempotent(request) {
                return Err(ClientError::NotRetryable(last_error));
            }
            if attempts >= self.policy.max_attempts
                || started.elapsed() + backoff > self.policy.deadline
            {
                return Err(ClientError::Exhausted {
                    attempts,
                    last_error,
                });
            }
            backoff = next_backoff(&mut self.rng, backoff, &self.policy);
            std::thread::sleep(backoff);
            self.retries += 1;
            counter("serve.client.retry", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn idempotency_taxonomy() {
        assert!(request_is_idempotent(&Request::Ping));
        assert!(request_is_idempotent(&Request::VertexLookup { vertex: 1 }));
        assert!(request_is_idempotent(&Request::PlaceEdge { u: 1, v: 2 }));
        assert!(request_is_idempotent(&Request::Flush));
        assert!(request_is_idempotent(&Request::Health));
        assert!(!request_is_idempotent(&Request::Shutdown));
    }

    #[test]
    fn backoff_sequence_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = policy.base_backoff;
            let mut seq = Vec::new();
            for _ in 0..32 {
                prev = next_backoff(&mut rng, prev, &policy);
                seq.push(prev);
            }
            seq
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same backoff sequence");
        for d in &a {
            assert!(*d >= policy.base_backoff, "floor respected: {d:?}");
            assert!(*d <= policy.max_backoff, "cap respected: {d:?}");
        }
        // With a 100x cap-to-base span, 32 draws landing on one value
        // would mean the jitter is broken.
        assert!(
            a.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "jitter actually varies"
        );
        let c = run(7);
        assert_ne!(a, c, "different seeds diverge");
    }
}
