//! Bounded TCP front-end for [`PartitionService`].
//!
//! Architecture: one acceptor thread pushes fresh connections into a
//! bounded queue; a fixed pool of worker threads pops connections and
//! runs each to completion (one in-flight request per connection,
//! pipelined frames are handled in arrival order). When the queue is
//! full the acceptor replies [`ErrorCode::Overloaded`] and closes — the
//! server never buffers beyond its configured bounds, so a saturating
//! client burst costs O(queue) memory, not O(burst).
//!
//! Graceful drain: a [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) flips the draining flag, stops the
//! acceptor, shuts down the read half of every registered connection so
//! blocked workers wake, and replies [`ErrorCode::Draining`] to
//! connections still waiting in the queue. Workers finish the request
//! they are on — no reply is abandoned mid-write.

use std::collections::VecDeque;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tlp_obs::counter;

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, ErrorCode, ProtocolError, Request,
    Response, ServeStats,
};
use crate::service::PartitionService;

/// Tunables for the TCP front-end.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded pending-connection queue; beyond this, connections are
    /// refused with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Per-read socket timeout — a safety net so a dead peer cannot pin
    /// a worker forever. Idle timeouts close the connection.
    pub read_timeout: Duration,
    /// Write timeout on refusal frames, so a peer that never reads cannot
    /// stall the acceptor.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_millis(200),
        }
    }
}

/// Counters owned by the TCP layer (the service owns the rest).
#[derive(Default)]
struct ServerCounters {
    requests: AtomicU64,
    overloads: AtomicU64,
    drained: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Queue + drain coordination shared by acceptor and workers.
struct Shared {
    service: PartitionService,
    counters: ServerCounters,
    queue: Mutex<QueueState>,
    wake: Condvar,
    config: ServerConfig,
}

struct QueueState {
    pending: VecDeque<TcpStream>,
    /// Read-half clones of live connections, shut down on drain so
    /// blocked workers wake immediately.
    live: Vec<TcpStream>,
    draining: bool,
    /// Workers currently inside `serve_connection`.
    busy: usize,
}

/// A running server: owns the listener address and the thread handles.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Combined service + server counter snapshot.
    pub fn stats(&self) -> ServeStats {
        merged_stats(&self.shared)
    }

    /// Triggers a drain (idempotent) and waits for every thread to exit.
    pub fn shutdown(mut self) {
        begin_drain(&self.shared, self.addr);
        self.join_threads();
    }

    /// Waits for the server to finish draining after a client-initiated
    /// [`Request::Shutdown`].
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        begin_drain(&self.shared, self.addr);
        self.join_threads();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// the acceptor + worker pool around `service`.
///
/// # Errors
///
/// [`std::io::Error`] if the listener cannot bind.
pub fn serve(
    service: PartitionService,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        counters: ServerCounters::default(),
        queue: Mutex::new(QueueState {
            pending: VecDeque::new(),
            live: Vec::new(),
            draining: false,
            busy: 0,
        }),
        wake: Condvar::new(),
        config: config.clone(),
    });

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };

    Ok(ServerHandle {
        shared,
        addr: local_addr,
        acceptor: Some(acceptor),
        workers,
    })
}

fn merged_stats(shared: &Shared) -> ServeStats {
    let mut stats = shared.service.stats();
    stats.requests = shared.counters.requests.load(Ordering::Relaxed);
    stats.overloads = shared.counters.overloads.load(Ordering::Relaxed);
    stats.drained = shared.counters.drained.load(Ordering::Relaxed);
    stats.protocol_errors = shared.counters.protocol_errors.load(Ordering::Relaxed);
    stats
}

/// Flips the draining flag and wakes everything that might be blocked:
/// queued workers (condvar), mid-read workers (socket shutdown), and the
/// acceptor itself (a throwaway self-connection unblocks `accept`).
fn begin_drain(shared: &Shared, addr: SocketAddr) {
    {
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.draining {
            return;
        }
        queue.draining = true;
        for live in queue.live.drain(..) {
            let _ = live.shutdown(Shutdown::Read);
        }
    }
    shared.wake.notify_all();
    // Unblock a parked accept() so the acceptor observes the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.draining {
            drop(queue);
            refuse(stream, ErrorCode::Draining, shared.config.write_timeout);
            shared.counters.drained.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if queue.pending.len() >= shared.config.queue_depth {
            drop(queue);
            shared.counters.overloads.fetch_add(1, Ordering::Relaxed);
            counter("serve.overloads", 1);
            refuse(stream, ErrorCode::Overloaded, shared.config.write_timeout);
            continue;
        }
        queue.pending.push_back(stream);
        drop(queue);
        shared.wake.notify_one();
    }
}

/// Applies a socket option best-effort; failures are survivable (the
/// request path still works, just without the tuning) but no longer
/// silent — they tick `serve.sock_opt_failed`.
fn apply_sock_opt(result: std::io::Result<()>) {
    if result.is_err() {
        counter("serve.sock_opt_failed", 1);
    }
}

/// Best-effort typed refusal: one error frame, then close. Never blocks
/// the acceptor past the configured write timeout (tiny write into the
/// socket buffer).
fn refuse(stream: TcpStream, code: ErrorCode, write_timeout: Duration) {
    apply_sock_opt(stream.set_write_timeout(Some(write_timeout)));
    let mut writer = BufWriter::new(&stream);
    let _ = write_frame(&mut writer, &encode_response(&Response::Error(code)));
    let _ = stream.shutdown(Shutdown::Both);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if queue.draining {
                    // Refuse everything still waiting, then retire.
                    let leftovers: Vec<TcpStream> = queue.pending.drain(..).collect();
                    drop(queue);
                    for stream in leftovers {
                        refuse(stream, ErrorCode::Draining, shared.config.write_timeout);
                        shared.counters.drained.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                if let Some(stream) = queue.pending.pop_front() {
                    queue.busy += 1;
                    if let Ok(clone) = stream.try_clone() {
                        queue.live.push(clone);
                    }
                    break stream;
                }
                queue = shared.wake.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        serve_connection(shared, &stream);
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.busy -= 1;
        // Forget the read-half clone of a finished connection.
        if let Ok(addr) = stream.peer_addr() {
            queue.live.retain(|s| s.peer_addr().ok() != Some(addr));
        }
    }
}

/// Runs one connection to completion: frames in, frames out, in order.
fn serve_connection(shared: &Shared, stream: &TcpStream) {
    apply_sock_opt(stream.set_read_timeout(Some(shared.config.read_timeout)));
    apply_sock_opt(stream.set_nodelay(true));
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            // Clean EOF between frames, idle timeout, or drain-triggered
            // read shutdown: close quietly.
            Ok(None) => return,
            Err(ProtocolError::Io(_)) => return,
            Err(_) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                counter("serve.protocol_errors", 1);
                let reply = encode_response(&Response::Error(ErrorCode::BadRequest));
                let _ = write_frame(&mut writer, &reply);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match decode_request(&body) {
            Err(_) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                counter("serve.protocol_errors", 1);
                Response::Error(ErrorCode::BadRequest)
            }
            Ok(Request::Stats) => Response::StatsReport(merged_stats(shared)),
            Ok(Request::Health) => {
                let mut report = shared.service.health();
                report.draining = {
                    let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    queue.draining
                };
                Response::HealthReport(report)
            }
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut writer, &encode_response(&Response::ShuttingDown));
                begin_drain(
                    shared,
                    stream
                        .local_addr()
                        .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0))),
                );
                return;
            }
            Ok(request) => {
                let draining = {
                    let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    queue.draining
                };
                if draining && matches!(request, Request::PlaceEdge { .. }) {
                    shared.counters.drained.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ErrorCode::Draining)
                } else {
                    shared.service.handle(&request)
                }
            }
        };
        if write_frame(&mut writer, &encode_response(&response)).is_err() {
            return;
        }
    }
}
