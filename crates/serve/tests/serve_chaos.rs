//! Chaos-harness tests: the server behind a seeded fault proxy never
//! panics, never leaks a worker, answers every clean connection, and
//! loses zero acknowledged placements across a crash-shaped restart.
//!
//! The proxy's fault plan is a pure function of `(seed, connection
//! index)`, so these tests know in advance which connections must
//! succeed; a failure replays bit-identically from its seed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlp_baselines::{HdrfState, StreamingPlacer};
use tlp_core::EdgePartition;
use tlp_graph::{CsrGraph, GraphBuilder};
use tlp_serve::{
    serve, ChaosProxy, ChaosSchedule, ConnFault, PartitionService, Request, Response, RetryPolicy,
    RetryingClient, ServeClient, ServerConfig,
};
use tlp_store::{read_wal, write_partition_store, WAL_NAME};

fn graph_and_partition(n: u32, m: usize, p: usize, seed: u64) -> (CsrGraph, EdgePartition) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().reserve_vertices(n as usize);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        builder.push_edge(u, v);
    }
    let graph = builder.build();
    let mut placer =
        HdrfState::new(graph.num_vertices(), p, tlp_baselines::HDRF_LAMBDA).expect("placer");
    let assignment = graph
        .edges()
        .iter()
        .map(|e| {
            let (u, v) = e.endpoints();
            placer.place(u, v)
        })
        .collect();
    (graph, EdgePartition::new(p, assignment).expect("partition"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-serve-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file in a store directory, name → bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir lists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("file reads"));
    }
    out
}

/// A full fault storm: sequential connections draw the seeded schedule
/// (resets, truncations, corruptions, stalls on odd indices; clean on
/// even). The server must answer every clean connection correctly, never
/// panic, and still drain gracefully afterwards — a leaked or wedged
/// worker would hang the final `shutdown()` join.
#[test]
fn storm_answers_every_clean_connection_and_drains() {
    let (graph, partition) = graph_and_partition(120, 400, 4, 31);
    let service = PartitionService::new(graph, partition, "hdrf", 128).expect("service");
    let handle = serve(
        service,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let schedule = ChaosSchedule {
        seed: 1234,
        clean_every: 2,
        stall: Duration::from_millis(400),
    };
    let proxy =
        ChaosProxy::start("127.0.0.1:0", handle.addr(), schedule.clone()).expect("proxy starts");
    let proxy_addr = proxy.addr().to_string();

    const CONNECTIONS: u64 = 48;
    let read_timeout = Duration::from_millis(150);
    let mut clean_served = 0u64;
    for index in 0..CONNECTIONS {
        let fault = schedule.fault_for(index);
        let outcome = ServeClient::connect(&proxy_addr, read_timeout)
            .map_err(|e| format!("connect: {e}"))
            .and_then(|mut client| {
                client
                    .request(&Request::VertexLookup {
                        vertex: (index % 120) as u32,
                    })
                    .map_err(|e| format!("request: {e}"))
            });
        match fault {
            ConnFault::Clean => match outcome {
                Ok(Response::VertexInfo { .. }) => clean_served += 1,
                other => panic!("clean connection {index} not served: {other:?}"),
            },
            // Faulted connections may see any typed failure — the
            // assertion is simply that nothing panicked and the server
            // stays up (checked below, and by every later clean conn).
            _ => assert!(
                !matches!(outcome, Ok(Response::VertexInfo { .. })) || fault == ConnFault::Corrupt,
                "fault {fault:?} on connection {index} was a faithful relay"
            ),
        }
    }
    assert_eq!(
        clean_served,
        CONNECTIONS / 2,
        "every clean connection answered"
    );

    let counts = proxy.counts();
    assert_eq!(counts.clean, CONNECTIONS / 2);
    assert!(
        counts.resets > 0 && counts.truncations > 0 && counts.corruptions > 0 && counts.stalls > 0,
        "storm exercised every fault kind: {counts:?}"
    );
    proxy.shutdown();

    // The server is intact: a direct connection answers, stats are sane,
    // and Health reports a live (non-durable, in-memory) service.
    let mut direct =
        ServeClient::connect(&handle.addr().to_string(), Duration::from_secs(2)).expect("connect");
    assert_eq!(
        direct.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    match direct.request(&Request::Health).expect("health") {
        Response::HealthReport(report) => {
            assert!(!report.durable, "in-memory service makes no wal promise");
            assert!(!report.draining);
        }
        other => panic!("unexpected health reply: {other:?}"),
    }
    // Graceful drain joins every worker — this hangs if the storm leaked
    // or wedged one.
    handle.shutdown();
}

/// Retrying clients ride out the storm: with retries on, a single-client
/// placement stream through the proxy completes every op, and the acked
/// placements all reach the WAL (append-before-ack).
#[test]
fn retrying_client_completes_all_ops_through_chaos() {
    let (graph, partition) = graph_and_partition(100, 300, 4, 47);
    let dir = temp_dir("retry");
    write_partition_store(&dir, &graph, &partition).expect("store");
    let service = PartitionService::open_store(&dir, "hdrf", 128).expect("service");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");

    let schedule = ChaosSchedule {
        seed: 7,
        clean_every: 2,
        stall: Duration::from_millis(300),
    };
    let proxy = ChaosProxy::start("127.0.0.1:0", handle.addr(), schedule).expect("proxy starts");

    // One client per op: each op starts a fresh connection and therefore
    // draws the next faults from the schedule (a single long-lived clean
    // connection would dodge the storm entirely). Dedup makes repeated
    // edges harmless, so just record what the server acked as fresh.
    let proxy_addr = proxy.addr().to_string();
    let mut rng = StdRng::seed_from_u64(99);
    let mut acked = Vec::new();
    let mut total_retries = 0u64;
    for op in 0..40u64 {
        let mut client = RetryingClient::new(
            &proxy_addr,
            Duration::from_millis(150),
            RetryPolicy {
                max_attempts: 8,
                deadline: Duration::from_secs(20),
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                seed: 5 + op,
            },
        );
        let u = rng.gen_range(0..100u32);
        let mut v = rng.gen_range(0..100u32);
        if v == u {
            v = (v + 1) % 100;
        }
        match client.request(&Request::PlaceEdge { u, v }) {
            Ok(Response::Placed { fresh, .. }) => {
                if fresh {
                    acked.push((u.min(v), u.max(v)));
                }
            }
            other => panic!("placement through chaos failed: {other:?}"),
        }
        total_retries += client.retries();
    }
    assert!(total_retries > 0, "the storm forced at least one retry");
    proxy.shutdown();
    drop(handle); // drain without flushing — placements live only in the WAL

    // Append-before-ack: every acked-fresh placement is in the log.
    let replay = read_wal(&dir.join(WAL_NAME)).expect("wal reads");
    let logged: Vec<(u32, u32)> = replay.records.iter().map(|r| (r.u, r.v)).collect();
    for edge in &acked {
        assert!(
            logged.contains(edge),
            "acked placement {edge:?} missing from wal"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-shaped durability end-to-end: place through a server, drain
/// *without* flushing (all placements live only in the WAL), reopen the
/// store — replay recovers everything — flush, and compare byte-for-byte
/// against an offline service that applied the same stream and flushed
/// without any interruption.
#[test]
fn wal_recovery_flush_is_byte_identical_to_uninterrupted_run() {
    let (graph, partition) = graph_and_partition(100, 300, 4, 13);
    let served_dir = temp_dir("served");
    let offline_dir = temp_dir("offline");
    write_partition_store(&served_dir, &graph, &partition).expect("served store");
    write_partition_store(&offline_dir, &graph, &partition).expect("offline store");

    // Deterministic placement stream, fresh-or-not decided by the server.
    let stream: Vec<(u32, u32)> = {
        let mut rng = StdRng::seed_from_u64(4242);
        (0..60)
            .map(|_| {
                let u = rng.gen_range(0..100u32);
                let mut v = rng.gen_range(0..100u32);
                if v == u {
                    v = (v + 1) % 100;
                }
                (u, v)
            })
            .collect()
    };

    // Served run through chaos, single retrying client, no flush.
    let service = PartitionService::open_store(&served_dir, "hdrf", 128).expect("service");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let proxy = ChaosProxy::start(
        "127.0.0.1:0",
        handle.addr(),
        ChaosSchedule {
            seed: 21,
            clean_every: 2,
            stall: Duration::from_millis(300),
        },
    )
    .expect("proxy starts");
    // One client per op (see retrying_client_completes_all_ops_through_
    // chaos): every op faces fresh faults, and the synchronous per-op
    // loop keeps the server-side apply order identical to `stream`.
    let proxy_addr = proxy.addr().to_string();
    for (op, &(u, v)) in stream.iter().enumerate() {
        let mut client = RetryingClient::new(
            &proxy_addr,
            Duration::from_millis(150),
            RetryPolicy {
                max_attempts: 8,
                deadline: Duration::from_secs(20),
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                seed: 3 + op as u64,
            },
        );
        match client.request(&Request::PlaceEdge { u, v }) {
            Ok(Response::Placed { .. }) => {}
            other => panic!("placement failed: {other:?}"),
        }
    }
    proxy.shutdown();
    drop(handle); // crash-shaped: acked placements exist only in the WAL

    // Recovery: reopen replays the WAL, then flush persists the merge.
    let recovered = PartitionService::open_store(&served_dir, "hdrf", 128).expect("reopen");
    let wal_depth = recovered.health().wal_depth;
    assert!(wal_depth > 0, "the crash left unflushed acked placements");
    match recovered.handle(&Request::Flush) {
        Response::Flushed { .. } => {}
        other => panic!("recovery flush failed: {other:?}"),
    }
    assert_eq!(recovered.health().wal_depth, 0, "flush truncated the wal");

    // Uninterrupted offline run over the same stream.
    let offline = PartitionService::open_store(&offline_dir, "hdrf", 128).expect("offline");
    for &(u, v) in &stream {
        match offline.handle(&Request::PlaceEdge { u, v }) {
            Response::Placed { .. } => {}
            other => panic!("offline placement failed: {other:?}"),
        }
    }
    match offline.handle(&Request::Flush) {
        Response::Flushed { .. } => {}
        other => panic!("offline flush failed: {other:?}"),
    }

    assert_eq!(
        dir_bytes(&served_dir),
        dir_bytes(&offline_dir),
        "crash + wal replay + flush == uninterrupted run, byte for byte"
    );
    let _ = std::fs::remove_dir_all(&served_dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}
