//! End-to-end tests over real TCP: served lookups match
//! `PartitionStoreReader` ground truth, overload refusals are typed, and
//! a drain finishes cleanly.

use std::path::{Path, PathBuf};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlp_baselines::HdrfState;
use tlp_core::EdgePartition;
use tlp_graph::{CsrGraph, GraphBuilder};
use tlp_serve::{
    run_burst, run_load, serve, ErrorCode, LoadConfig, PartitionService, Request, Response,
    RetryPolicy, ServeClient, ServerConfig,
};
use tlp_store::{write_partition_store, PartitionStoreReader};

const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Deterministic random graph + an HDRF partition streamed over it.
fn graph_and_partition(n: u32, m: usize, p: usize, seed: u64) -> (CsrGraph, EdgePartition) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().reserve_vertices(n as usize);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        builder.push_edge(u, v);
    }
    let graph = builder.build();
    let mut placer =
        HdrfState::new(graph.num_vertices(), p, tlp_baselines::HDRF_LAMBDA).expect("placer");
    let assignment = graph
        .edges()
        .iter()
        .map(|e| {
            let (u, v) = e.endpoints();
            tlp_baselines::StreamingPlacer::place(&mut placer, u, v)
        })
        .collect();
    let partition = EdgePartition::new(p, assignment).expect("partition");
    (graph, partition)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_store(dir: &Path, graph: &CsrGraph, partition: &EdgePartition) {
    write_partition_store(dir, graph, partition).expect("store writes");
}

#[test]
fn served_lookups_match_store_ground_truth() {
    let dir = temp_dir("truth");
    let (graph, partition) = graph_and_partition(120, 600, 5, 11);
    write_store(&dir, &graph, &partition);

    let service = PartitionService::open_store(&dir, "hdrf", 64).expect("service opens");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr, READ_TIMEOUT).expect("client connects");

    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );

    // Ground truth straight from the store reader, computed independently
    // of the service's own code path.
    let reader = PartitionStoreReader::open(&dir).expect("reader opens");
    let (g, part) = reader.load().expect("store loads");

    for v in 0..g.num_vertices() as u32 {
        let mut counts = vec![0u64; part.num_partitions()];
        for (_, eid) in g.incident(v) {
            counts[part.partition_of(eid) as usize] += 1;
        }
        let expect_replicas: Vec<u32> = (0..counts.len() as u32)
            .filter(|&pid| counts[pid as usize] > 0)
            .collect();
        let expect_master = expect_replicas
            .iter()
            .copied()
            .max_by_key(|&pid| (counts[pid as usize], std::cmp::Reverse(pid)));
        // Ask twice so the second answer comes from the cache.
        for _ in 0..2 {
            match client
                .request(&Request::VertexLookup { vertex: v })
                .expect("lookup")
            {
                Response::VertexInfo { master, replicas } => {
                    assert_eq!(master, expect_master, "vertex {v} master");
                    assert_eq!(replicas, expect_replicas, "vertex {v} replicas");
                }
                other => panic!("vertex {v}: unexpected {other:?}"),
            }
        }
    }

    for (eid, edge) in g.edges().iter().enumerate() {
        let (u, v) = edge.endpoints();
        assert_eq!(
            client
                .request(&Request::EdgeLookup { u: v, v: u })
                .expect("edge lookup"),
            Response::EdgeInfo {
                partition: part.partition_of(eid as u32)
            },
            "edge ({u},{v})"
        );
    }

    // Neighbor queries agree with a direct CSR scan.
    for v in [0u32, 7, 63, 119] {
        for pid in 0..part.num_partitions() as u32 {
            let mut expect: Vec<u32> = g
                .incident(v)
                .filter(|&(_, eid)| part.partition_of(eid) == pid)
                .map(|(n, _)| n)
                .collect();
            expect.sort_unstable();
            assert_eq!(
                client
                    .request(&Request::Neighbors {
                        vertex: v,
                        partition: pid
                    })
                    .expect("neighbors"),
                Response::NeighborList { neighbors: expect },
                "vertex {v} partition {pid}"
            );
        }
    }

    // The cache saw traffic: every vertex was asked twice.
    match client.request(&Request::Stats).expect("stats") {
        Response::StatsReport(stats) => {
            assert!(stats.cache_hits > 0, "expected cache hits, got {stats:?}");
            assert_eq!(stats.num_vertices, g.num_vertices() as u64);
            assert_eq!(stats.num_partitions, part.num_partitions() as u64);
        }
        other => panic!("unexpected {other:?}"),
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_load_completes_without_protocol_errors() {
    let dir = temp_dir("load");
    let (graph, partition) = graph_and_partition(200, 800, 4, 23);
    write_store(&dir, &graph, &partition);
    let service = PartitionService::open_store(&dir, "hdrf", 256).expect("service opens");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");

    let report = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        threads: 4,
        ops: 2000,
        read_ratio: 0.9,
        zipf_skew: 1.1,
        num_vertices: 200,
        num_partitions: 4,
        seed: 7,
        read_timeout: READ_TIMEOUT,
        retry: RetryPolicy::default(),
    })
    .expect("load runs");
    assert_eq!(report.protocol_errors, 0, "report: {report:?}");
    assert_eq!(report.refused, 0, "report: {report:?}");
    assert_eq!(report.ok + report.not_found, 2000, "report: {report:?}");
    assert!(report.latency.count > 0);
    assert!(report.latency.p50 <= report.latency.p99);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturating_burst_gets_typed_overload_refusals() {
    let dir = temp_dir("burst");
    let (graph, partition) = graph_and_partition(50, 200, 3, 31);
    write_store(&dir, &graph, &partition);
    let service = PartitionService::open_store(&dir, "hdrf", 0).expect("service opens");
    // One worker, no queue: the worker parks on the first connection's
    // socket (we hold it open without sending), so every later
    // connection must be refused with a typed Overloaded error.
    let handle = serve(
        service,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 0,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    let pinned = ServeClient::connect(&addr, READ_TIMEOUT).expect("pin connects");
    // Give the worker a moment to pop the pinned connection off the queue.
    std::thread::sleep(Duration::from_millis(100));

    let burst = run_burst(&addr, 12, Duration::from_secs(5));
    assert_eq!(burst.attempted, 12);
    assert!(
        burst.overloaded >= 10,
        "expected typed overload refusals, got {burst:?}"
    );
    drop(pinned);

    let stats = handle.stats();
    assert!(stats.overloads >= 10, "stats: {stats:?}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_request_drains_gracefully() {
    let dir = temp_dir("drain");
    let (graph, partition) = graph_and_partition(60, 240, 3, 41);
    write_store(&dir, &graph, &partition);
    let service = PartitionService::open_store(&dir, "hdrf", 32).expect("service opens");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let addr = handle.addr().to_string();

    let mut client = ServeClient::connect(&addr, READ_TIMEOUT).expect("client connects");
    assert_eq!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    );
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    );
    // All threads exit; wait() returns instead of hanging.
    handle.wait();

    // A post-drain connection is refused: either a typed Draining reply
    // or an immediate close/reset once the listener is gone.
    if let Ok(mut late) = ServeClient::connect(&addr, Duration::from_secs(2)) {
        match late.request(&Request::Ping) {
            Ok(Response::Error(ErrorCode::Draining)) | Err(_) => {}
            other => panic!("post-drain request should fail, got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
