//! Property tests for the serve wire protocol, mirroring the store's
//! torn-tail contract: arbitrary requests/responses round-trip losslessly
//! through encode → frame → read → decode, and truncated or garbage
//! bytes always yield a typed [`ProtocolError`], never a panic.

use proptest::prelude::*;
use proptest::prop::collection::vec;
use tlp_serve::protocol::HealthReport;
use tlp_serve::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, ProtocolError, Request, Response, ServeStats, MAX_FRAME_LEN,
};

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        any::<u32>().prop_map(|vertex| Request::VertexLookup { vertex }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Request::EdgeLookup { u, v }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(vertex, partition)| Request::Neighbors { vertex, partition }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Request::PlaceEdge { u, v }),
        Just(Request::Stats),
        Just(Request::Health),
        Just(Request::Flush),
        Just(Request::Shutdown),
    ]
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Draining),
        Just(ErrorCode::NotFound),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Internal),
    ]
}

fn stats_strategy() -> impl Strategy<Value = ServeStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, num_edges)| ServeStats {
            requests: a.0,
            lookups: a.1,
            placements: a.2,
            overloads: a.3,
            drained: b.0,
            protocol_errors: b.1,
            cache_hits: b.2,
            cache_misses: b.3,
            cache_evictions: c.0,
            pending_placements: c.1,
            num_vertices: c.2,
            num_partitions: c.3,
            num_edges,
        })
}

fn health_strategy() -> impl Strategy<Value = HealthReport> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(counts, durable, draining)| HealthReport {
            wal_depth: counts.0,
            pending_placements: counts.1,
            flushes: counts.2,
            last_flush_age_secs: counts.3,
            durable,
            draining,
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        (proptest::option::of(any::<u32>()), vec(any::<u32>(), 0..32))
            .prop_map(|(master, replicas)| Response::VertexInfo { master, replicas }),
        any::<u32>().prop_map(|partition| Response::EdgeInfo { partition }),
        vec(any::<u32>(), 0..32).prop_map(|neighbors| Response::NeighborList { neighbors }),
        (any::<u32>(), any::<bool>())
            .prop_map(|(partition, fresh)| Response::Placed { partition, fresh }),
        stats_strategy().prop_map(Response::StatsReport),
        health_strategy().prop_map(Response::HealthReport),
        any::<u64>().prop_map(|edges| Response::Flushed { edges }),
        Just(Response::ShuttingDown),
        error_code_strategy().prop_map(Response::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_through_frames(request in request_strategy()) {
        let body = encode_request(&request);
        prop_assert_eq!(decode_request(&body).expect("body decodes"), request.clone());
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("frame writes");
        let mut reader = wire.as_slice();
        let read = read_frame(&mut reader).expect("frame reads").expect("one frame");
        prop_assert_eq!(decode_request(&read).expect("framed body decodes"), request);
        prop_assert!(read_frame(&mut reader).expect("clean eof").is_none());
    }

    #[test]
    fn responses_round_trip_through_frames(response in response_strategy()) {
        let body = encode_response(&response);
        prop_assert_eq!(decode_response(&body).expect("body decodes"), response.clone());
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("frame writes");
        let read = read_frame(&mut wire.as_slice())
            .expect("frame reads")
            .expect("one frame");
        prop_assert_eq!(decode_response(&read).expect("framed body decodes"), response);
    }

    #[test]
    fn truncated_frames_are_typed_errors(
        request in request_strategy(),
        keep_fraction in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&request)).expect("frame writes");
        let keep = (((wire.len() as f64) * keep_fraction) as usize).min(wire.len() - 1);
        let mut reader = &wire[..keep];
        match read_frame(&mut reader) {
            // Cutting at byte 0 is a clean between-frames EOF.
            Ok(None) => prop_assert_eq!(keep, 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(ProtocolError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in vec(any::<u8>(), 0..64)) {
        // Raw bodies through both decoders: any outcome but a panic.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        // And through the framed reader.
        let mut reader = bytes.as_slice();
        if let Ok(Some(body)) = read_frame(&mut reader) {
            let _ = decode_request(&body);
            let _ = decode_response(&body);
        }
    }

    #[test]
    fn corrupt_lengths_and_versions_are_refused(
        len in prop_oneof![Just(0u32), MAX_FRAME_LEN + 1..u32::MAX],
        version in any::<u8>(),
    ) {
        // Hostile length prefix: rejected before any allocation.
        let len: u32 = len;
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        let too_large = matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtocolError::FrameTooLarge { .. })
        );
        prop_assert!(too_large);
        // Wrong version byte on an otherwise valid frame.
        if version != tlp_serve::PROTOCOL_VERSION {
            let mut framed = Vec::new();
            write_frame(&mut framed, &encode_request(&Request::Ping)).expect("frame writes");
            framed[4] = version;
            let bad_version = matches!(
                read_frame(&mut framed.as_slice()),
                Err(ProtocolError::BadVersion { .. })
            );
            prop_assert!(bad_version);
        }
    }
}
