//! The serving layer's headline guarantee: placements accumulated
//! through the server (write-only workload, fixed seed, single client)
//! are bit-identical to a direct seeded `StreamingPlacer` run over the
//! same fresh edges — all the way down to the flushed store's bytes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlp_baselines::{HdrfState, StreamingPlacer};
use tlp_core::EdgePartition;
use tlp_graph::{CsrGraph, GraphBuilder};
use tlp_serve::{
    run_load, run_replay, serve, LoadConfig, PartitionService, Request, Response, RetryPolicy,
    ServeClient, ServerConfig,
};
use tlp_store::write_partition_store;

fn graph_and_partition(n: u32, m: usize, p: usize, seed: u64) -> (CsrGraph, EdgePartition) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().reserve_vertices(n as usize);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        builder.push_edge(u, v);
    }
    let graph = builder.build();
    let mut placer =
        HdrfState::new(graph.num_vertices(), p, tlp_baselines::HDRF_LAMBDA).expect("placer");
    let assignment = graph
        .edges()
        .iter()
        .map(|e| {
            let (u, v) = e.endpoints();
            placer.place(u, v)
        })
        .collect();
    (graph, EdgePartition::new(p, assignment).expect("partition"))
}

/// Every file in a store directory, name → bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir lists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("file reads"));
    }
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-serve-bitid-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_placements_byte_match_direct_streaming_run() {
    let (graph, partition) = graph_and_partition(150, 500, 6, 77);
    let served_dir = temp_dir("served");
    let direct_dir = temp_dir("direct");
    write_partition_store(&served_dir, &graph, &partition).expect("served store");
    write_partition_store(&direct_dir, &graph, &partition).expect("direct store");
    assert_eq!(
        dir_bytes(&served_dir),
        dir_bytes(&direct_dir),
        "identical starting stores"
    );

    let config = LoadConfig {
        addr: String::new(),
        threads: 1,
        ops: 800,
        read_ratio: 0.0,
        zipf_skew: 1.1,
        num_vertices: graph.num_vertices() as u32,
        num_partitions: partition.num_partitions() as u32,
        seed: 99,
        read_timeout: Duration::from_secs(10),
        retry: RetryPolicy::default(),
    };

    // Served run: write-only workload over TCP, then flush + drain.
    let service = PartitionService::open_store(&served_dir, "hdrf", 128).expect("service opens");
    let handle = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let mut served_config = config.clone();
    served_config.addr = handle.addr().to_string();
    let report = run_load(&served_config).expect("load runs");
    assert_eq!(report.protocol_errors, 0, "report: {report:?}");
    let mut control =
        ServeClient::connect(&served_config.addr, Duration::from_secs(10)).expect("control");
    let served_flushed = match control.request(&Request::Flush).expect("flush") {
        Response::Flushed { edges } => edges,
        other => panic!("flush failed: {other:?}"),
    };
    assert!(served_flushed > 0, "workload placed no fresh edges");
    handle.shutdown();

    // Direct run: same seed, same generator, same seeded placer, offline.
    let replay = run_replay(&config, &direct_dir, "hdrf").expect("replay runs");
    assert_eq!(replay.flushed, served_flushed, "same fresh edge set");

    assert_eq!(
        dir_bytes(&served_dir),
        dir_bytes(&direct_dir),
        "flushed stores must be byte-identical"
    );

    let _ = std::fs::remove_dir_all(&served_dir);
    let _ = std::fs::remove_dir_all(&direct_dir);
}
