//! Parallel trial runner: wall-clock scaling and best-of-n quality.
//!
//! Beyond the usual timing medians, this bench asserts the two properties
//! the runner is sold on: on a machine with at least 4 cores, 8 trials
//! finish in under 2x the single-trial wall clock, and the best-of-8
//! replication factor is never worse than the single-trial one (trial 0
//! reuses the base seed, so the single run is always in the candidate set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use tlp_core::{available_threads, ParallelTrialRunner, TlpConfig};
use tlp_graph::generators::chung_lu;
use tlp_graph::CsrGraph;

const EDGES: usize = 100_000;
const TRIALS: usize = 8;
const PARTITIONS: usize = 16;

fn bench_graph() -> CsrGraph {
    chung_lu(EDGES / 5, EDGES, 2.2, 9)
}

fn runner(trials: usize) -> ParallelTrialRunner {
    ParallelTrialRunner::new(TlpConfig::new().seed(1).trials(trials))
}

fn bench_parallel_trials(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("parallel_trials");
    group.sample_size(5);
    for trials in [1usize, TRIALS] {
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &t| {
            let runner = runner(t);
            b.iter(|| runner.run(&graph, PARTITIONS).unwrap())
        });
    }
    group.finish();
}

fn min_wall_clock(graph: &CsrGraph, trials: usize, repeats: usize) -> Duration {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            runner(trials).run(graph, PARTITIONS).unwrap();
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn scaling_checks(_c: &mut Criterion) {
    let smoke_only = std::env::args().any(|a| a == "--test");
    let graph = if smoke_only {
        chung_lu(400, 2_000, 2.2, 9)
    } else {
        bench_graph()
    };

    let single = runner(1).run(&graph, PARTITIONS).unwrap();
    let best_of_n = runner(TRIALS).run(&graph, PARTITIONS).unwrap();
    assert!(
        best_of_n.best_rf() <= single.best_rf(),
        "best-of-{TRIALS} RF {} must not exceed single-trial RF {}",
        best_of_n.best_rf(),
        single.best_rf()
    );
    println!(
        "bench parallel_trials/rf: single {:.4}, best-of-{TRIALS} {:.4}",
        single.best_rf(),
        best_of_n.best_rf()
    );

    if smoke_only {
        println!("bench parallel_trials/scaling: ok (smoke)");
        return;
    }

    let one = min_wall_clock(&graph, 1, 3);
    let eight = min_wall_clock(&graph, TRIALS, 3);
    let ratio = eight.as_secs_f64() / one.as_secs_f64().max(f64::EPSILON);
    println!(
        "bench parallel_trials/scaling: 1 trial {one:?}, {TRIALS} trials {eight:?} \
         ({ratio:.2}x on {} threads)",
        available_threads()
    );
    if available_threads() >= 4 {
        assert!(
            ratio < 2.0,
            "{TRIALS} trials took {ratio:.2}x the single-trial wall clock \
             on {} threads; expected < 2x",
            available_threads()
        );
    }
}

criterion_group!(benches, bench_parallel_trials, scaling_checks);
criterion_main!(benches);
