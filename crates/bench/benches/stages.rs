//! Ablation benches for the design choices called out in DESIGN.md:
//! selection strategy (indexed vs the paper's linear scan), reseed policy,
//! and the TLP_R stage-ratio sweep (Figs. 9-11 flavored).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlp_core::{
    EdgePartitioner, EdgeRatioLocalPartitioner, ReseedPolicy, SelectionStrategy, TlpConfig,
    TwoStageLocalPartitioner,
};
use tlp_graph::generators::power_law_community;

fn bench_selection_strategy(c: &mut Criterion) {
    let graph = power_law_community(4_000, 24_000, 2.1, 40, 0.25, 5);
    let mut group = c.benchmark_group("ablation_selection_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("indexed_heap", SelectionStrategy::IndexedHeap),
        ("linear_scan", SelectionStrategy::LinearScan),
    ] {
        group.bench_function(name, |b| {
            let tlp = TwoStageLocalPartitioner::new(
                TlpConfig::new().seed(1).selection_strategy(strategy),
            );
            b.iter(|| tlp.partition(&graph, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_reseed_policy(c: &mut Criterion) {
    // A disconnected graph stresses the frontier-exhaustion path.
    let mut builder = tlp_graph::GraphBuilder::new();
    for island in 0..40u32 {
        let base = island * 100;
        let g = power_law_community(100, 500, 2.1, 4, 0.3, island as u64);
        for e in g.edges() {
            builder.push_edge(base + e.source(), base + e.target());
        }
    }
    let graph = builder.build();
    let mut group = c.benchmark_group("ablation_reseed_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("reseed", ReseedPolicy::Reseed),
        ("break_and_sweep", ReseedPolicy::Break),
    ] {
        group.bench_function(name, |b| {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1).reseed_policy(policy));
            b.iter(|| tlp.partition(&graph, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_tlp_r(c: &mut Criterion) {
    let graph = power_law_community(3_000, 18_000, 2.1, 30, 0.25, 9);
    let mut group = c.benchmark_group("tlp_r_ratio");
    group.sample_size(10);
    for r in [0.0, 0.3, 0.5, 0.7, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let algo = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(1), r).unwrap();
            b.iter(|| algo.partition(&graph, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_frontier_cap(c: &mut Criterion) {
    // The paper's sliding-window future-work idea: cap the candidate
    // frontier and measure the speed side of the speed/quality trade-off.
    let graph = power_law_community(4_000, 24_000, 2.1, 40, 0.25, 7);
    let mut group = c.benchmark_group("ablation_frontier_cap");
    group.sample_size(10);
    for cap in [64usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1).frontier_cap(cap));
            b.iter(|| tlp.partition(&graph, 10).unwrap())
        });
    }
    group.bench_function("uncapped", |b| {
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
        b.iter(|| tlp.partition(&graph, 10).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection_strategy,
    bench_reseed_policy,
    bench_tlp_r,
    bench_frontier_cap
);
criterion_main!(benches);
