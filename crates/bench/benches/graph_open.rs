//! Graph-open bench: `.tlpg` v1 decode + CSR rebuild vs. v2 zero-copy
//! arena open, on a 400k-edge Chung–Lu graph (the scale of the paper's mid
//! Table III rows).
//!
//! A v1 open pays a per-edge decode and a full CSR construction; a v2 open
//! is one bulk read into an aligned arena plus per-section checksum and
//! structural validation — no per-edge decode, no CSR rebuild. The full
//! run asserts the headline claim — v2 open is at least 5x faster than the
//! v1 open — verifies both paths materialize bit-identical graphs, and
//! emits `BENCH_graph_open.json` at the workspace root.
//!
//! `cargo bench -p tlp-bench --bench graph_open -- --test` runs a downsized
//! smoke pass: equality is still asserted, timings are neither trusted nor
//! written.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tlp_graph::generators::chung_lu;
use tlp_graph::CsrGraph;
use tlp_store::{write_graph, FormatVersion, LoadedGraph, WriteOptions, VERSION_V2};

const SEED: u64 = 11;

fn graph(smoke: bool) -> CsrGraph {
    if smoke {
        chung_lu(2_000, 8_000, 2.2, SEED)
    } else {
        chung_lu(240_000, 400_000, 2.2, SEED)
    }
}

struct Workspace {
    dir: PathBuf,
    v1: PathBuf,
    v2: PathBuf,
}

impl Workspace {
    fn create(graph: &CsrGraph) -> Workspace {
        let dir = std::env::temp_dir().join(format!("tlp-bench-graph-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("graph_v1.tlpg");
        let v2 = dir.join("graph_v2.tlpg");
        for (path, version) in [(&v1, FormatVersion::V1), (&v2, FormatVersion::V2)] {
            let options = WriteOptions {
                version,
                ..WriteOptions::default()
            };
            write_graph(path, graph, &options).unwrap();
        }
        Workspace { dir, v1, v2 }
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Minimum wall-clock over `repeats` back-to-back runs. Back-to-back
/// (not interleaved with the other path) keeps the allocator warm for
/// each path the same way, and the minimum sheds steal-time bursts on
/// shared machines.
fn min_wall_clock<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_graph_open(c: &mut Criterion) {
    let g = graph(true);
    let ws = Workspace::create(&g);
    let mut group = c.benchmark_group("graph_open");
    group.sample_size(10);
    group.bench_function("v1_decode_rebuild", |b| {
        b.iter(|| LoadedGraph::open(&ws.v1).unwrap())
    });
    group.bench_function("v2_zero_copy", |b| {
        b.iter(|| LoadedGraph::open(&ws.v2).unwrap())
    });
    group.finish();
}

/// The `BENCH_graph_open.json` trajectory file.
#[derive(Serialize)]
struct Baseline {
    bench: &'static str,
    seed: u64,
    vertices: usize,
    edges: usize,
    v1_open_ms: f64,
    v2_open_ms: f64,
    speedup_v2_vs_v1: f64,
}

fn graph_open_checks(_c: &mut Criterion) {
    let smoke_only = std::env::args().any(|a| a == "--test");
    let g = graph(smoke_only);
    let ws = Workspace::create(&g);

    // Correctness invariants hold at every scale: both open paths lend a
    // view of exactly the written graph.
    let v1 = LoadedGraph::open(&ws.v1).unwrap();
    let v2 = LoadedGraph::open(&ws.v2).unwrap();
    assert_eq!(v1.format_version(), 1, "v1 file reported a wrong version");
    assert_eq!(
        v2.format_version(),
        VERSION_V2,
        "v2 file reported a wrong version"
    );
    assert_eq!(v1.view().to_csr_graph(), g, "v1 open diverged");
    assert_eq!(v2.view().to_csr_graph(), g, "v2 open diverged");
    drop((v1, v2));
    if smoke_only {
        println!("bench graph_open: ok (smoke)");
        return;
    }

    let v1_open = min_wall_clock(9, || LoadedGraph::open(&ws.v1).unwrap());
    let v2_open = min_wall_clock(15, || LoadedGraph::open(&ws.v2).unwrap());
    let speedup = v1_open.as_secs_f64() / v2_open.as_secs_f64().max(f64::EPSILON);
    println!("bench graph_open: v1 open {v1_open:?}, v2 open {v2_open:?} ({speedup:.2}x)");
    assert!(
        speedup >= 5.0,
        "v2 zero-copy open is only {speedup:.2}x faster than the v1 decode + \
         rebuild on a {}-edge graph; expected >= 5x",
        g.num_edges()
    );

    let baseline = Baseline {
        bench: "graph_open",
        seed: SEED,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        v1_open_ms: v1_open.as_secs_f64() * 1e3,
        v2_open_ms: v2_open.as_secs_f64() * 1e3,
        speedup_v2_vs_v1: speedup,
    };
    // crates/bench -> workspace root. The shared obs writer prepends the
    // workspace-wide "schema" field and writes atomically.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_graph_open.json"
    ));
    tlp_obs::bench::write_bench_json(path, &baseline).expect("write baseline");
    let written = tlp_obs::bench::read_bench_json(path).expect("read baseline back");
    let keys = tlp_obs::bench::top_level_keys(&written);
    for expected in [
        "schema",
        "bench",
        "seed",
        "vertices",
        "edges",
        "v1_open_ms",
        "v2_open_ms",
        "speedup_v2_vs_v1",
    ] {
        assert!(
            keys.iter().any(|k| k == expected),
            "BENCH_graph_open.json lost its {expected:?} key (got {keys:?})"
        );
    }
    println!("bench graph_open: baseline written to BENCH_graph_open.json");
}

criterion_group!(benches, bench_graph_open, graph_open_checks);
criterion_main!(benches);
