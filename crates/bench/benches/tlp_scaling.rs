//! Scaling of TLP with graph size and partition count (the paper's §III-E
//! complexity analysis, measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
use tlp_graph::generators::power_law_community;

fn bench_edges_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlp_scaling_edges");
    group.sample_size(10);
    for edges in [5_000usize, 10_000, 20_000, 40_000] {
        let n = edges / 6;
        let graph = power_law_community(n, edges, 2.1, n / 50 + 2, 0.25, 3);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::from_parameter(edges), &graph, |b, g| {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
            b.iter(|| tlp.partition(g, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_partition_count(c: &mut Criterion) {
    let graph = power_law_community(4_000, 24_000, 2.1, 40, 0.25, 3);
    let mut group = c.benchmark_group("tlp_scaling_p");
    group.sample_size(10);
    for p in [5usize, 10, 15, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
            b.iter(|| tlp.partition(&graph, p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edges_scaling, bench_partition_count);
criterion_main!(benches);
