//! Benchmarks of the METIS-style multilevel substrate's phases.

use criterion::{criterion_group, criterion_main, Criterion};
use tlp_core::EdgePartitioner;
use tlp_graph::generators::power_law_community;
use tlp_metis::{coarsen, matching, MetisConfig, MetisPartitioner, WeightedGraph};

fn bench_phases(c: &mut Criterion) {
    let graph = power_law_community(8_000, 48_000, 2.1, 60, 0.25, 3);
    let wg = WeightedGraph::from_csr(&graph);

    let mut group = c.benchmark_group("metis_phases");
    group.sample_size(10);
    group.bench_function("heavy_edge_matching", |b| {
        b.iter(|| matching::heavy_edge_matching(&wg, 1))
    });
    let m = matching::heavy_edge_matching(&wg, 1);
    group.bench_function("contract", |b| b.iter(|| coarsen::contract(&wg, &m)));
    group.bench_function("coarsen_all", |b| {
        b.iter(|| coarsen::coarsen_all(&wg, &MetisConfig::default()))
    });
    group.bench_function("full_partition_p10", |b| {
        let metis = MetisPartitioner::default();
        b.iter(|| metis.partition(&graph, 10).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
