//! Store I/O bench: binary `.tlpg` open vs. text edge-list parse, plus
//! streamed-HDRF buffer bounds.
//!
//! Measures, on a 400k-edge Chung–Lu graph (the scale of the paper's mid
//! Table III rows):
//!
//! * text parse (`read_edge_list_file`) — what every run paid before the
//!   binary cache existed;
//! * binary open+load (`StoreReader::read_graph`) — what cached re-runs pay;
//! * HDRF streamed from the binary file at several budgets.
//!
//! The full run asserts the PR's headline claim — binary open is at least
//! 5x faster than the text parse — verifies the streamed partition is
//! bit-identical to the materialized one with the peak buffer within
//! budget, and emits `BENCH_store_io.json` at the workspace root.
//!
//! `cargo bench -p tlp-bench --bench store_io -- --test` runs a downsized
//! smoke pass: equality and buffer bounds are still asserted, timings are
//! neither trusted nor written.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tlp_baselines::{partition_stream, EdgeOrder, HdrfPartitioner, HdrfState};
use tlp_core::EdgePartitioner;
use tlp_graph::generators::chung_lu;
use tlp_graph::{io, CsrGraph};
use tlp_store::{write_graph, BinaryEdgeStream, StoreReader, WriteOptions};

const SEED: u64 = 9;
const PARTITIONS: usize = 16;
const BUDGETS: [usize; 3] = [1_024, 65_536, usize::MAX];

fn graph(smoke: bool) -> CsrGraph {
    if smoke {
        chung_lu(2_000, 8_000, 2.2, SEED)
    } else {
        chung_lu(120_000, 400_000, 2.2, SEED)
    }
}

struct Workspace {
    dir: PathBuf,
    text: PathBuf,
    bin: PathBuf,
}

impl Workspace {
    fn create(graph: &CsrGraph) -> Workspace {
        let dir = std::env::temp_dir().join(format!("tlp-bench-store-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("graph.txt");
        let bin = dir.join("graph.tlpg");
        let file = std::fs::File::create(&text).unwrap();
        io::write_edge_list(graph, std::io::BufWriter::new(file)).unwrap();
        write_graph(&bin, graph, &WriteOptions::default()).unwrap();
        Workspace { dir, text, bin }
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn text_parse(ws: &Workspace) -> CsrGraph {
    io::read_edge_list_file(&ws.text).unwrap().graph
}

fn binary_open(ws: &Workspace) -> CsrGraph {
    StoreReader::open(&ws.bin)
        .unwrap()
        .read_graph()
        .unwrap()
        .graph
}

fn min_wall_clock<T>(repeats: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_store_io(c: &mut Criterion) {
    let g = graph(true);
    let ws = Workspace::create(&g);
    let mut group = c.benchmark_group("store_io");
    group.sample_size(10);
    group.bench_function("text_parse", |b| b.iter(|| text_parse(&ws)));
    group.bench_function("binary_open", |b| b.iter(|| binary_open(&ws)));
    group.bench_function("hdrf_stream_64k", |b| {
        b.iter(|| {
            let mut stream = BinaryEdgeStream::open(&ws.bin, 65_536).unwrap();
            let mut placer = HdrfState::new(g.num_vertices(), PARTITIONS, 1.1).unwrap();
            partition_stream(&mut placer, &mut stream).unwrap()
        })
    });
    group.finish();
}

/// One streamed-HDRF timing row in the trajectory file.
#[derive(Serialize)]
struct StreamTiming {
    budget: u64,
    hdrf_stream_ms: f64,
}

/// The `BENCH_store_io.json` trajectory file.
#[derive(Serialize)]
struct Baseline {
    bench: &'static str,
    partitions: usize,
    seed: u64,
    vertices: usize,
    edges: usize,
    text_parse_ms: f64,
    binary_open_ms: f64,
    speedup_binary_vs_text: f64,
    hdrf_stream_ms_by_budget: Vec<StreamTiming>,
}

fn store_io_checks(_c: &mut Criterion) {
    let smoke_only = std::env::args().any(|a| a == "--test");
    let g = graph(smoke_only);
    let ws = Workspace::create(&g);

    // Correctness invariants hold at every scale: the binary graph is
    // bit-identical to the in-memory one, and streamed HDRF matches the
    // natural-order materialized run with the buffer within budget.
    assert_eq!(binary_open(&ws), g, "binary load diverged");
    let reference = HdrfPartitioner::new(EdgeOrder::Natural, 1.1)
        .unwrap()
        .partition(&g, PARTITIONS)
        .unwrap();
    for budget in BUDGETS {
        let mut stream = BinaryEdgeStream::open(&ws.bin, budget).unwrap();
        let mut placer = HdrfState::new(g.num_vertices(), PARTITIONS, 1.1).unwrap();
        let streamed = partition_stream(&mut placer, &mut stream).unwrap();
        assert!(
            streamed.peak_buffer <= budget,
            "peak buffer {} exceeds budget {budget}",
            streamed.peak_buffer
        );
        assert_eq!(
            streamed.into_partition().unwrap(),
            reference,
            "streamed HDRF diverged at budget {budget}"
        );
    }
    if smoke_only {
        println!("bench store_io: ok (smoke)");
        return;
    }

    let text = min_wall_clock(3, || text_parse(&ws));
    let binary = min_wall_clock(3, || binary_open(&ws));
    let speedup = text.as_secs_f64() / binary.as_secs_f64().max(f64::EPSILON);
    println!("bench store_io: text parse {text:?}, binary open {binary:?} ({speedup:.2}x)");
    assert!(
        speedup >= 5.0,
        "binary open is only {speedup:.2}x faster than the text parse on a \
         {}-edge graph; expected >= 5x",
        g.num_edges()
    );

    let mut hdrf_by_budget = Vec::new();
    for budget in BUDGETS {
        let t = min_wall_clock(3, || {
            let mut stream = BinaryEdgeStream::open(&ws.bin, budget).unwrap();
            let mut placer = HdrfState::new(g.num_vertices(), PARTITIONS, 1.1).unwrap();
            partition_stream(&mut placer, &mut stream).unwrap()
        });
        hdrf_by_budget.push(StreamTiming {
            budget: budget as u64,
            hdrf_stream_ms: t.as_secs_f64() * 1e3,
        });
    }

    let baseline = Baseline {
        bench: "store_io",
        partitions: PARTITIONS,
        seed: SEED,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        text_parse_ms: text.as_secs_f64() * 1e3,
        binary_open_ms: binary.as_secs_f64() * 1e3,
        speedup_binary_vs_text: speedup,
        hdrf_stream_ms_by_budget: hdrf_by_budget,
    };
    // crates/bench -> workspace root. The shared obs writer prepends the
    // workspace-wide "schema" field and writes atomically.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_store_io.json"
    ));
    tlp_obs::bench::write_bench_json(path, &baseline).expect("write baseline");
    let written = tlp_obs::bench::read_bench_json(path).expect("read baseline back");
    let keys = tlp_obs::bench::top_level_keys(&written);
    for expected in [
        "schema",
        "bench",
        "partitions",
        "seed",
        "vertices",
        "edges",
        "text_parse_ms",
        "binary_open_ms",
        "speedup_binary_vs_text",
        "hdrf_stream_ms_by_budget",
    ] {
        assert!(
            keys.iter().any(|k| k == expected),
            "BENCH_store_io.json lost its {expected:?} key (got {keys:?})"
        );
    }
    println!("bench store_io: baseline written to BENCH_store_io.json");
}

criterion_group!(benches, bench_store_io, store_io_checks);
criterion_main!(benches);
