//! Frontier-scoring bench: incremental selection vs. full-frontier rescan.
//!
//! Measures the three `SelectionStrategy` variants end to end on the
//! Chung–Lu and R-MAT generators at p = 32 — the regime the paper calls
//! out (§III-E) where scanning `N(P_k)` per step dominates. Beyond the
//! criterion timings, the full run asserts the PR's headline claim — the
//! dirty-marking `Incremental` strategy is at least 2x faster than the
//! `LinearScan` reference on both generators — and emits the measured
//! trajectory to `BENCH_frontier_scoring.json` at the workspace root
//! (see EXPERIMENTS.md for the refresh procedure).
//!
//! `cargo bench -p tlp-bench --bench frontier_scoring -- --test` runs a
//! downsized smoke pass: output equality is still asserted, timings are
//! neither trusted nor written.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::Serialize;
use std::time::{Duration, Instant};
use tlp_core::{EdgePartitioner, SelectionStrategy, TlpConfig, TwoStageLocalPartitioner};
use tlp_graph::generators::{chung_lu, rmat, RmatProbabilities};
use tlp_graph::CsrGraph;

const PARTITIONS: usize = 32;
const SEED: u64 = 9;

const STRATEGIES: [(&str, SelectionStrategy); 3] = [
    ("linear_scan", SelectionStrategy::LinearScan),
    ("indexed_heap", SelectionStrategy::IndexedHeap),
    ("incremental", SelectionStrategy::Incremental),
];

fn graphs(smoke: bool) -> Vec<(&'static str, CsrGraph)> {
    if smoke {
        vec![
            ("chung_lu", chung_lu(600, 3_000, 2.2, SEED)),
            ("rmat", rmat(9, 2_000, RmatProbabilities::default(), SEED)),
        ]
    } else {
        vec![
            ("chung_lu", chung_lu(120_000, 400_000, 2.2, SEED)),
            (
                "rmat",
                rmat(18, 400_000, RmatProbabilities::default(), SEED),
            ),
        ]
    }
}

fn run_once(graph: &CsrGraph, strategy: SelectionStrategy) -> tlp_core::EdgePartition {
    let config = TlpConfig::new().seed(1).selection_strategy(strategy);
    TwoStageLocalPartitioner::new(config)
        .partition(graph, PARTITIONS)
        .expect("partitioning failed")
}

fn min_wall_clock(graph: &CsrGraph, strategy: SelectionStrategy, repeats: usize) -> Duration {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run_once(graph, strategy));
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_frontier_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_scoring");
    group.sample_size(5);
    for (gname, graph) in graphs(true) {
        for (sname, strategy) in STRATEGIES {
            let id = BenchmarkId::new(gname, sname);
            group.bench_with_input(id, &strategy, |b, &s| b.iter(|| run_once(&graph, s)));
        }
    }
    group.finish();
}

/// One measured generator in the emitted baseline.
#[derive(Serialize)]
struct BaselineEntry {
    graph: &'static str,
    vertices: usize,
    edges: usize,
    linear_scan_ms: f64,
    indexed_heap_ms: f64,
    incremental_ms: f64,
    speedup_incremental_vs_scan: f64,
    speedup_indexed_vs_scan: f64,
}

/// The `BENCH_frontier_scoring.json` trajectory file.
#[derive(Serialize)]
struct Baseline {
    bench: &'static str,
    partitions: usize,
    seed: u64,
    entries: Vec<BaselineEntry>,
}

fn speedup_checks(_c: &mut Criterion) {
    let smoke_only = std::env::args().any(|a| a == "--test");
    let mut entries = Vec::new();

    for (gname, graph) in graphs(smoke_only) {
        // The fast paths must stay bit-identical to the reference scan on
        // the exact workloads being timed.
        let reference = run_once(&graph, SelectionStrategy::LinearScan);
        for (sname, strategy) in &STRATEGIES[1..] {
            assert_eq!(
                reference,
                run_once(&graph, *strategy),
                "{gname}: {sname} diverged from linear_scan"
            );
        }
        if smoke_only {
            println!("bench frontier_scoring/{gname}: ok (smoke)");
            continue;
        }

        let scan = min_wall_clock(&graph, SelectionStrategy::LinearScan, 3);
        let indexed = min_wall_clock(&graph, SelectionStrategy::IndexedHeap, 3);
        let incremental = min_wall_clock(&graph, SelectionStrategy::Incremental, 3);
        let speedup_inc = scan.as_secs_f64() / incremental.as_secs_f64().max(f64::EPSILON);
        let speedup_idx = scan.as_secs_f64() / indexed.as_secs_f64().max(f64::EPSILON);
        println!(
            "bench frontier_scoring/{gname}: scan {scan:?}, indexed {indexed:?}, \
             incremental {incremental:?} ({speedup_inc:.2}x vs scan)"
        );
        assert!(
            speedup_inc >= 2.0,
            "{gname}: incremental selection is only {speedup_inc:.2}x faster than the \
             full-frontier rescan at p = {PARTITIONS}; expected >= 2x"
        );
        entries.push(BaselineEntry {
            graph: gname,
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            linear_scan_ms: scan.as_secs_f64() * 1e3,
            indexed_heap_ms: indexed.as_secs_f64() * 1e3,
            incremental_ms: incremental.as_secs_f64() * 1e3,
            speedup_incremental_vs_scan: speedup_inc,
            speedup_indexed_vs_scan: speedup_idx,
        });
    }

    if smoke_only {
        return;
    }
    let baseline = Baseline {
        bench: "frontier_scoring",
        partitions: PARTITIONS,
        seed: SEED,
        entries,
    };
    // crates/bench -> workspace root. The shared obs writer prepends the
    // workspace-wide "schema" field and writes atomically.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_frontier_scoring.json"
    ));
    tlp_obs::bench::write_bench_json(path, &baseline).expect("write baseline");
    let written = tlp_obs::bench::read_bench_json(path).expect("read baseline back");
    let keys = tlp_obs::bench::top_level_keys(&written);
    for expected in ["schema", "bench", "partitions", "seed", "entries"] {
        assert!(
            keys.iter().any(|k| k == expected),
            "BENCH_frontier_scoring.json lost its {expected:?} key (got {keys:?})"
        );
    }
    println!("bench frontier_scoring: baseline written to BENCH_frontier_scoring.json");
}

criterion_group!(benches, bench_frontier_scoring, speedup_checks);
criterion_main!(benches);
