//! Throughput of the synthetic dataset generators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlp_graph::generators::{
    barabasi_albert, chung_lu, erdos_renyi, genealogy, power_law_community, rmat, RmatProbabilities,
};

fn bench_generators(c: &mut Criterion) {
    let m = 50_000usize;
    let n = 10_000usize;
    let mut group = c.benchmark_group("generators_50k_edges");
    group.sample_size(10);
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("erdos_renyi", |b| b.iter(|| erdos_renyi(n, m, 1)));
    group.bench_function("chung_lu", |b| b.iter(|| chung_lu(n, m, 2.1, 1)));
    group.bench_function("power_law_community", |b| {
        b.iter(|| power_law_community(n, m, 2.1, 50, 0.25, 1))
    });
    group.bench_function("barabasi_albert", |b| b.iter(|| barabasi_albert(n, 5, 1)));
    group.bench_function("rmat", |b| {
        b.iter(|| rmat(14, m, RmatProbabilities::default(), 1))
    });
    group.bench_function("genealogy", |b| b.iter(|| genealogy(n, 16_300, 1)));
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
