//! Fig. 8-flavored benchmark: the paper's five-algorithm line-up on one
//! power-law community graph, p = 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlp_baselines::{DbhPartitioner, LdgPartitioner, RandomPartitioner, VertexOrder};
use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
use tlp_graph::generators::power_law_community;
use tlp_metis::MetisPartitioner;

fn bench_lineup(c: &mut Criterion) {
    let graph = power_law_community(4_000, 24_000, 2.1, 40, 0.25, 7);
    let p = 10;
    let lineup: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(1))),
        Box::new(MetisPartitioner::default()),
        Box::new(LdgPartitioner::new(VertexOrder::Random(1))),
        Box::new(DbhPartitioner::new(1)),
        Box::new(RandomPartitioner::new(1)),
    ];
    let mut group = c.benchmark_group("fig8_lineup_p10");
    group.sample_size(10);
    for algo in &lineup {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), algo, |b, algo| {
            b.iter(|| algo.partition(&graph, p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lineup);
criterion_main!(benches);
