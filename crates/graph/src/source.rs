//! Source-agnostic edge access: the [`EdgeSource`] trait.
//!
//! Every partitioning algorithm in the workspace consumes one of two access
//! patterns:
//!
//! * **random access** — the whole graph materialized as a [`CsrGraph`]
//!   (TLP and the other expansion/multilevel algorithms), or
//! * **pass-oriented streaming** — one or more sequential sweeps over the
//!   edge sequence with a bounded buffer (the streaming baselines and the
//!   streamed metrics accumulator).
//!
//! `EdgeSource` is the common handle over both. An in-memory [`CsrGraph`]
//! implements it directly (random access is free, a streaming pass walks
//! the edge table in natural `EdgeId` order); the on-disk sources in
//! `tlp-store` implement it over the bounded-memory `EdgeStream` family,
//! reporting [`supports_random_access`](EdgeSource::supports_random_access)
//! `false` when a strict memory budget forbids materialization. The
//! pipeline layer in `tlp-core` dispatches on that capability instead of
//! each binary hard-coding which algorithm can read which input.
//!
//! Passes are **replayable and deterministic**: every call to
//! [`stream_pass`](EdgeSource::stream_pass) delivers the same edges in the
//! same arrival order, which is what lets a two-pass metrics computation
//! pair its second sweep with the assignments recorded in the first.

use crate::view::EdgeTable;
use crate::{CsrGraph, Edge, GraphView};
use std::error::Error as StdError;
use std::fmt;

/// Error from an [`EdgeSource`] operation.
#[derive(Debug)]
pub enum SourceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The source's bytes or framing are invalid.
    Corrupt(String),
    /// Random access was requested from a source whose memory budget
    /// forbids materializing the graph.
    NeedsRandomAccess {
        /// Description of the refusing source (see [`EdgeSource::describe`]).
        source: String,
    },
    /// The source cannot provide a piece of metadata a consumer requires
    /// (e.g. final degrees for DBH from a one-pass text stream).
    MissingMeta {
        /// What was missing ("num_vertices", "degrees", ...).
        what: &'static str,
        /// Description of the source.
        source: String,
    },
    /// Any other error from a backing store, boxed to avoid a dependency
    /// cycle (`tlp-store` errors travel through this variant).
    Other(Box<dyn StdError + Send + Sync>),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "i/o error: {e}"),
            SourceError::Corrupt(message) => write!(f, "corrupt edge source: {message}"),
            SourceError::NeedsRandomAccess { source } => {
                write!(f, "source {source} is streaming-only (no random access)")
            }
            SourceError::MissingMeta { what, source } => {
                write!(f, "source {source} cannot provide {what}")
            }
            SourceError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for SourceError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SourceError::Io(e) => Some(e),
            SourceError::Other(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

/// What one completed streaming pass observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// Number of edges delivered.
    pub edges: usize,
    /// Largest chunk handed to the sink — bounded by the source's budget.
    pub peak_buffer: usize,
}

/// A source of a graph's edges, consumable by random access or by
/// replayable sequential passes.
///
/// Implementations must make repeated [`stream_pass`](Self::stream_pass)
/// calls deliver the identical edge sequence (same edges, same arrival
/// order) — consumers rely on this to correlate per-edge state across
/// passes.
pub trait EdgeSource {
    /// Human-readable description of the source (for error messages).
    fn describe(&self) -> String;

    /// Number of vertices, when known before streaming.
    fn num_vertices_hint(&self) -> Option<usize>;

    /// Number of edges, when known before streaming.
    fn num_edges_hint(&self) -> Option<usize>;

    /// Exact final degrees, when the source has them up front (required by
    /// degree-based streaming consumers like DBH).
    fn degrees_hint(&self) -> Option<Vec<u32>>;

    /// Whether [`random_access`](Self::random_access) can succeed.
    fn supports_random_access(&self) -> bool;

    /// Materializes (or returns the already-materialized) graph as a
    /// borrowed [`GraphView`].
    ///
    /// The view borrows from the source, which keeps the backing memory
    /// alive until the next `&mut self` call; sources backed by a `.tlpg`
    /// v2 arena lend the arena directly with no CSR rebuild, while v1 and
    /// text sources decode once, cache an owned graph, and lend that.
    ///
    /// # Errors
    ///
    /// [`SourceError::NeedsRandomAccess`] when the source's memory budget
    /// forbids materialization; otherwise any error from reading the
    /// backing store.
    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError>;

    /// Runs one sequential pass, handing every edge chunk to `sink`.
    ///
    /// # Errors
    ///
    /// Any error from reading the backing store.
    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError>;
}

/// Chunk length an in-memory source uses for streaming passes. Chunking an
/// in-memory slice costs nothing and keeps sink call patterns comparable
/// to the disk sources.
const CSR_PASS_CHUNK: usize = 1 << 16;

fn csr_pass<'a>(graph: impl Into<GraphView<'a>>, sink: &mut dyn FnMut(&[Edge])) -> PassStats {
    let graph = graph.into();
    let mut peak = 0usize;
    match graph.edge_table() {
        // The CSR backing already holds canonical edge structs: lend
        // slices of it directly, no copies.
        EdgeTable::Structs(edges) => {
            for chunk in edges.chunks(CSR_PASS_CHUNK.max(1)) {
                peak = peak.max(chunk.len());
                sink(chunk);
            }
        }
        // The arena backing stores raw endpoint words; assemble bounded
        // chunks of `Edge` structs so sinks see the same call pattern.
        EdgeTable::Pairs(_) => {
            let mut buffer = Vec::with_capacity(CSR_PASS_CHUNK.min(graph.num_edges()).max(1));
            for edge in graph.edge_iter() {
                buffer.push(edge);
                if buffer.len() == CSR_PASS_CHUNK.max(1) {
                    peak = peak.max(buffer.len());
                    sink(&buffer);
                    buffer.clear();
                }
            }
            if !buffer.is_empty() {
                peak = peak.max(buffer.len());
                sink(&buffer);
            }
        }
    }
    PassStats {
        edges: graph.num_edges(),
        peak_buffer: peak,
    }
}

fn csr_degrees<'a>(graph: impl Into<GraphView<'a>>) -> Vec<u32> {
    let graph = graph.into();
    graph
        .vertices()
        .map(|v| graph.degree(v) as u32)
        .collect::<Vec<_>>()
}

/// An owned in-memory graph as an [`EdgeSource`]: random access is free,
/// streaming passes walk the edge table in natural `EdgeId` order.
impl EdgeSource for CsrGraph {
    fn describe(&self) -> String {
        format!(
            "csr({} vertices, {} edges)",
            self.num_vertices(),
            self.num_edges()
        )
    }

    fn num_vertices_hint(&self) -> Option<usize> {
        Some(self.num_vertices())
    }

    fn num_edges_hint(&self) -> Option<usize> {
        Some(self.num_edges())
    }

    fn degrees_hint(&self) -> Option<Vec<u32>> {
        Some(csr_degrees(self))
    }

    fn supports_random_access(&self) -> bool {
        true
    }

    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError> {
        Ok(self.view())
    }

    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError> {
        Ok(csr_pass(self.view(), sink))
    }
}

/// A shared borrow of any CSR-backed graph as an [`EdgeSource`].
///
/// `EdgeSource` consumers take `&mut dyn EdgeSource`, but experiment grids
/// share one immutable graph across worker threads; this zero-cost wrapper
/// gives each cell its own source handle over the shared graph — whether
/// that is an owned [`CsrGraph`] or a `.tlpg` v2 arena's [`GraphView`].
#[derive(Debug)]
pub struct CsrSource<'a> {
    graph: GraphView<'a>,
}

impl<'a> CsrSource<'a> {
    /// Wraps a shared graph reference or view.
    pub fn new(graph: impl Into<GraphView<'a>>) -> Self {
        CsrSource {
            graph: graph.into(),
        }
    }
}

impl EdgeSource for CsrSource<'_> {
    fn describe(&self) -> String {
        format!(
            "csr({} vertices, {} edges)",
            self.graph.num_vertices(),
            self.graph.num_edges()
        )
    }

    fn num_vertices_hint(&self) -> Option<usize> {
        Some(self.graph.num_vertices())
    }

    fn num_edges_hint(&self) -> Option<usize> {
        Some(self.graph.num_edges())
    }

    fn degrees_hint(&self) -> Option<Vec<u32>> {
        Some(csr_degrees(self.graph))
    }

    fn supports_random_access(&self) -> bool {
        true
    }

    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError> {
        Ok(self.graph)
    }

    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError> {
        Ok(csr_pass(self.graph, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn graph() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
            .build()
    }

    #[test]
    fn csr_graph_is_a_random_access_source() {
        let mut g = graph();
        assert!(g.supports_random_access());
        assert_eq!(g.num_vertices_hint(), Some(4));
        assert_eq!(g.num_edges_hint(), Some(5));
        let degrees = g.degrees_hint().unwrap();
        assert_eq!(degrees.iter().sum::<u32>() as usize, 2 * g.num_edges());
        let same = g.random_access().unwrap();
        assert_eq!(same.num_edges(), 5);
        assert_eq!(same.edge_iter().count(), 5);
    }

    #[test]
    fn csr_pass_replays_natural_order() {
        let mut g = graph();
        let expected = g.edges().to_vec();
        for _ in 0..2 {
            let mut seen = Vec::new();
            let stats = g
                .stream_pass(&mut |chunk| seen.extend_from_slice(chunk))
                .unwrap();
            assert_eq!(seen, expected);
            assert_eq!(stats.edges, expected.len());
            assert!(stats.peak_buffer <= expected.len());
        }
    }

    #[test]
    fn shared_source_matches_owned_source() {
        let g = graph();
        let mut shared = CsrSource::new(&g);
        let mut seen = Vec::new();
        shared
            .stream_pass(&mut |chunk| seen.extend_from_slice(chunk))
            .unwrap();
        assert_eq!(seen, g.edges().to_vec());
        let view = shared.random_access().unwrap();
        assert_eq!(view.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
    }

    #[test]
    fn source_error_display_is_informative() {
        let e = SourceError::NeedsRandomAccess {
            source: "tlpg:x".into(),
        };
        assert!(e.to_string().contains("streaming-only"));
        let e = SourceError::MissingMeta {
            what: "degrees",
            source: "text:y".into(),
        };
        assert!(e.to_string().contains("degrees"));
    }
}
