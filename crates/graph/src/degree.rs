//! Degree statistics and distributions.
//!
//! The paper's motivation leans on power-law degree distributions (§I) and
//! its Table VI analyses the average degree of vertices selected in each TLP
//! stage, so degree tooling is a first-class substrate feature.

use crate::{CsrGraph, VertexId};

/// Summary statistics over the degree sequence of a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
}

impl DegreeStats {
    /// Computes degree statistics; returns `None` for a vertex-free graph.
    pub fn of(graph: &CsrGraph) -> Option<Self> {
        if graph.num_vertices() == 0 {
            return None;
        }
        let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
        degrees.sort_unstable();
        let n = degrees.len();
        let median = if n % 2 == 1 {
            degrees[n / 2] as f64
        } else {
            (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
        };
        Some(DegreeStats {
            min: degrees[0],
            max: degrees[n - 1],
            mean: graph.average_degree(),
            median,
        })
    }
}

/// Degree histogram: `histogram[d]` counts vertices of degree `d`.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let max = graph.vertices().map(|v| graph.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Returns the `k` highest-degree vertices, descending by degree (ties by
/// ascending vertex id). Returns fewer if the graph has fewer vertices.
pub fn top_degree_vertices(graph: &CsrGraph, k: usize) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = graph.vertices().collect();
    vs.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    vs.truncate(k);
    vs
}

/// Estimates the power-law exponent `alpha` of the degree distribution with
/// the discrete maximum-likelihood estimator (Clauset–Shalizi–Newman, with
/// the continuous approximation), over vertices of degree >= `d_min`.
///
/// Returns `None` if fewer than two vertices reach `d_min`.
pub fn power_law_exponent_mle(graph: &CsrGraph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in graph.vertices() {
        let d = graph.degree(v);
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / (d_min as f64 - 0.5)).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(n: usize) -> CsrGraph {
        GraphBuilder::new()
            .add_edges((1..n as VertexId + 1).map(|v| (0, v)))
            .build()
    }

    #[test]
    fn stats_on_star() {
        let g = star(4); // center degree 4, leaves degree 1
        let s = DegreeStats::of(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.median, 1.0);
    }

    #[test]
    fn stats_none_for_empty() {
        let g = GraphBuilder::new().build();
        assert!(DegreeStats::of(&g).is_none());
    }

    #[test]
    fn median_of_even_count() {
        // degrees: 1,1,2,2 -> median 1.5
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let s = DegreeStats::of(&g).unwrap();
        assert_eq!(s.median, 1.5);
    }

    #[test]
    fn histogram_counts() {
        let g = star(3);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]); // three leaves of degree 1, center degree 3
    }

    #[test]
    fn top_degree_vertices_ordering() {
        let g = star(3);
        assert_eq!(top_degree_vertices(&g, 2), vec![0, 1]);
        assert_eq!(top_degree_vertices(&g, 100).len(), 4);
    }

    #[test]
    fn mle_requires_enough_vertices() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        // Both vertices have degree 1; log_sum over d_min=1 is positive.
        let alpha = power_law_exponent_mle(&g, 1);
        assert!(alpha.is_some());
        let g_empty = GraphBuilder::new().build();
        assert!(power_law_exponent_mle(&g_empty, 1).is_none());
    }
}
