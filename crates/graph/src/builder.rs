//! Incremental construction of [`CsrGraph`]s from raw edge lists.

use crate::{CsrGraph, Edge, VertexId};

/// A deduplicating builder for [`CsrGraph`].
///
/// The builder accepts edges in any order and endpoint orientation, drops
/// self-loops and duplicate edges, and tracks the highest vertex id seen so
/// the resulting graph has a dense vertex space `0..n`.
///
/// # Example
///
/// ```
/// use tlp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .add_edge(1, 0)
///     .add_edge(0, 1) // duplicate, dropped
///     .add_edge(2, 2) // self-loop, dropped
///     .build();
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.num_vertices(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_vertices: usize,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declares that the graph has at least `n` vertices, so isolated
    /// trailing vertices survive even if no edge mentions them.
    pub fn reserve_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds one undirected edge; self-loops are counted and dropped.
    #[must_use]
    pub fn add_edge(mut self, a: VertexId, b: VertexId) -> Self {
        self.push_edge(a, b);
        self
    }

    /// Adds one undirected edge through a mutable reference (loop-friendly).
    pub fn push_edge(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            self.dropped_self_loops += 1;
            // The vertex still exists even though its loop is dropped.
            self.min_vertices = self.min_vertices.max(a as usize + 1);
            return;
        }
        self.edges.push(Edge::new(a, b));
    }

    /// Adds every edge from an iterator of endpoint pairs.
    #[must_use]
    pub fn add_edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (a, b) in iter {
            self.push_edge(a, b);
        }
        self
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (not yet deduplicated) edges currently buffered.
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph: deduplicates edges and builds the CSR arrays.
    pub fn build(self) -> CsrGraph {
        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();
        let num_vertices = edges
            .iter()
            .map(|e| e.target() as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);
        CsrGraph::from_canonical_edges(num_vertices, edges)
    }
}

impl FromIterator<(VertexId, VertexId)> for GraphBuilder {
    fn from_iter<T: IntoIterator<Item = (VertexId, VertexId)>>(iter: T) -> Self {
        GraphBuilder::new().add_edges(iter)
    }
}

impl Extend<(VertexId, VertexId)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.push_edge(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_in_both_orientations_collapse() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 0), (0, 1), (2, 1)])
            .build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_are_dropped_and_counted() {
        let mut b = GraphBuilder::new();
        b.push_edge(0, 0);
        b.push_edge(0, 1);
        b.push_edge(1, 1);
        assert_eq!(b.dropped_self_loops(), 2);
        assert_eq!(b.buffered_edges(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut b: GraphBuilder = [(0, 1), (1, 2)].into_iter().collect();
        b.extend([(2, 3)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn reserve_vertices_keeps_isolated_tail() {
        let g = GraphBuilder::new().reserve_vertices(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edge_ids_are_dense_and_sorted_canonical() {
        let g = GraphBuilder::new()
            .add_edges([(3, 2), (0, 1), (2, 0)])
            .build();
        // Edges are canonicalized and sorted, so EdgeIds follow (0,1),(0,2),(2,3).
        assert_eq!(g.edge(0).endpoints(), (0, 1));
        assert_eq!(g.edge(1).endpoints(), (0, 2));
        assert_eq!(g.edge(2).endpoints(), (2, 3));
    }
}
