//! Error types for graph construction and I/O.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Errors produced while reading, parsing, or validating graph data.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Explanation of what failed to parse.
        message: String,
    },
    /// A structural constraint was violated (e.g. vertex id overflow).
    Invalid(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Invalid(message) => write!(f, "invalid graph: {message}"),
        }
    }
}

impl StdError for GraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse {
            line: 3,
            message: "expected two integers".into(),
        };
        assert_eq!(
            format!("{e}"),
            "parse error at line 3: expected two integers"
        );
        let e = GraphError::Invalid("negative id".into());
        assert!(format!("{e}").contains("invalid graph"));
    }

    #[test]
    fn io_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(format!("{e}").contains("nope"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
