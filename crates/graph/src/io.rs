//! Reading and writing SNAP-style edge-list files.
//!
//! SNAP datasets (the paper's G1–G8) are whitespace-separated edge lists with
//! `#`-prefixed comment lines. Vertex ids in those files are arbitrary
//! integers; [`read_edge_list`] densifies them to `0..n` and returns the
//! mapping so results can be reported in original ids if needed.

use crate::{CsrGraph, GraphBuilder, GraphError, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Result of loading an edge list: the graph plus the original-id mapping.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The parsed, deduplicated, loop-free graph.
    pub graph: CsrGraph,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
}

/// Reads a SNAP-style edge list from any reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each other
/// line must contain at least two integers (extra columns such as weights or
/// timestamps are ignored). Directed inputs are symmetrized, duplicates and
/// self-loops dropped — matching the preprocessing the paper applies.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on read failure and [`GraphError::Parse`] on a
/// malformed line.
///
/// # Example
///
/// ```
/// use tlp_graph::io::read_edge_list;
///
/// let data = "# comment\n10 20\n20 30\n10 20\n";
/// let loaded = read_edge_list(data.as_bytes())?;
/// assert_eq!(loaded.graph.num_vertices(), 3);
/// assert_eq!(loaded.graph.num_edges(), 2);
/// assert_eq!(loaded.original_ids, vec![10, 20, 30]);
/// # Ok::<(), tlp_graph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new();

    let mut intern = |raw: u64, original_ids: &mut Vec<u64>| -> Result<VertexId, GraphError> {
        if let Some(&id) = remap.get(&raw) {
            return Ok(id);
        }
        let id = VertexId::try_from(original_ids.len())
            .map_err(|_| GraphError::Invalid("more than u32::MAX vertices".into()))?;
        remap.insert(raw, id);
        original_ids.push(raw);
        Ok(id)
    };

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let a = parse_field(fields.next(), line_no, "source vertex")?;
        let b = parse_field(fields.next(), line_no, "target vertex")?;
        let a = intern(a, &mut original_ids)?;
        let b = intern(b, &mut original_ids)?;
        builder.push_edge(a, b);
    }

    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<u64, GraphError> {
    let text = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    text.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("{what} is not an unsigned integer: {text:?}"),
    })
}

/// Reads an edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be opened or read, and
/// [`GraphError::Parse`] on malformed content.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes `graph` as a SNAP-style edge list (one `u v` line per edge).
///
/// A mutable reference can be passed for `writer` (`&mut Vec<u8>`, `&mut
/// File`, …).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# Undirected graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{}\t{}", e.source(), e.target())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format_with_comments_and_extra_columns() {
        let data = "# Directed graph\n% also a comment\n\n1 2 1000\n2 3\n3 1\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
    }

    #[test]
    fn symmetrizes_and_dedups_directed_input() {
        let data = "1 2\n2 1\n1 1\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        assert_eq!(loaded.graph.num_vertices(), 2);
    }

    #[test]
    fn preserves_first_seen_order_in_mapping() {
        let data = "100 7\n7 55\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.original_ids, vec![100, 7, 55]);
    }

    #[test]
    fn rejects_garbage_line_with_location() {
        let data = "1 2\nnot numbers\n";
        let err = read_edge_list(data.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_single_column_line() {
        let data = "1\n";
        let err = read_edge_list(data.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_write_then_read() {
        let g = crate::GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (0, 3)])
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely-not-here.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
