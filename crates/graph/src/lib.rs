//! Graph substrate for the TLP edge-partitioning suite.
//!
//! This crate provides everything the partitioning algorithms in
//! [`tlp-core`](https://docs.rs/tlp-core), `tlp-baselines`, and `tlp-metis`
//! need from a graph library:
//!
//! * [`CsrGraph`] — an immutable, compressed-sparse-row undirected simple
//!   graph in which every undirected edge carries a stable [`EdgeId`], so
//!   edge partitions can be expressed as `EdgeId -> partition` maps.
//! * [`GraphBuilder`] — deduplicating, self-loop-dropping construction from
//!   arbitrary edge lists.
//! * [`ResidualGraph`] — a mutable "unallocated edges" view used by local
//!   partitioning, supporting O(1) allocation of a single edge and iteration
//!   over a vertex's residual neighborhood.
//! * [`io`] — SNAP-style edge-list reading/writing with vertex-id remapping.
//! * [`traversal`] — BFS and connected components.
//! * [`generators`] — seeded synthetic graph generators (Erdős–Rényi,
//!   Chung–Lu power law, Barabási–Albert, R-MAT, and a genealogy-style
//!   generator) used to instantiate the paper's datasets offline.
//!
//! # Example
//!
//! ```
//! use tlp_graph::GraphBuilder;
//!
//! let graph = GraphBuilder::new()
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(2, 0)
//!     .build();
//! assert_eq!(graph.num_vertices(), 3);
//! assert_eq!(graph.num_edges(), 3);
//! assert_eq!(graph.degree(1), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod edge;
mod error;
mod residual;
mod source;
mod view;

pub mod degree;
pub mod generators;
pub mod intersect;
pub mod io;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edge::{Edge, EdgeId, VertexId};
pub use error::GraphError;
pub use residual::ResidualGraph;
pub use source::{CsrSource, EdgeSource, PassStats, SourceError};
pub use view::{EdgeTable, GraphView};

// Parallel trial runners share one `CsrGraph` across worker threads and
// give each worker its own `ResidualGraph` view; these bounds are part of
// the crate's public contract, so losing them (e.g. by adding an `Rc` or
// `Cell` field) must fail to compile rather than surface downstream.
#[allow(dead_code)]
fn _assert_thread_safety() {
    fn shared<T: Send + Sync>() {}
    fn owned<T: Send>() {}
    shared::<CsrGraph>();
    shared::<GraphBuilder>();
    shared::<GraphView<'static>>();
    owned::<ResidualGraph<'static>>();
}
