//! Borrowed-slice CSR view shared by every read path in the workspace.
//!
//! [`GraphView`] is the read-side counterpart of [`CsrGraph`]: four borrowed
//! slices (vertex offsets, neighbor ids, arc edge ids, and a canonical edge
//! table) with the same adjacency semantics. It is `Copy`, so hot loops pass
//! it by value, and it does not care who owns the backing memory — an owned
//! [`CsrGraph`], a `.tlpg` v2 arena mapped straight from disk by `tlp-store`,
//! or anything else that can produce correctly shaped slices.
//!
//! # Ownership contract
//!
//! A `GraphView` never owns or copies graph memory. Whoever produces the
//! view (a `CsrGraph`, a store arena, …) must keep the backing buffers alive
//! and immutable for the view's lifetime; the borrow checker enforces this,
//! which is why serving and parallel trials can share one immutable arena
//! instead of cloning per consumer. Materializing an owned graph is explicit
//! via [`GraphView::to_csr_graph`].

use crate::{CsrGraph, Edge, EdgeId, GraphError, VertexId};

/// The canonical edge table of a view, in one of two physical layouts.
///
/// `CsrGraph` owns a `Vec<Edge>`; `Edge` is not `repr(C)`, so a disk arena
/// cannot soundly reinterpret raw bytes as `&[Edge]` and instead lends the
/// little-endian `(source, target)` pair words directly. Both layouts index
/// by [`EdgeId`] and yield identical [`Edge`] values; `Pairs` costs one
/// predictable branch per lookup.
#[derive(Clone, Copy, Debug)]
pub enum EdgeTable<'a> {
    /// Borrowed canonical edge structs (the `CsrGraph` backing).
    Structs(&'a [Edge]),
    /// Borrowed `[u0, v0, u1, v1, …]` endpoint words with `u <= v`
    /// (the `.tlpg` v2 arena backing).
    Pairs(&'a [u32]),
}

impl<'a> EdgeTable<'a> {
    /// Number of canonical edges in the table.
    pub fn len(&self) -> usize {
        match self {
            EdgeTable::Structs(s) => s.len(),
            EdgeTable::Pairs(p) => p.len() / 2,
        }
    }

    /// Whether the table has no edges.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical [`Edge`] for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= len()`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> Edge {
        match self {
            EdgeTable::Structs(s) => s[e as usize],
            EdgeTable::Pairs(p) => {
                let i = e as usize * 2;
                Edge::new(p[i], p[i + 1])
            }
        }
    }

    /// Iterates the canonical edges in [`EdgeId`] order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + 'a {
        let table = *self;
        (0..table.len() as EdgeId).map(move |e| table.get(e))
    }

    /// The raw endpoint-pair words, if this table is pair-backed.
    pub fn as_pairs(&self) -> Option<&'a [u32]> {
        match self {
            EdgeTable::Pairs(p) => Some(p),
            EdgeTable::Structs(_) => None,
        }
    }
}

/// An immutable borrowed CSR graph: the read API of [`CsrGraph`] over
/// memory owned by someone else.
///
/// Obtain one from [`CsrGraph::view`] (or `&CsrGraph` via `From`/`Into`),
/// or from a `tlp-store` v2 arena. See the module docs for the ownership
/// contract.
#[derive(Clone, Copy, Debug)]
pub struct GraphView<'a> {
    /// `offsets[v]..offsets[v+1]` is the adjacency range of vertex `v`.
    offsets: &'a [u64],
    /// Neighbor endpoint for each directed arc, sorted ascending per vertex.
    adj_vertex: &'a [VertexId],
    /// Undirected edge id for each directed arc (parallel to `adj_vertex`).
    adj_edge: &'a [EdgeId],
    /// Canonical edge table indexed by `EdgeId`.
    edges: EdgeTable<'a>,
}

impl<'a> GraphView<'a> {
    /// Assembles a view from raw CSR sections, validating their structure.
    ///
    /// Checks everything needed to make the accessor methods panic-free for
    /// in-range vertex ids: a non-empty, zero-led, monotonically
    /// non-decreasing offsets array whose final entry equals the adjacency
    /// length, parallel adjacency arrays, and an edge table of exactly half
    /// the adjacency length. It deliberately does **not** re-verify
    /// adjacency *contents* (neighbor sortedness, edge-id cross-links) —
    /// that is `O(m)` and is the producer's job (`CsrGraph` construction or
    /// a store checksum).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invalid`] describing the first violated shape
    /// constraint.
    pub fn from_sections(
        offsets: &'a [u64],
        adj_vertex: &'a [VertexId],
        adj_edge: &'a [EdgeId],
        edges: EdgeTable<'a>,
    ) -> Result<Self, GraphError> {
        let arcs = adj_vertex.len();
        if offsets.is_empty() {
            return Err(GraphError::Invalid("offsets array is empty".into()));
        }
        if offsets[0] != 0 {
            return Err(GraphError::Invalid(format!(
                "offsets[0] = {}, expected 0",
                offsets[0]
            )));
        }
        if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(GraphError::Invalid(format!(
                "offsets decrease at index {w}: {} then {}",
                offsets[w],
                offsets[w + 1]
            )));
        }
        let last = *offsets.last().expect("non-empty") as usize;
        if last != arcs {
            return Err(GraphError::Invalid(format!(
                "offsets end at {last} but adjacency has {arcs} arcs"
            )));
        }
        if adj_edge.len() != arcs {
            return Err(GraphError::Invalid(format!(
                "adjacency arrays disagree: {arcs} neighbor ids vs {} edge ids",
                adj_edge.len()
            )));
        }
        if let EdgeTable::Pairs(p) = edges {
            if p.len() % 2 != 0 {
                return Err(GraphError::Invalid(format!(
                    "edge pair array has odd length {}",
                    p.len()
                )));
            }
        }
        if edges.len() * 2 != arcs {
            return Err(GraphError::Invalid(format!(
                "edge table has {} edges but adjacency has {arcs} arcs (expected 2m)",
                edges.len()
            )));
        }
        Ok(GraphView {
            offsets,
            adj_vertex,
            adj_edge,
            edges,
        })
    }

    /// Assembles a view from sections already validated by the producer
    /// (e.g. checksum-verified `.tlpg` v2 sections whose shape was checked
    /// once at open).
    ///
    /// Skipping re-validation keeps repeated view construction O(1); the
    /// shape constraints are still debug-asserted. Passing sections that
    /// violate them never breaks memory safety — Rust bounds checks still
    /// apply — but accessors may panic or return nonsense.
    pub fn from_sections_trusted(
        offsets: &'a [u64],
        adj_vertex: &'a [VertexId],
        adj_edge: &'a [EdgeId],
        edges: EdgeTable<'a>,
    ) -> Self {
        debug_assert!(
            Self::from_sections(offsets, adj_vertex, adj_edge, edges).is_ok(),
            "trusted sections fail structural validation"
        );
        GraphView {
            offsets,
            adj_vertex,
            adj_edge,
            edges,
        }
    }

    /// Number of vertices `n = |V|`, including isolated ones.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbors of `v` as a slice (one entry per incident edge),
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        let v = v as usize;
        &self.adj_vertex[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates over `(neighbor, edge_id)` pairs incident to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + 'a {
        let v = v as usize;
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        self.adj_vertex[range.clone()]
            .iter()
            .copied()
            .zip(self.adj_edge[range].iter().copied())
    }

    /// The canonical [`Edge`] for an [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges.get(e)
    }

    /// The canonical edge table.
    pub fn edge_table(&self) -> EdgeTable<'a> {
        self.edges
    }

    /// Iterates all canonical edges in [`EdgeId`] order.
    pub fn edge_iter(&self) -> impl Iterator<Item = Edge> + 'a {
        self.edges.iter()
    }

    /// Iterates over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Average degree `2m / n`, or `0.0` for a vertex-free graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Whether vertices `a` and `b` are adjacent.
    ///
    /// Binary-searches the sorted neighbor slice of the lower-degree
    /// endpoint, so the cost is `O(log min_degree)`.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).binary_search(&other).is_ok()
    }

    /// Looks up the [`EdgeId`] connecting `a` and `b`, if any, in
    /// `O(log min_degree)`.
    pub fn edge_id(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let base = self.offsets[probe as usize] as usize;
        self.neighbors(probe)
            .binary_search(&other)
            .ok()
            .map(|pos| self.adj_edge[base + pos])
    }

    /// The raw vertex-offset section (`n + 1` entries).
    pub fn offsets(&self) -> &'a [u64] {
        self.offsets
    }

    /// The raw neighbor-id section (`2m` entries).
    pub fn adj_vertex(&self) -> &'a [VertexId] {
        self.adj_vertex
    }

    /// The raw arc-edge-id section (`2m` entries, parallel to
    /// [`GraphView::adj_vertex`]).
    pub fn adj_edge(&self) -> &'a [EdgeId] {
        self.adj_edge
    }

    /// Materializes an owned [`CsrGraph`] with identical structure.
    ///
    /// This is the explicit escape hatch for consumers that need `'static`
    /// ownership (e.g. detached deadline-trial threads); it re-runs the
    /// canonical CSR construction, so the result is bit-identical to a
    /// graph decoded from the same canonical edge list.
    pub fn to_csr_graph(&self) -> CsrGraph {
        CsrGraph::from_sorted_canonical_edges(self.num_vertices(), self.edge_iter().collect())
            .expect("view edge table is canonical by construction")
    }
}

impl<'a> From<&'a CsrGraph> for GraphView<'a> {
    fn from(graph: &'a CsrGraph) -> Self {
        graph.view()
    }
}

impl<'a> From<&'a &'a CsrGraph> for GraphView<'a> {
    fn from(graph: &'a &'a CsrGraph) -> Self {
        graph.view()
    }
}

impl<'a> From<&GraphView<'a>> for GraphView<'a> {
    fn from(view: &GraphView<'a>) -> Self {
        *view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .build()
    }

    #[test]
    fn view_mirrors_graph() {
        let g = sample();
        let v = g.view();
        assert_eq!(v.num_vertices(), g.num_vertices());
        assert_eq!(v.num_edges(), g.num_edges());
        assert!((v.average_degree() - g.average_degree()).abs() < 1e-12);
        for x in g.vertices() {
            assert_eq!(v.degree(x), g.degree(x));
            assert_eq!(v.neighbors(x), g.neighbors(x));
            assert_eq!(
                v.incident(x).collect::<Vec<_>>(),
                g.incident(x).collect::<Vec<_>>()
            );
        }
        for e in 0..g.num_edges() as u32 {
            assert_eq!(v.edge(e), g.edge(e));
        }
        assert_eq!(v.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
    }

    #[test]
    fn pairs_backing_matches_structs_backing() {
        let g = sample();
        let structs = g.view();
        let pairs: Vec<u32> = g
            .edges()
            .iter()
            .flat_map(|e| [e.source(), e.target()])
            .collect();
        let v = GraphView::from_sections(
            structs.offsets(),
            structs.adj_vertex(),
            structs.adj_edge(),
            EdgeTable::Pairs(&pairs),
        )
        .unwrap();
        for e in 0..g.num_edges() as u32 {
            assert_eq!(v.edge(e), g.edge(e));
        }
        assert_eq!(v.edge_table().as_pairs(), Some(&pairs[..]));
        assert_eq!(structs.edge_table().as_pairs(), None);
    }

    #[test]
    fn has_edge_and_edge_id_agree_with_graph() {
        let g = sample();
        let v = g.view();
        for a in g.vertices() {
            for b in g.vertices() {
                assert_eq!(v.has_edge(a, b), g.has_edge(a, b));
                assert_eq!(v.edge_id(a, b), g.edge_id(a, b));
            }
        }
    }

    #[test]
    fn to_csr_graph_round_trips() {
        let g = sample();
        assert_eq!(g.view().to_csr_graph(), g);
    }

    #[test]
    fn from_sections_rejects_malformed_shapes() {
        let g = sample();
        let v = g.view();
        let empty: &[u64] = &[];
        assert!(
            GraphView::from_sections(empty, v.adj_vertex(), v.adj_edge(), v.edge_table()).is_err()
        );
        let bad_lead = [1u64, v.adj_vertex().len() as u64];
        assert!(
            GraphView::from_sections(&bad_lead, v.adj_vertex(), v.adj_edge(), v.edge_table())
                .is_err()
        );
        let decreasing = [0u64, 5, 3, v.adj_vertex().len() as u64];
        assert!(
            GraphView::from_sections(&decreasing, v.adj_vertex(), v.adj_edge(), v.edge_table())
                .is_err()
        );
        let short_end = {
            let mut o = v.offsets().to_vec();
            *o.last_mut().unwrap() -= 1;
            o
        };
        // Last offset disagreeing with the adjacency length must be caught
        // even though the array is still monotone.
        assert!(
            GraphView::from_sections(&short_end, v.adj_vertex(), v.adj_edge(), v.edge_table())
                .is_err()
        );
        let truncated_ids = &v.adj_edge()[..v.adj_edge().len() - 1];
        assert!(
            GraphView::from_sections(v.offsets(), v.adj_vertex(), truncated_ids, v.edge_table())
                .is_err()
        );
        let odd_pairs = [0u32, 1, 2];
        assert!(GraphView::from_sections(
            v.offsets(),
            v.adj_vertex(),
            v.adj_edge(),
            EdgeTable::Pairs(&odd_pairs)
        )
        .is_err());
        let wrong_m = &g.edges()[..g.num_edges() - 1];
        assert!(GraphView::from_sections(
            v.offsets(),
            v.adj_vertex(),
            v.adj_edge(),
            EdgeTable::Structs(wrong_m)
        )
        .is_err());
    }

    #[test]
    fn empty_graph_view() {
        let g = GraphBuilder::new().build();
        let v = g.view();
        assert_eq!(v.num_vertices(), 0);
        assert_eq!(v.num_edges(), 0);
        assert!(v.is_empty());
        assert_eq!(v.average_degree(), 0.0);
        assert_eq!(v.vertices().count(), 0);
    }
}
