//! Neighborhood-intersection kernels.
//!
//! Stage I of TLP scores a frontier candidate `v_i` against a member `v_j`
//! by `|N(v_i) ∩ N(v_j)| / |N(v_j)|`, so set-intersection size over sorted
//! CSR adjacency slices is the single hottest primitive of the selection
//! path. Three kernels cover the degree regimes of power-law graphs:
//!
//! * [`merge_intersection_size`] — linear two-pointer merge; best when the
//!   lists are of comparable length.
//! * [`galloping_intersection_size`] — binary-search probes of the longer
//!   list, shrinking the search window after each hit; best when one list
//!   is much shorter (a low-degree candidate against a hub).
//! * [`IntersectionKernel::count_with_loaded`] — membership lookups against
//!   a reusable epoch-stamped scratch ("bitset") holding one preloaded
//!   neighborhood; best when *many* lists are intersected against the same
//!   high-degree vertex, which is exactly what happens when a member is
//!   admitted and all of its frontier neighbors must be rescored.
//!
//! [`sorted_intersection_size`] dispatches adaptively between the first
//! two; the kernel object adds the preloaded-neighborhood path plus a
//! per-load cache of counts so the engine never computes
//! `|N(u) ∩ N(member)|` twice for the same admitted member.
//!
//! All kernels return the exact same count for the same inputs — the
//! engine's bit-identical-selection guarantee depends on it, and the
//! property suite (`tests/intersect_props.rs`) plus the core crate's
//! differential tests enforce it.

use crate::{GraphView, VertexId};

/// When the longer list is at least this many times the shorter one,
/// galloping beats the linear merge (the crossover tracks `log2` of the
/// longer length; 8 is a conservative fit for CSR slices).
const GALLOP_RATIO: usize = 8;

/// Size of the intersection of two sorted, duplicate-free slices, by
/// linear two-pointer merge (`O(|a| + |b|)`).
///
/// # Example
///
/// ```
/// use tlp_graph::intersect::merge_intersection_size;
///
/// assert_eq!(merge_intersection_size(&[1, 3, 5, 9], &[2, 3, 4, 5]), 2);
/// assert_eq!(merge_intersection_size(&[], &[1]), 0);
/// ```
pub fn merge_intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Size of the intersection of two sorted, duplicate-free slices, by
/// binary-search probes of the longer slice (`O(|short| log |long|)`).
///
/// The probed window shrinks after every search, so a run of hits near the
/// front of the long list keeps later probes cheap.
///
/// # Example
///
/// ```
/// use tlp_graph::intersect::galloping_intersection_size;
///
/// assert_eq!(galloping_intersection_size(&[3, 5], &(0..1000).collect::<Vec<_>>()), 2);
/// ```
pub fn galloping_intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0;
    let mut rest = long;
    for &x in short {
        match rest.binary_search(&x) {
            Ok(pos) => {
                count += 1;
                rest = &rest[pos + 1..];
            }
            Err(pos) => rest = &rest[pos..],
        }
    }
    count
}

/// Size of the intersection of two sorted, duplicate-free slices, choosing
/// between [`merge_intersection_size`] and [`galloping_intersection_size`]
/// by the length ratio.
///
/// # Example
///
/// ```
/// use tlp_graph::intersect::sorted_intersection_size;
///
/// assert_eq!(sorted_intersection_size(&[1, 3, 5, 9], &[2, 3, 4, 5]), 2);
/// assert_eq!(sorted_intersection_size(&[], &[1]), 0);
/// ```
pub fn sorted_intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= GALLOP_RATIO {
        galloping_intersection_size(short, long)
    } else {
        merge_intersection_size(short, long)
    }
}

/// Per-strategy call counts accumulated by an [`IntersectionKernel`].
///
/// Plain integers with no observability dependency: the engine drains
/// them once per round via [`IntersectionKernel::take_counters`] and
/// forwards the totals to whatever observer is attached, so the hot
/// per-intersection path never crosses a crate boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Neighborhood loads ([`IntersectionKernel::load`]).
    pub loads: u64,
    /// [`IntersectionKernel::count_with_loaded`] calls answered from the
    /// per-load memo.
    pub cache_hits: u64,
    /// `count_with_loaded` calls answered by membership-mark probes.
    pub mark_counts: u64,
    /// `count_with_loaded` calls answered by galloping search.
    pub gallop_counts: u64,
    /// Raw [`IntersectionKernel::bitset_intersection_size`] calls.
    pub bitset_counts: u64,
    /// Individual membership probes performed across mark and bitset
    /// counting (the inner-loop work the strategies are minimizing).
    pub probes: u64,
}

impl KernelCounters {
    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.loads += other.loads;
        self.cache_hits += other.cache_hits;
        self.mark_counts += other.mark_counts;
        self.gallop_counts += other.gallop_counts;
        self.bitset_counts += other.bitset_counts;
        self.probes += other.probes;
    }

    /// Total intersection counts served, across every strategy.
    pub fn total_counts(&self) -> u64 {
        self.cache_hits + self.mark_counts + self.gallop_counts + self.bitset_counts
    }
}

/// Reusable scratch for repeated intersections against one "loaded"
/// neighborhood, plus a per-load cache of counts.
///
/// The scratch is an epoch-stamped membership array (a bitset with O(1)
/// clearing: bumping the epoch invalidates every mark at once). [`load`]
/// marks `N(v)`; [`count_with_loaded`] then counts any other vertex's
/// neighborhood against the marks in `O(deg)` lookups — or galloping when
/// the query degree dwarfs the loaded degree — and memoizes the result, so
/// asking twice for the same pair during one load is a cache hit.
///
/// The intended rhythm mirrors partition growth: when the engine admits a
/// member `v`, it loads `N(v)` once and rescored frontier neighbors reuse
/// the marks; candidates enrolled later in the same admission hit the
/// cache for their closeness term against `v`.
///
/// # Example
///
/// ```
/// use tlp_graph::intersect::IntersectionKernel;
/// use tlp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .add_edges([(0, 1), (1, 2), (2, 0), (1, 3), (3, 0)])
///     .build();
/// let mut kernel = IntersectionKernel::new(g.num_vertices());
/// kernel.load(&g, 0);
/// // |N(2) ∩ N(0)| = |{0, 1} ∩ {1, 2, 3}| = 1.
/// assert_eq!(kernel.count_with_loaded(&g, 2), 1);
/// assert_eq!(kernel.cached_with_loaded(2), Some(1));
/// ```
///
/// [`load`]: IntersectionKernel::load
/// [`count_with_loaded`]: IntersectionKernel::count_with_loaded
#[derive(Clone, Debug, Default)]
pub struct IntersectionKernel {
    /// `mark[u] == epoch` iff `u` is a neighbor of the loaded vertex.
    mark: Vec<u32>,
    /// `cache_stamp[u] == epoch` iff `cache_val[u]` holds
    /// `|N(u) ∩ N(loaded)|`.
    cache_stamp: Vec<u32>,
    /// Cached intersection counts, valid per `cache_stamp`.
    cache_val: Vec<u32>,
    /// Current load epoch; 0 means nothing was ever loaded.
    epoch: u32,
    /// The vertex whose neighborhood is currently marked.
    loaded: Option<VertexId>,
    /// Per-strategy call tallies, drained via [`take_counters`].
    ///
    /// [`take_counters`]: IntersectionKernel::take_counters
    counters: KernelCounters,
}

impl IntersectionKernel {
    /// Creates a kernel sized for vertex ids `< n`.
    pub fn new(n: usize) -> Self {
        IntersectionKernel {
            mark: vec![0; n],
            cache_stamp: vec![0; n],
            cache_val: vec![0; n],
            epoch: 0,
            loaded: None,
            counters: KernelCounters::default(),
        }
    }

    /// The vertex whose neighborhood is currently loaded, if any.
    pub fn loaded(&self) -> Option<VertexId> {
        self.loaded
    }

    /// The per-strategy call tallies since the last [`take_counters`].
    ///
    /// [`take_counters`]: IntersectionKernel::take_counters
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }

    /// Returns the accumulated tallies and resets them to zero — the
    /// once-per-round drain point for observability.
    pub fn take_counters(&mut self) -> KernelCounters {
        std::mem::take(&mut self.counters)
    }

    /// Grows the scratch to cover vertex ids `< n` (no-op when already
    /// large enough).
    fn ensure_capacity(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.cache_stamp.resize(n, 0);
            self.cache_val.resize(n, 0);
        }
    }

    /// Starts a fresh epoch, resetting the stamp arrays if the counter
    /// would wrap (once every `u32::MAX` loads).
    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.cache_stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Loads `N(v)` into the scratch, invalidating the previous load and
    /// its cached counts.
    ///
    /// Accepts `&CsrGraph` or any [`GraphView`], so the kernel works over
    /// borrowed arenas as well as owned graphs.
    pub fn load<'a>(&mut self, graph: impl Into<GraphView<'a>>, v: VertexId) {
        let graph = graph.into();
        self.counters.loads += 1;
        self.ensure_capacity(graph.num_vertices());
        self.next_epoch();
        for &w in graph.neighbors(v) {
            self.mark[w as usize] = self.epoch;
        }
        self.loaded = Some(v);
    }

    /// The cached `|N(u) ∩ N(loaded)|` from an earlier
    /// [`count_with_loaded`](Self::count_with_loaded) in the current load,
    /// if any.
    pub fn cached_with_loaded(&self, u: VertexId) -> Option<usize> {
        let ui = u as usize;
        (self.epoch != 0 && self.cache_stamp.get(ui) == Some(&self.epoch))
            .then(|| self.cache_val[ui] as usize)
    }

    /// Counts `|N(u) ∩ N(v)|` for the loaded vertex `v` and memoizes the
    /// result for the duration of the load.
    ///
    /// Uses the membership marks (`O(deg(u))`) unless `deg(u)` dwarfs the
    /// loaded degree, where galloping over `N(u)` is cheaper.
    ///
    /// # Panics
    ///
    /// Panics if nothing is loaded.
    pub fn count_with_loaded<'a>(&mut self, graph: impl Into<GraphView<'a>>, u: VertexId) -> usize {
        let graph = graph.into();
        let v = self.loaded.expect("no neighborhood loaded");
        if let Some(count) = self.cached_with_loaded(u) {
            self.counters.cache_hits += 1;
            return count;
        }
        let nu = graph.neighbors(u);
        let count = if nu.len() / graph.degree(v).max(1) >= GALLOP_RATIO {
            self.counters.gallop_counts += 1;
            galloping_intersection_size(graph.neighbors(v), nu)
        } else {
            self.counters.mark_counts += 1;
            self.counters.probes += nu.len() as u64;
            nu.iter()
                .filter(|&&w| self.mark[w as usize] == self.epoch)
                .count()
        };
        let ui = u as usize;
        self.cache_stamp[ui] = self.epoch;
        self.cache_val[ui] = count as u32;
        count
    }

    /// Size of the intersection of two arbitrary sorted, duplicate-free
    /// slices via the membership scratch: marks `a`, then counts `b`'s
    /// hits.
    ///
    /// This is the raw bitset kernel (property-tested against the merge
    /// and galloping kernels); it clobbers any loaded neighborhood.
    pub fn bitset_intersection_size(&mut self, a: &[VertexId], b: &[VertexId]) -> usize {
        self.counters.bitset_counts += 1;
        self.counters.probes += b.len() as u64;
        let cap = a
            .iter()
            .chain(b.iter())
            .map(|&v| v as usize + 1)
            .max()
            .unwrap_or(0);
        self.ensure_capacity(cap);
        self.next_epoch();
        self.loaded = None;
        for &v in a {
            self.mark[v as usize] = self.epoch;
        }
        b.iter()
            .filter(|&&v| self.mark[v as usize] == self.epoch)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn naive(a: &[VertexId], b: &[VertexId]) -> usize {
        a.iter().filter(|x| b.contains(x)).count()
    }

    #[test]
    fn kernels_agree_on_basic_cases() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 2, 3], &[4, 5, 6]),
            (&[1, 5, 7], &[5]),
            (&[0, 2, 4, 6, 8], &[1, 2, 3, 4, 5]),
        ];
        let mut kernel = IntersectionKernel::new(16);
        for &(a, b) in cases {
            let expected = naive(a, b);
            assert_eq!(merge_intersection_size(a, b), expected);
            assert_eq!(galloping_intersection_size(a, b), expected);
            assert_eq!(sorted_intersection_size(a, b), expected);
            assert_eq!(kernel.bitset_intersection_size(a, b), expected);
        }
    }

    #[test]
    fn loaded_counts_match_plain_intersections_and_cache() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (4, 0)])
            .build();
        let mut kernel = IntersectionKernel::new(g.num_vertices());
        for v in g.vertices() {
            kernel.load(&g, v);
            assert_eq!(kernel.loaded(), Some(v));
            for u in g.vertices() {
                assert_eq!(kernel.cached_with_loaded(u), None);
                let expected = sorted_intersection_size(g.neighbors(u), g.neighbors(v));
                assert_eq!(kernel.count_with_loaded(&g, u), expected, "u={u} v={v}");
                assert_eq!(kernel.cached_with_loaded(u), Some(expected));
            }
        }
    }

    #[test]
    fn load_invalidates_previous_cache() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let mut kernel = IntersectionKernel::new(g.num_vertices());
        kernel.load(&g, 0);
        let first = kernel.count_with_loaded(&g, 2);
        kernel.load(&g, 3);
        assert_eq!(kernel.cached_with_loaded(2), None);
        let second = kernel.count_with_loaded(&g, 2);
        assert_eq!(
            first,
            sorted_intersection_size(g.neighbors(2), g.neighbors(0))
        );
        assert_eq!(
            second,
            sorted_intersection_size(g.neighbors(2), g.neighbors(3))
        );
    }

    #[test]
    fn counters_track_strategies_and_drain() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (4, 0)])
            .build();
        let mut kernel = IntersectionKernel::new(g.num_vertices());
        kernel.load(&g, 0);
        kernel.count_with_loaded(&g, 2);
        kernel.count_with_loaded(&g, 2); // memoized
        kernel.bitset_intersection_size(&[1, 2], &[2, 3]);
        let counters = kernel.take_counters();
        assert_eq!(counters.loads, 1);
        assert_eq!(counters.cache_hits, 1);
        assert_eq!(counters.mark_counts + counters.gallop_counts, 1);
        assert_eq!(counters.bitset_counts, 1);
        assert_eq!(counters.total_counts(), 3);
        assert!(counters.probes > 0);
        assert_eq!(*kernel.counters(), KernelCounters::default());
        let mut merged = KernelCounters::default();
        merged.merge(&counters);
        assert_eq!(merged, counters);
    }

    #[test]
    fn bitset_kernel_grows_capacity_on_demand() {
        let mut kernel = IntersectionKernel::new(0);
        assert_eq!(
            kernel.bitset_intersection_size(&[1000, 2000], &[2000, 3000]),
            1
        );
    }
}
