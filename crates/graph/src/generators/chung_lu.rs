//! Chung–Lu random graphs with power-law expected degrees.
//!
//! This is the workhorse generator for the paper's SNAP datasets (G1–G8):
//! social and communication networks with heavy-tailed degree distributions.
//! Endpoints of each edge are drawn independently with probability
//! proportional to a vertex weight `w_i ~ (i + i0)^(-1/(gamma-1))`, the
//! standard construction whose realized degree distribution follows a power
//! law with exponent `gamma`.

use super::{collect_unique_edges, max_simple_edges};
use crate::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Computes the power-law weight vector used by [`chung_lu`].
///
/// `gamma` is the target degree exponent (`> 1`); typical social networks
/// have `gamma` in `[1.8, 2.8]`. The weights are unnormalized.
///
/// # Panics
///
/// Panics if `gamma <= 1.0`.
pub fn power_law_weights(n: usize, gamma: f64) -> Vec<f64> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1, got {gamma}");
    let exponent = -1.0 / (gamma - 1.0);
    (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect()
}

/// Generates a Chung–Lu power-law graph with `n` vertices, (up to) `m`
/// distinct edges, and degree exponent `gamma`.
///
/// The edge count is exact whenever `m` is feasible for a simple graph and
/// the rejection budget suffices (it essentially always does at the densities
/// of the paper's datasets).
///
/// # Panics
///
/// Panics if `gamma <= 1.0`.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::chung_lu;
/// use tlp_graph::degree::top_degree_vertices;
///
/// let g = chung_lu(1_000, 5_000, 2.2, 7);
/// assert_eq!(g.num_edges(), 5_000);
/// // Low-index vertices carry the heavy tail.
/// let hubs = top_degree_vertices(&g, 5);
/// assert!(hubs.iter().all(|&v| v < 100));
/// ```
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> CsrGraph {
    let m = m.min(max_simple_edges(n));
    if n == 0 || m == 0 {
        return crate::GraphBuilder::new().reserve_vertices(n).build();
    }
    let weights = power_law_weights(n, gamma);
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = move |rng: &mut StdRng| -> VertexId {
        let x = rng.gen_range(0.0..total);
        // partition_point returns the first index with cumulative > x.
        cumulative.partition_point(|&c| c <= x).min(n - 1) as VertexId
    };
    collect_unique_edges(n, m, 200, || {
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn weights_are_decreasing() {
        let w = power_law_weights(10, 2.5);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn gamma_at_most_one_panics() {
        power_law_weights(10, 1.0);
    }

    #[test]
    fn exact_edge_count_and_determinism() {
        let g = chung_lu(500, 2000, 2.2, 11);
        assert_eq!(g.num_edges(), 2000);
        assert_eq!(g, chung_lu(500, 2000, 2.2, 11));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = chung_lu(2000, 10_000, 2.0, 3);
        let s = DegreeStats::of(&g).unwrap();
        // Heavy tail: the max degree dwarfs the mean.
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
        // And the hub should be an early vertex.
        let hubs = crate::degree::top_degree_vertices(&g, 1);
        assert!(hubs[0] < 50);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(chung_lu(0, 0, 2.0, 1).num_vertices(), 0);
        assert_eq!(chung_lu(10, 0, 2.0, 1).num_edges(), 0);
    }
}
