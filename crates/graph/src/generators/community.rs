//! Degree-corrected planted-community graphs (LFR-style).
//!
//! Real social and communication networks combine two structural facts the
//! TLP evaluation depends on: heavy-tailed degrees *and* community
//! structure (email departments, discussion cliques, collaboration groups).
//! A plain Chung–Lu graph reproduces only the first; without communities a
//! local partition never tightens, which distorts any heuristic whose
//! behaviour depends on partition modularity. This generator plants `c`
//! communities and draws each edge's endpoints from power-law weights,
//! keeping the edge inside one community with probability `1 - mixing`.

use super::{collect_unique_edges, max_simple_edges, power_law_weights};
use crate::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws from a cumulative weight table by binary search.
struct WeightedSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        WeightedSampler {
            cumulative,
            total: acc,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let x = rng.gen_range(0.0..self.total);
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

/// Generates a power-law graph with `communities` planted groups.
///
/// * `gamma` — degree exponent (> 1), as in [`super::chung_lu`];
/// * `communities` — number of planted groups (vertices are assigned round
///   robin by weight rank, so every group gets its share of hubs);
/// * `mixing` — probability that an edge leaves its community (`0` =
///   perfectly separable, `1` = plain Chung–Lu), typically `0.1..0.4`.
///
/// # Panics
///
/// Panics if `gamma <= 1`, `communities == 0`, or `mixing` is outside
/// `[0, 1]`.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::power_law_community;
///
/// let g = power_law_community(1_000, 5_000, 2.1, 20, 0.2, 7);
/// assert_eq!(g.num_vertices(), 1_000);
/// assert_eq!(g.num_edges(), 5_000);
/// ```
pub fn power_law_community(
    n: usize,
    m: usize,
    gamma: f64,
    communities: usize,
    mixing: f64,
    seed: u64,
) -> CsrGraph {
    assert!(communities > 0, "need at least one community");
    assert!(
        (0.0..=1.0).contains(&mixing),
        "mixing must be in [0, 1], got {mixing}"
    );
    let m = m.min(max_simple_edges(n));
    if n == 0 || m == 0 {
        return crate::GraphBuilder::new().reserve_vertices(n).build();
    }
    let communities = communities.min(n);
    let weights = power_law_weights(n, gamma);

    // Round-robin community assignment over the weight-ranked vertices:
    // community(v) = v % c. Every community receives hubs and leaves alike,
    // mirroring how real departments all have their own heavy users.
    let community_of = |v: usize| v % communities;

    let global = WeightedSampler::new(weights.iter().copied());
    let per_community: Vec<WeightedSampler> = (0..communities)
        .map(|c| {
            WeightedSampler::new(
                weights
                    .iter()
                    .enumerate()
                    .filter(move |(v, _)| v % communities == c)
                    .map(|(_, &w)| w),
            )
        })
        .collect();
    // Local index -> global vertex id for each community.
    let members: Vec<Vec<VertexId>> = (0..communities)
        .map(|c| {
            (0..n)
                .filter(|v| v % communities == c)
                .map(|v| v as VertexId)
                .collect()
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    collect_unique_edges(n, m, 300, || {
        let u = global.sample(&mut rng);
        let v = if rng.gen_bool(1.0 - mixing) {
            let c = community_of(u);
            members[c][per_community[c].sample(&mut rng)] as usize
        } else {
            global.sample(&mut rng)
        };
        (u as VertexId, v as VertexId)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn counts_and_determinism() {
        let g = power_law_community(500, 2500, 2.2, 10, 0.2, 3);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 2500);
        assert_eq!(g, power_law_community(500, 2500, 2.2, 10, 0.2, 3));
    }

    #[test]
    fn keeps_heavy_tail() {
        let g = power_law_community(2000, 10_000, 2.0, 20, 0.2, 5);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn low_mixing_concentrates_edges_inside_communities() {
        let c = 10;
        let count_internal = |mixing: f64| {
            let g = power_law_community(1000, 5000, 2.2, c, mixing, 7);
            g.edges()
                .iter()
                .filter(|e| (e.source() as usize % c) == (e.target() as usize % c))
                .count()
        };
        let tight = count_internal(0.05);
        let loose = count_internal(0.9);
        assert!(
            tight > 2 * loose,
            "communities not planted: tight={tight} loose={loose}"
        );
        // At mixing 0.05, the vast majority of edges should be internal.
        assert!(tight > 3500, "only {tight}/5000 internal at mixing 0.05");
    }

    #[test]
    fn mixing_one_behaves_like_chung_lu() {
        let c = 10;
        let g = power_law_community(1000, 5000, 2.2, c, 1.0, 7);
        let internal = g
            .edges()
            .iter()
            .filter(|e| (e.source() as usize % c) == (e.target() as usize % c))
            .count();
        // Random pairing puts ~1/c of edges inside a community.
        assert!(internal < 5000 / c * 3, "internal = {internal}");
    }

    #[test]
    fn every_community_gets_hubs() {
        let c = 5;
        let g = power_law_community(500, 4000, 2.0, c, 0.2, 11);
        let hubs = crate::degree::top_degree_vertices(&g, 10);
        let mut seen: Vec<usize> = hubs.iter().map(|&v| v as usize % c).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 3, "hubs concentrated in {seen:?}");
    }

    #[test]
    #[should_panic(expected = "mixing must be in")]
    fn bad_mixing_panics() {
        power_law_community(10, 20, 2.0, 2, 1.5, 1);
    }

    #[test]
    #[should_panic(expected = "at least one community")]
    fn zero_communities_panics() {
        power_law_community(10, 20, 2.0, 0, 0.2, 1);
    }
}
