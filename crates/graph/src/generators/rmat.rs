//! R-MAT (recursive matrix) graphs.

use super::{collect_unique_edges, max_simple_edges};
use crate::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the R-MAT recursion.
///
/// Must sum to (approximately) 1; the classic skewed setting is
/// `(0.57, 0.19, 0.19, 0.05)`, available as [`RmatProbabilities::default`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatProbabilities {
    /// Top-left quadrant.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatProbabilities {
    fn default() -> Self {
        RmatProbabilities {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatProbabilities {
    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "R-MAT probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT probabilities must be non-negative"
        );
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and (up to) `m` distinct
/// edges.
///
/// # Panics
///
/// Panics if the probabilities do not sum to 1 or `scale >= 32`.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::{rmat, RmatProbabilities};
///
/// let g = rmat(10, 3_000, RmatProbabilities::default(), 17);
/// assert_eq!(g.num_vertices(), 1024);
/// assert_eq!(g.num_edges(), 3_000);
/// ```
pub fn rmat(scale: u32, m: usize, probs: RmatProbabilities, seed: u64) -> CsrGraph {
    assert!(scale < 32, "scale must be < 32, got {scale}");
    probs.validate();
    let n = 1usize << scale;
    let m = m.min(max_simple_edges(n));
    let mut rng = StdRng::seed_from_u64(seed);
    collect_unique_edges(n, m, 200, || {
        let (mut row, mut col) = (0usize, 0usize);
        for _ in 0..scale {
            row <<= 1;
            col <<= 1;
            let x: f64 = rng.gen();
            if x < probs.a {
                // top-left: no bits set
            } else if x < probs.a + probs.b {
                col |= 1;
            } else if x < probs.a + probs.b + probs.c {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        (row as VertexId, col as VertexId)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn counts_and_determinism() {
        let g = rmat(8, 1000, RmatProbabilities::default(), 3);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 1000);
        assert_eq!(g, rmat(8, 1000, RmatProbabilities::default(), 3));
    }

    #[test]
    fn skewed_quadrants_produce_hubs() {
        let g = rmat(11, 10_000, RmatProbabilities::default(), 5);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.max as f64 > 4.0 * s.mean);
    }

    #[test]
    fn uniform_probabilities_flatten_distribution() {
        let uniform = RmatProbabilities {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g = rmat(11, 10_000, uniform, 5);
        let skewed = rmat(11, 10_000, RmatProbabilities::default(), 5);
        let su = DegreeStats::of(&g).unwrap();
        let ss = DegreeStats::of(&skewed).unwrap();
        assert!(su.max < ss.max);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        rmat(
            4,
            10,
            RmatProbabilities {
                a: 0.9,
                b: 0.3,
                c: 0.1,
                d: 0.1,
            },
            1,
        );
    }
}
