//! Genealogy-style generator for the huapu dataset (G9).
//!
//! The huapu system stores Chinese family trees: vertices are people, edges
//! mostly parent–child links plus occasional cross-family links (marriage,
//! adoption). Structurally that yields a near-tree with average degree about
//! `2m/n ≈ 3.3`, short cross links, and mild degree skew (large families).
//! This generator reproduces those properties:
//!
//! * each new vertex attaches to one "parent" chosen from a recency window
//!   with mild preferential attachment (families grow where recent activity
//!   is), guaranteeing connectivity of the growth phase;
//! * extra edges are added between vertices that are close in arrival order
//!   until the target edge count is met, modeling intra-clan links.

use crate::{CsrGraph, Edge, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a genealogy-style graph with `n` vertices and (up to) `m` edges.
///
/// `m` must be at least `n - 1` (the spanning tree); extra edges above that
/// become local cross links. Deterministic per seed.
///
/// # Panics
///
/// Panics if `n == 0` or `m < n - 1`.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::genealogy;
///
/// let g = genealogy(1_000, 1_630, 23);
/// assert_eq!(g.num_vertices(), 1_000);
/// assert_eq!(g.num_edges(), 1_630);
/// assert!((g.average_degree() - 3.26).abs() < 0.1);
/// ```
pub fn genealogy(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0, "genealogy graph needs at least one vertex");
    assert!(
        m >= n.saturating_sub(1),
        "need at least n - 1 = {} edges for the family tree, got {m}",
        n - 1
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().reserve_vertices(n);
    let mut seen: HashSet<Edge> = HashSet::with_capacity(m * 2);

    // Growth phase: spanning tree with windowed preferential attachment.
    // `window` controls how "deep" family branches get; a small window makes
    // long thin chains, a large one makes broad stars.
    let window = 64usize;
    for v in 1..n as VertexId {
        let lo = (v as usize).saturating_sub(window);
        // Bias towards the newer end of the window: families keep growing
        // where children were just added.
        let span = v as usize - lo;
        let offset = if span <= 1 {
            0
        } else {
            // Square the uniform draw to skew towards `span` (recent).
            let x: f64 = rng.gen();
            ((x * x) * span as f64) as usize
        };
        let parent = (lo + offset).min(v as usize - 1) as VertexId;
        builder.push_edge(v, parent);
        seen.insert(Edge::new(v, parent));
    }

    // Cross-link phase: connect vertices close in arrival order.
    let extra = m - (n - 1);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let budget = extra.saturating_mul(100).max(16);
    while added < extra && attempts < budget {
        attempts += 1;
        let a = rng.gen_range(0..n) as VertexId;
        let radius = 1 + rng.gen_range(0..window.min(n.max(2) - 1));
        let b = if rng.gen_bool(0.5) {
            a.saturating_sub(radius as VertexId)
        } else {
            (a as usize + radius).min(n - 1) as VertexId
        };
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if seen.insert(e) {
            builder.push_edge(a, b);
            added += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::traversal::ConnectedComponents;

    #[test]
    fn counts_and_determinism() {
        let g = genealogy(500, 815, 7);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 815);
        assert_eq!(g, genealogy(500, 815, 7));
    }

    #[test]
    fn growth_phase_yields_connected_graph() {
        let g = genealogy(1000, 1630, 9);
        let cc = ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 1);
    }

    #[test]
    fn low_average_degree_like_huapu() {
        let g = genealogy(2000, 3260, 11);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.mean < 4.0);
        assert!(s.mean > 2.5);
        // Tree-like: no extreme hubs.
        assert!(s.max < 100);
    }

    #[test]
    fn pure_tree_when_m_equals_n_minus_1() {
        let g = genealogy(100, 99, 3);
        assert_eq!(g.num_edges(), 99);
        assert_eq!(ConnectedComponents::find(&g).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least n - 1")]
    fn too_few_edges_panics() {
        genealogy(10, 5, 1);
    }

    #[test]
    fn single_vertex_graph() {
        let g = genealogy(1, 0, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
