//! Uniform random graphs `G(n, m)`.

use super::{collect_unique_edges, max_simple_edges};
use crate::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random simple graph with `n` vertices and (up to) `m`
/// distinct edges.
///
/// If `m` exceeds the number of possible simple edges, the result is capped
/// at the complete graph.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::erdos_renyi;
///
/// let g = erdos_renyi(100, 300, 42);
/// assert_eq!(g.num_vertices(), 100);
/// assert_eq!(g.num_edges(), 300);
/// // Deterministic per seed:
/// assert_eq!(g, erdos_renyi(100, 300, 42));
/// ```
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let m = m.min(max_simple_edges(n));
    let mut rng = StdRng::seed_from_u64(seed);
    collect_unique_edges(n, m, 100, || {
        (
            rng.gen_range(0..n) as VertexId,
            rng.gen_range(0..n) as VertexId,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let g = erdos_renyi(50, 100, 1);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn deterministic_per_seed_and_different_across_seeds() {
        let a = erdos_renyi(30, 60, 5);
        let b = erdos_renyi(30, 60, 5);
        let c = erdos_renyi(30, 60, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn caps_at_complete_graph() {
        let g = erdos_renyi(5, 1000, 2);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn zero_edges_and_zero_vertices() {
        assert_eq!(erdos_renyi(10, 0, 3).num_edges(), 0);
        let g = erdos_renyi(0, 0, 3);
        assert_eq!(g.num_vertices(), 0);
    }
}
