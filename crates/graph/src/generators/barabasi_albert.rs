//! Barabási–Albert preferential-attachment graphs.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph: starting from a small clique, each new
/// vertex attaches `k` edges to existing vertices chosen with probability
/// proportional to their current degree.
///
/// The result has exactly `n` vertices and approximately `k * n` edges
/// (duplicates within one vertex's attachment round are re-drawn, so the
/// count is exact except at pathological densities).
///
/// # Panics
///
/// Panics if `k == 0` or `n < k + 1`.
///
/// # Example
///
/// ```
/// use tlp_graph::generators::barabasi_albert;
///
/// let g = barabasi_albert(200, 3, 9);
/// assert_eq!(g.num_vertices(), 200);
/// assert!(g.num_edges() >= 3 * (200 - 4));
/// ```
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(k > 0, "attachment count k must be positive");
    assert!(n > k, "need at least k + 1 = {} vertices, got {n}", k + 1);
    let mut rng = StdRng::seed_from_u64(seed);

    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // realizes degree-proportional selection.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * k * n);
    let mut builder = GraphBuilder::new().reserve_vertices(n);

    // Seed clique on k + 1 vertices.
    let m0 = k + 1;
    for a in 0..m0 as VertexId {
        for b in (a + 1)..m0 as VertexId {
            builder.push_edge(a, b);
            targets.push(a);
            targets.push(b);
        }
    }

    for v in m0 as VertexId..n as VertexId {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(k);
        let mut guard = 0usize;
        while chosen.len() < k && guard < 64 * k {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.push_edge(v, t);
            targets.push(v);
            targets.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn vertex_and_edge_counts() {
        let n = 300;
        let k = 2;
        let g = barabasi_albert(n, k, 4);
        assert_eq!(g.num_vertices(), n);
        // Clique on k+1 vertices plus k edges per remaining vertex.
        let expected = k * (k + 1) / 2 + k * (n - k - 1);
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 3, 8), barabasi_albert(100, 3, 8));
    }

    #[test]
    fn heavy_tail_emerges() {
        let g = barabasi_albert(2000, 2, 13);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.max as f64 > 4.0 * s.mean);
        assert_eq!(s.min, 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        barabasi_albert(10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least k + 1")]
    fn too_few_vertices_panics() {
        barabasi_albert(3, 3, 1);
    }

    #[test]
    fn graph_is_connected() {
        let g = barabasi_albert(500, 1, 21);
        let cc = crate::traversal::ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 1);
    }
}
