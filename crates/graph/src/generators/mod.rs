//! Seeded synthetic graph generators.
//!
//! These generators stand in for the paper's real-world datasets when the
//! SNAP / huapu files are not on disk (see `DESIGN.md` §4). All generators
//! are deterministic given a seed, produce simple undirected graphs, and aim
//! for an exact vertex count and a close-to-exact edge count.
//!
//! * [`erdos_renyi`] — uniform `G(n, m)` graphs (flat degree distribution).
//! * [`chung_lu`] — power-law expected-degree graphs.
//! * [`power_law_community`] — power-law graphs with planted communities
//!   (degree-corrected, LFR-style), the stand-in family for the SNAP
//!   social/communication networks (G1–G8).
//! * [`barabasi_albert`] — preferential attachment.
//! * [`rmat`] — Kronecker-style recursive matrix graphs.
//! * [`genealogy`] — tree-like, low-average-degree graphs matching the
//!   huapu family-tree dataset (G9).

mod barabasi_albert;
mod chung_lu;
mod community;
mod erdos_renyi;
mod genealogy;
mod rmat;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::{chung_lu, power_law_weights};
pub use community::power_law_community;
pub use erdos_renyi::erdos_renyi;
pub use genealogy::genealogy;
pub use rmat::{rmat, RmatProbabilities};

use crate::{Edge, GraphBuilder, VertexId};
use std::collections::HashSet;

/// Shared rejection-sampling loop: draws candidate edges from `sample` until
/// `target_edges` distinct non-loop edges are collected or the attempt budget
/// (`attempt_factor * target_edges`) is exhausted, then builds the graph with
/// exactly `num_vertices` vertices.
pub(crate) fn collect_unique_edges<F>(
    num_vertices: usize,
    target_edges: usize,
    attempt_factor: usize,
    mut sample: F,
) -> crate::CsrGraph
where
    F: FnMut() -> (VertexId, VertexId),
{
    let mut seen: HashSet<Edge> = HashSet::with_capacity(target_edges * 2);
    let mut builder = GraphBuilder::new().reserve_vertices(num_vertices);
    let budget = target_edges.saturating_mul(attempt_factor).max(16);
    let mut attempts = 0usize;
    while seen.len() < target_edges && attempts < budget {
        attempts += 1;
        let (a, b) = sample();
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if seen.insert(e) {
            builder.push_edge(a, b);
        }
    }
    builder.build()
}

/// The maximum number of edges a simple graph on `n` vertices can have.
pub(crate) fn max_simple_edges(n: usize) -> usize {
    n.saturating_mul(n.saturating_sub(1)) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn collect_unique_edges_hits_target_when_feasible() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = collect_unique_edges(10, 20, 64, || {
            (
                rng.gen_range(0..10) as VertexId,
                rng.gen_range(0..10) as VertexId,
            )
        });
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn collect_unique_edges_respects_budget_on_infeasible_targets() {
        // Only 3 distinct edges exist on 3 vertices; asking for 10 must stop.
        let mut rng = StdRng::seed_from_u64(7);
        let g = collect_unique_edges(3, 10, 8, || {
            (
                rng.gen_range(0..3) as VertexId,
                rng.gen_range(0..3) as VertexId,
            )
        });
        assert!(g.num_edges() <= 3);
    }

    #[test]
    fn max_simple_edges_values() {
        assert_eq!(max_simple_edges(0), 0);
        assert_eq!(max_simple_edges(1), 0);
        assert_eq!(max_simple_edges(4), 6);
    }
}
