//! Compressed-sparse-row representation of an undirected simple graph.

use crate::{Edge, EdgeId, EdgeTable, GraphError, GraphView, VertexId};

/// An immutable undirected simple graph in compressed-sparse-row form.
///
/// Every undirected edge is stored once in a canonical edge table (indexed by
/// [`EdgeId`]) and twice in the adjacency array (once per direction), with
/// both directions carrying the same `EdgeId`. This makes `EdgeId`-indexed
/// partition assignments and residual-edge bookkeeping cheap.
///
/// Construct via [`crate::GraphBuilder`], [`crate::io`], or a generator in
/// [`crate::generators`].
///
/// # Example
///
/// ```
/// use tlp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
/// let mut neighbors: Vec<_> = g.neighbors(0).to_vec();
/// neighbors.sort_unstable();
/// assert_eq!(neighbors, vec![1, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` is the adjacency range of vertex `v`.
    ///
    /// Stored as `u64` so [`CsrGraph::view`] can lend this array directly as
    /// a [`GraphView`] offsets section, byte-compatible with the `.tlpg` v2
    /// on-disk layout.
    offsets: Vec<u64>,
    /// Neighbor endpoint for each directed arc.
    adj_vertex: Vec<VertexId>,
    /// Undirected edge id for each directed arc (parallel to `adj_vertex`).
    adj_edge: Vec<EdgeId>,
    /// Canonical edge table indexed by `EdgeId`.
    edges: Vec<Edge>,
}

impl CsrGraph {
    /// Builds a CSR graph from a deduplicated, loop-free canonical edge list.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`];
    /// `edges` must already be simple (no duplicates, no self-loops), and
    /// every endpoint must be `< num_vertices`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or a self-loop is present.
    /// Duplicate detection is the builder's job and is only debug-asserted
    /// here.
    pub(crate) fn from_canonical_edges(num_vertices: usize, edges: Vec<Edge>) -> Self {
        let mut degrees = vec![0usize; num_vertices];
        for e in &edges {
            assert!(
                (e.target() as usize) < num_vertices,
                "edge {e:?} endpoint out of range (num_vertices = {num_vertices})"
            );
            assert!(!e.is_self_loop(), "self-loop {e:?} passed to CsrGraph");
            degrees[e.source() as usize] += 1;
            degrees[e.target() as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0u64);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc as u64);
        }

        let mut cursor: Vec<usize> = offsets.iter().map(|&o| o as usize).collect();
        let mut adj_vertex = vec![0 as VertexId; acc];
        let mut adj_edge = vec![0 as EdgeId; acc];
        for (id, e) in edges.iter().enumerate() {
            let id = id as EdgeId;
            let (u, v) = e.endpoints();
            let cu = &mut cursor[u as usize];
            adj_vertex[*cu] = v;
            adj_edge[*cu] = id;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            adj_vertex[*cv] = u;
            adj_edge[*cv] = id;
            *cv += 1;
        }

        CsrGraph {
            offsets,
            adj_vertex,
            adj_edge,
            edges,
        }
    }

    /// Builds a CSR graph from an edge list that is already in canonical
    /// form: sorted ascending, deduplicated, loop-free, endpoints `< n`.
    ///
    /// This is the zero-copy ingestion path for trusted on-disk formats
    /// (`tlp-store` binary blocks): unlike [`crate::GraphBuilder`] it never
    /// re-sorts, so reconstruction from a canonical dump is `O(n + m)` and
    /// bit-identical to the graph the dump was written from.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invalid`] if the list is out of order, contains
    /// a duplicate or self-loop, or mentions an endpoint `>= num_vertices`.
    pub fn from_sorted_canonical_edges(
        num_vertices: usize,
        edges: Vec<Edge>,
    ) -> Result<Self, GraphError> {
        for (i, e) in edges.iter().enumerate() {
            if e.is_self_loop() {
                return Err(GraphError::Invalid(format!("self-loop {e:?} at index {i}")));
            }
            if e.target() as usize >= num_vertices {
                return Err(GraphError::Invalid(format!(
                    "edge {e:?} endpoint out of range (num_vertices = {num_vertices})"
                )));
            }
            if i > 0 && edges[i - 1] >= *e {
                return Err(GraphError::Invalid(format!(
                    "edge list not strictly sorted at index {i}: {:?} then {e:?}",
                    edges[i - 1]
                )));
            }
        }
        Ok(CsrGraph::from_canonical_edges(num_vertices, edges))
    }

    /// Number of vertices `n = |V|`, including isolated ones.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbors of `v` as a slice (one entry per incident edge).
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj_vertex[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates over `(neighbor, edge_id)` pairs incident to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let v = v as usize;
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        self.adj_vertex[range.clone()]
            .iter()
            .copied()
            .zip(self.adj_edge[range].iter().copied())
    }

    /// The canonical [`Edge`] for an [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// All canonical edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Average degree `2m / n`, or `0.0` for a vertex-free graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Whether vertices `a` and `b` are adjacent.
    ///
    /// Neighbor slices are sorted ascending by construction, so this
    /// binary-searches the lower-degree endpoint's slice:
    /// `O(log min_degree)` instead of the former linear scan.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.view().has_edge(a, b)
    }

    /// Looks up the [`EdgeId`] connecting `a` and `b`, if any, in
    /// `O(log min_degree)` via binary search of the sorted neighbor slice.
    pub fn edge_id(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        self.view().edge_id(a, b)
    }

    /// A borrowed [`GraphView`] over this graph's CSR arrays.
    ///
    /// Construction is O(1) — the view borrows the existing sections.
    #[inline]
    pub fn view(&self) -> GraphView<'_> {
        GraphView::from_sections_trusted(
            &self.offsets,
            &self.adj_vertex,
            &self.adj_edge,
            EdgeTable::Structs(&self.edges),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> crate::CsrGraph {
        // 0-1, 1-2, 2-0, 2-3
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .build()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "{w} missing backlink to {v}");
            }
        }
    }

    #[test]
    fn incident_edge_ids_match_edge_table() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            for (w, id) in g.incident(v) {
                let e = g.edge(id);
                assert!(e.contains(v) && e.contains(w));
                assert_eq!(e.other(v), w);
            }
        }
    }

    #[test]
    fn each_edge_id_appears_twice_in_adjacency() {
        let g = triangle_plus_tail();
        let mut count = vec![0usize; g.num_edges()];
        for v in g.vertices() {
            for (_, id) in g.incident(v) {
                count[id as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    fn has_edge_and_edge_id() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        let id = g.edge_id(2, 3).expect("edge 2-3 exists");
        assert_eq!(g.edge(id).endpoints(), (2, 3));
        assert_eq!(g.edge_id(0, 3), None);
    }

    #[test]
    fn average_degree() {
        let g = triangle_plus_tail();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn from_sorted_canonical_edges_round_trips_builder_output() {
        let g = triangle_plus_tail();
        let rebuilt =
            crate::CsrGraph::from_sorted_canonical_edges(g.num_vertices(), g.edges().to_vec())
                .unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn from_sorted_canonical_edges_rejects_bad_input() {
        use crate::Edge;
        let sorted_dup = vec![Edge::new(0, 1), Edge::new(0, 1)];
        assert!(crate::CsrGraph::from_sorted_canonical_edges(2, sorted_dup).is_err());
        let unsorted = vec![Edge::new(1, 2), Edge::new(0, 1)];
        assert!(crate::CsrGraph::from_sorted_canonical_edges(3, unsorted).is_err());
        let loop_edge = vec![Edge::new(1, 1)];
        assert!(crate::CsrGraph::from_sorted_canonical_edges(2, loop_edge).is_err());
        let out_of_range = vec![Edge::new(0, 9)];
        assert!(crate::CsrGraph::from_sorted_canonical_edges(2, out_of_range).is_err());
    }

    #[test]
    fn isolated_vertices_are_retained() {
        let g = GraphBuilder::new()
            .reserve_vertices(10)
            .add_edge(0, 1)
            .build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
        assert!(g.neighbors(9).is_empty());
    }
}
