//! Breadth-first traversal and connected components.
//!
//! The paper notes (§III-E) that local partitioning visits the graph in BFS
//! order as each partition expands; these helpers are also used by tests and
//! by generators to validate connectivity properties.

use crate::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// Returns the vertices reachable from `start` in BFS order (including
/// `start`).
///
/// # Panics
///
/// Panics if `start >= graph.num_vertices()`.
///
/// # Example
///
/// ```
/// use tlp_graph::{GraphBuilder, traversal::bfs_order};
///
/// let g = GraphBuilder::new().add_edges([(0, 1), (1, 2), (3, 4)]).build();
/// assert_eq!(bfs_order(&g, 0), vec![0, 1, 2]);
/// ```
pub fn bfs_order(graph: &CsrGraph, start: VertexId) -> Vec<VertexId> {
    assert!(
        (start as usize) < graph.num_vertices(),
        "start out of range"
    );
    let mut visited = vec![false; graph.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in graph.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// BFS distances from `start`; unreachable vertices get `None`.
///
/// # Panics
///
/// Panics if `start >= graph.num_vertices()`.
pub fn bfs_distances(graph: &CsrGraph, start: VertexId) -> Vec<Option<u32>> {
    assert!(
        (start as usize) < graph.num_vertices(),
        "start out of range"
    );
    let mut dist: Vec<Option<u32>> = vec![None; graph.num_vertices()];
    let mut queue = VecDeque::new();
    dist[start as usize] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize].expect("queued vertices have distances");
        for &w in graph.neighbors(v) {
            if dist[w as usize].is_none() {
                dist[w as usize] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A decomposition of a graph into connected components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectedComponents {
    /// `component[v]` is the component index of vertex `v`.
    component: Vec<u32>,
    /// Number of vertices in each component.
    sizes: Vec<usize>,
}

impl ConnectedComponents {
    /// Computes connected components with repeated BFS.
    pub fn find(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut component = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut queue = VecDeque::new();
        for s in graph.vertices() {
            if component[s as usize] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            sizes.push(0);
            component[s as usize] = id;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                sizes[id as usize] += 1;
                for &w in graph.neighbors(v) {
                    if component[w as usize] == u32::MAX {
                        component[w as usize] = id;
                        queue.push_back(w);
                    }
                }
            }
        }
        ConnectedComponents { component, sizes }
    }

    /// Number of connected components (0 for the empty graph).
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component index of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.component[v as usize]
    }

    /// Whether `a` and `b` are in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.component_of(a) == self.component_of(b)
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (3, 4)])
            .build()
    }

    #[test]
    fn bfs_visits_each_reachable_vertex_once() {
        let g = two_components();
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_distances_layer_by_layer() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn unreachable_vertices_have_no_distance() {
        let g = two_components();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], None);
        assert_eq!(d[4], None);
    }

    #[test]
    fn components_are_found() {
        let g = two_components();
        let cc = ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 2);
        assert!(cc.same_component(0, 2));
        assert!(!cc.same_component(0, 3));
        let mut sizes = cc.sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert_eq!(cc.largest(), 3);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = GraphBuilder::new()
            .reserve_vertices(3)
            .add_edge(0, 1)
            .build();
        let cc = ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.largest(), 2);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::new().build();
        let cc = ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 0);
        assert_eq!(cc.largest(), 0);
    }
}
