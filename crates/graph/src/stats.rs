//! Whole-graph summary statistics (Table III style).

use crate::degree::DegreeStats;
use crate::traversal::ConnectedComponents;
use crate::CsrGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Table-III-style summary of one graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|`, including isolated vertices.
    pub num_vertices: usize,
    /// `|E|` after dedup / self-loop removal.
    pub num_edges: usize,
    /// `|V| + |E|` (the paper's size column).
    pub total_size: usize,
    /// Mean degree `2m/n`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components.
    pub components: usize,
    /// Vertices in the largest component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes all statistics in one pass over the graph.
    pub fn of(graph: &CsrGraph) -> Self {
        let degree = DegreeStats::of(graph);
        let cc = ConnectedComponents::find(graph);
        GraphStats {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            total_size: graph.num_vertices() + graph.num_edges(),
            average_degree: graph.average_degree(),
            max_degree: degree.map_or(0, |d| d.max),
            components: cc.count(),
            largest_component: cc.largest(),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |V|+|E|={} avg_deg={:.2} max_deg={} components={}",
            self.num_vertices,
            self.num_edges,
            self.total_size,
            self.average_degree,
            self.max_degree,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (3, 4)])
            .build();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.total_size, 8);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert!(format!("{s}").contains("|V|=5"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&GraphBuilder::new().build());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.components, 0);
    }
}
