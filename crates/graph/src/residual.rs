//! Mutable "unallocated edges" view over a [`CsrGraph`].
//!
//! Local partitioning (Fig. 3 of the paper) consumes the graph one partition
//! at a time: once an edge is allocated to a partition it is removed from
//! consideration for later rounds. [`ResidualGraph`] tracks that state with a
//! per-edge bitmap and per-vertex residual degrees, so the algorithms can ask
//! "which of `v`'s edges are still free?" without rebuilding anything.

use crate::{EdgeId, GraphView, VertexId};

/// The sub-multigraph of edges not yet allocated to any partition.
///
/// # Example
///
/// ```
/// use tlp_graph::{GraphBuilder, ResidualGraph};
///
/// let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
/// let mut r = ResidualGraph::new(&g);
/// assert_eq!(r.remaining_edges(), 2);
/// let id = g.edge_id(0, 1).expect("exists");
/// r.allocate(id);
/// assert_eq!(r.remaining_edges(), 1);
/// assert_eq!(r.residual_degree(1), 1);
/// assert!(!r.is_free(id));
/// ```
#[derive(Clone, Debug)]
pub struct ResidualGraph<'g> {
    graph: GraphView<'g>,
    free: Vec<bool>,
    residual_degree: Vec<u32>,
    remaining: usize,
}

impl<'g> ResidualGraph<'g> {
    /// Creates a residual view in which every edge of `graph` is free.
    ///
    /// Accepts anything convertible to a [`GraphView`] — `&CsrGraph` or an
    /// existing view — so the residual state can sit directly on top of a
    /// shared arena without an owned copy.
    pub fn new(graph: impl Into<GraphView<'g>>) -> Self {
        let graph = graph.into();
        let residual_degree = graph.vertices().map(|v| graph.degree(v) as u32).collect();
        ResidualGraph {
            graph,
            free: vec![true; graph.num_edges()],
            residual_degree,
            remaining: graph.num_edges(),
        }
    }

    /// The underlying immutable graph view.
    pub fn graph(&self) -> GraphView<'g> {
        self.graph
    }

    /// Number of edges not yet allocated.
    pub fn remaining_edges(&self) -> usize {
        self.remaining
    }

    /// Whether every edge has been allocated.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Whether edge `e` is still unallocated.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges`.
    pub fn is_free(&self, e: EdgeId) -> bool {
        self.free[e as usize]
    }

    /// Number of unallocated edges incident to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn residual_degree(&self, v: VertexId) -> usize {
        self.residual_degree[v as usize] as usize
    }

    /// Marks edge `e` allocated and updates both endpoints' residual degrees.
    ///
    /// Allocating an already-allocated edge is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or already allocated.
    pub fn allocate(&mut self, e: EdgeId) {
        let slot = &mut self.free[e as usize];
        assert!(*slot, "edge {e} allocated twice");
        *slot = false;
        self.remaining -= 1;
        let edge = self.graph.edge(e);
        self.residual_degree[edge.source() as usize] -= 1;
        self.residual_degree[edge.target() as usize] -= 1;
    }

    /// Iterates over `(neighbor, edge_id)` pairs of `v` whose edge is still
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn residual_incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.graph
            .incident(v)
            .filter(move |&(_, id)| self.free[id as usize])
    }

    /// Finds any vertex with at least one residual edge at or after `hint`
    /// (wrapping), or `None` if the residual graph is empty. Useful for
    /// cheap random reseeding: pass a random `hint` and take the hit.
    pub fn any_active_vertex_from(&self, hint: VertexId) -> Option<VertexId> {
        let n = self.graph.num_vertices();
        if n == 0 || self.remaining == 0 {
            return None;
        }
        let start = hint as usize % n;
        (start..n)
            .chain(0..start)
            .map(|v| v as VertexId)
            .find(|&v| self.residual_degree[v as usize] > 0)
    }

    /// Resets every edge to free.
    pub fn reset(&mut self) {
        self.free.fill(true);
        for v in self.graph.vertices() {
            self.residual_degree[v as usize] = self.graph.degree(v) as u32;
        }
        self.remaining = self.graph.num_edges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, GraphBuilder};

    fn path4() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build()
    }

    #[test]
    fn fresh_view_has_all_edges_free() {
        let g = path4();
        let r = ResidualGraph::new(&g);
        assert_eq!(r.remaining_edges(), 3);
        assert!(!r.is_exhausted());
        for e in 0..g.num_edges() as EdgeId {
            assert!(r.is_free(e));
        }
        assert_eq!(r.residual_degree(1), 2);
    }

    #[test]
    fn allocate_updates_degrees_and_iteration() {
        let g = path4();
        let mut r = ResidualGraph::new(&g);
        let id = g.edge_id(1, 2).unwrap();
        r.allocate(id);
        assert_eq!(r.remaining_edges(), 2);
        assert_eq!(r.residual_degree(1), 1);
        assert_eq!(r.residual_degree(2), 1);
        let nbrs: Vec<_> = r.residual_incident(1).map(|(w, _)| w).collect();
        assert_eq!(nbrs, vec![0]);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_allocation_panics() {
        let g = path4();
        let mut r = ResidualGraph::new(&g);
        r.allocate(0);
        r.allocate(0);
    }

    #[test]
    fn exhaustion_and_reset() {
        let g = path4();
        let mut r = ResidualGraph::new(&g);
        for e in 0..g.num_edges() as EdgeId {
            r.allocate(e);
        }
        assert!(r.is_exhausted());
        assert_eq!(r.any_active_vertex_from(0), None);
        r.reset();
        assert_eq!(r.remaining_edges(), 3);
        assert!(r.is_free(0));
    }

    #[test]
    fn active_vertex_search_wraps() {
        let g = path4();
        let mut r = ResidualGraph::new(&g);
        // Leave only edge (0,1) free; hint beyond it must wrap around.
        r.allocate(g.edge_id(1, 2).unwrap());
        r.allocate(g.edge_id(2, 3).unwrap());
        let v = r.any_active_vertex_from(2).unwrap();
        assert!(v == 0 || v == 1);
        assert!(r.residual_degree(v) > 0);
    }

    #[test]
    fn hint_out_of_range_is_wrapped_not_panicking() {
        let g = path4();
        let r = ResidualGraph::new(&g);
        assert!(r.any_active_vertex_from(1_000_000).is_some());
    }
}
