//! Fundamental identifier and edge types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex, dense in `0..num_vertices`.
pub type VertexId = u32;

/// Identifier of an undirected edge, dense in `0..num_edges`.
///
/// Both directed arcs of an undirected edge share one `EdgeId`, which is what
/// lets an edge partition be stored as a flat `Vec` indexed by `EdgeId`.
pub type EdgeId = u32;

/// An undirected edge in canonical form (`u <= v`).
///
/// `Edge::new` normalizes endpoint order, so two edges constructed from the
/// endpoints in either order compare equal:
///
/// ```
/// use tlp_graph::Edge;
/// assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates a canonical undirected edge between `a` and `b`.
    ///
    /// The smaller endpoint becomes [`Edge::source`]. Self-loops are
    /// representable here; [`crate::GraphBuilder`] is responsible for
    /// dropping them from simple graphs.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    pub fn source(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    pub fn target(self) -> VertexId {
        self.v
    }

    /// Both endpoints as a `(source, target)` pair with `source <= target`.
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Whether both endpoints coincide.
    pub fn is_self_loop(self) -> bool {
        self.u == self.v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}");
        }
    }

    /// Whether `x` is one of the two endpoints.
    pub fn contains(self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.u, self.v)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonicalized() {
        let e = Edge::new(5, 2);
        assert_eq!(e.source(), 2);
        assert_eq!(e.target(), 5);
        assert_eq!(e.endpoints(), (2, 5));
    }

    #[test]
    fn edges_from_either_order_are_equal() {
        assert_eq!(Edge::new(1, 9), Edge::new(9, 1));
        assert_eq!(Edge::from((9, 1)), Edge::new(1, 9));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(3, 7);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        Edge::new(3, 7).other(4);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(4, 4).is_self_loop());
        assert!(!Edge::new(4, 5).is_self_loop());
    }

    #[test]
    fn contains_endpoint() {
        let e = Edge::new(0, 2);
        assert!(e.contains(0));
        assert!(e.contains(2));
        assert!(!e.contains(1));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let e = Edge::new(1, 2);
        assert_eq!(format!("{e}"), "1-2");
        assert_eq!(format!("{e:?}"), "(1, 2)");
    }
}
