//! Property-based tests of the graph substrate's invariants.

use proptest::prelude::*;
use tlp_graph::generators::{chung_lu, erdos_renyi, genealogy, power_law_community};
use tlp_graph::traversal::{bfs_distances, bfs_order, ConnectedComponents};
use tlp_graph::{CsrGraph, GraphBuilder, ResidualGraph};

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    (2..max_v).prop_flat_map(move |n| prop::collection::vec((0..n, 0..n), 0..max_e))
}

fn build(edges: &[(u32, u32)]) -> CsrGraph {
    GraphBuilder::new().add_edges(edges.iter().copied()).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR structural invariants over arbitrary (dirty) edge lists.
    #[test]
    fn csr_invariants(edges in arb_edges(80, 300)) {
        let g = build(&edges);
        // Adjacency symmetry and degree consistency.
        let mut total_degree = 0usize;
        for v in g.vertices() {
            total_degree += g.degree(v);
            for &w in g.neighbors(v) {
                prop_assert_ne!(v, w, "self-loop survived");
                prop_assert!(g.neighbors(w).contains(&v));
            }
            // Sorted adjacency (relied upon by Stage I intersections).
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated adjacency");
        }
        prop_assert_eq!(total_degree, 2 * g.num_edges());
        // Edge table and adjacency agree.
        for (id, e) in g.edges().iter().enumerate() {
            prop_assert_eq!(g.edge_id(e.source(), e.target()), Some(id as u32));
        }
    }

    /// Dedup: building from the edge list of a built graph is idempotent.
    #[test]
    fn build_is_idempotent(edges in arb_edges(60, 200)) {
        let g1 = build(&edges);
        let g2 = GraphBuilder::new()
            .reserve_vertices(g1.num_vertices())
            .add_edges(g1.edges().iter().map(|e| e.endpoints()))
            .build();
        prop_assert_eq!(g1, g2);
    }

    /// I/O roundtrip preserves label-independent structure.
    #[test]
    fn io_roundtrip_preserves_structure(edges in arb_edges(60, 200)) {
        let g = build(&edges);
        let mut buf = Vec::new();
        tlp_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let r = tlp_graph::io::read_edge_list(buf.as_slice()).unwrap().graph;
        prop_assert_eq!(r.num_edges(), g.num_edges());
        let mut dg: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        let mut dr: Vec<usize> = r.vertices().map(|v| r.degree(v)).filter(|&d| d > 0).collect();
        dg.sort_unstable();
        dr.sort_unstable();
        prop_assert_eq!(dg, dr);
    }

    /// Residual bookkeeping stays consistent under arbitrary allocation
    /// orders.
    #[test]
    fn residual_degrees_stay_consistent(edges in arb_edges(40, 120), order_seed in 0u64..16) {
        let g = build(&edges);
        let mut residual = ResidualGraph::new(&g);
        let mut ids: Vec<u32> = (0..g.num_edges() as u32).collect();
        // Cheap deterministic shuffle.
        let n = ids.len();
        for i in 0..n {
            let j = (order_seed as usize + i * 7919) % n.max(1);
            ids.swap(i, j);
        }
        for (step, &e) in ids.iter().enumerate() {
            residual.allocate(e);
            prop_assert_eq!(residual.remaining_edges(), g.num_edges() - step - 1);
        }
        for v in g.vertices() {
            prop_assert_eq!(residual.residual_degree(v), 0);
            prop_assert_eq!(residual.residual_incident(v).count(), 0);
        }
        prop_assert!(residual.is_exhausted());
    }

    /// BFS visits exactly the component of the start vertex, and distances
    /// respect the triangle property along edges.
    #[test]
    fn bfs_agrees_with_components(edges in arb_edges(50, 150)) {
        let g = build(&edges);
        if g.num_vertices() == 0 { return Ok(()); }
        let cc = ConnectedComponents::find(&g);
        let start = 0u32;
        let order = bfs_order(&g, start);
        let reached: std::collections::HashSet<u32> = order.iter().copied().collect();
        prop_assert_eq!(order.len(), reached.len(), "BFS revisited a vertex");
        for v in g.vertices() {
            prop_assert_eq!(reached.contains(&v), cc.same_component(start, v));
        }
        let dist = bfs_distances(&g, start);
        for e in g.edges() {
            if let (Some(a), Some(b)) = (dist[e.source() as usize], dist[e.target() as usize]) {
                prop_assert!(a.abs_diff(b) <= 1, "edge spans distance gap > 1");
            }
        }
    }
}

/// Generator contracts hold across a seeded grid (cheaper than proptest for
/// expensive generators, still broad).
#[test]
fn generator_contracts() {
    for seed in 0..5u64 {
        let er = erdos_renyi(120, 400, seed);
        assert_eq!((er.num_vertices(), er.num_edges()), (120, 400));

        let cl = chung_lu(150, 600, 2.2, seed);
        assert_eq!((cl.num_vertices(), cl.num_edges()), (150, 600));

        let pc = power_law_community(150, 600, 2.2, 6, 0.25, seed);
        assert_eq!((pc.num_vertices(), pc.num_edges()), (150, 600));

        let ge = genealogy(100, 163, seed);
        assert_eq!((ge.num_vertices(), ge.num_edges()), (100, 163));
        assert_eq!(ConnectedComponents::find(&ge).count(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary-search `has_edge`/`edge_id` agree with the old linear
    /// scan over the adjacency slice on every vertex pair.
    #[test]
    fn adjacency_lookup_matches_linear_scan(edges in arb_edges(60, 240)) {
        let g = build(&edges);
        for a in g.vertices() {
            for b in g.vertices() {
                let scan_hit = g.neighbors(a).contains(&b);
                let scan_id = g
                    .incident(a)
                    .find(|&(w, _)| w == b)
                    .map(|(_, id)| id);
                prop_assert_eq!(g.has_edge(a, b), scan_hit, "has_edge({}, {})", a, b);
                prop_assert_eq!(g.edge_id(a, b), scan_id, "edge_id({}, {})", a, b);
                let v = g.view();
                prop_assert_eq!(v.has_edge(a, b), scan_hit);
                prop_assert_eq!(v.edge_id(a, b), scan_id);
            }
        }
    }

    /// A `GraphView` over a `CsrGraph` mirrors every read accessor.
    #[test]
    fn view_mirrors_csr(edges in arb_edges(60, 240)) {
        let g = build(&edges);
        let v = g.view();
        prop_assert_eq!(v.num_vertices(), g.num_vertices());
        prop_assert_eq!(v.num_edges(), g.num_edges());
        for x in g.vertices() {
            prop_assert_eq!(v.degree(x), g.degree(x));
            prop_assert_eq!(v.neighbors(x), g.neighbors(x));
        }
        prop_assert_eq!(v.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
        prop_assert_eq!(&v.to_csr_graph(), &g);
    }
}
