//! Property-based tests of the intersection-kernel layer.
//!
//! The engine's bit-identity guarantee rests on every kernel returning the
//! exact same count for the same inputs; these properties pin that over
//! arbitrary sorted duplicate-free slices (the shape of CSR adjacency),
//! plus the set-algebra invariants any intersection must satisfy.

use proptest::prelude::*;
use tlp_graph::intersect::{
    galloping_intersection_size, merge_intersection_size, sorted_intersection_size,
    IntersectionKernel,
};
use tlp_graph::{GraphBuilder, VertexId};

/// A sorted, duplicate-free vertex slice — the invariant CSR adjacency
/// guarantees (asserted by `properties.rs`). Skewed lengths are common so
/// the galloping crossover is exercised in both directions.
fn arb_sorted_slice(max_len: usize) -> impl Strategy<Value = Vec<VertexId>> {
    prop::collection::vec(0u32..500, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn naive(a: &[VertexId], b: &[VertexId]) -> usize {
    a.iter().filter(|x| b.contains(x)).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All three kernels agree with the adaptive dispatcher (and the naive
    /// definition) on arbitrary sorted slices, in both argument orders.
    #[test]
    fn all_kernels_agree(a in arb_sorted_slice(60), b in arb_sorted_slice(600)) {
        let expected = naive(&a, &b);
        let mut kernel = IntersectionKernel::new(0);
        for (x, y) in [(&a, &b), (&b, &a)] {
            prop_assert_eq!(sorted_intersection_size(x, y), expected);
            prop_assert_eq!(merge_intersection_size(x, y), expected);
            prop_assert_eq!(galloping_intersection_size(x, y), expected);
            prop_assert_eq!(kernel.bitset_intersection_size(x, y), expected);
        }
    }

    /// Empty operand: the intersection with nothing is empty.
    #[test]
    fn empty_side_yields_zero(a in arb_sorted_slice(200)) {
        let empty: Vec<VertexId> = Vec::new();
        let mut kernel = IntersectionKernel::new(0);
        prop_assert_eq!(sorted_intersection_size(&a, &empty), 0);
        prop_assert_eq!(merge_intersection_size(&empty, &a), 0);
        prop_assert_eq!(galloping_intersection_size(&a, &empty), 0);
        prop_assert_eq!(kernel.bitset_intersection_size(&empty, &a), 0);
    }

    /// Identical operands: the intersection is the whole (duplicate-free)
    /// slice.
    #[test]
    fn self_intersection_is_identity(a in arb_sorted_slice(200)) {
        let mut kernel = IntersectionKernel::new(0);
        prop_assert_eq!(sorted_intersection_size(&a, &a), a.len());
        prop_assert_eq!(merge_intersection_size(&a, &a), a.len());
        prop_assert_eq!(galloping_intersection_size(&a, &a), a.len());
        prop_assert_eq!(kernel.bitset_intersection_size(&a, &a), a.len());
    }

    /// Disjoint operands (built by offsetting `b` past `a`'s range) yield
    /// zero.
    #[test]
    fn disjoint_slices_yield_zero(a in arb_sorted_slice(100), b in arb_sorted_slice(100)) {
        let offset = a.last().map_or(0, |&x| x + 1);
        let shifted: Vec<VertexId> = b.iter().map(|&x| x + offset).collect();
        let mut kernel = IntersectionKernel::new(0);
        prop_assert_eq!(sorted_intersection_size(&a, &shifted), 0);
        prop_assert_eq!(merge_intersection_size(&a, &shifted), 0);
        prop_assert_eq!(galloping_intersection_size(&a, &shifted), 0);
        prop_assert_eq!(kernel.bitset_intersection_size(&a, &shifted), 0);
    }

    /// Bounds: the count never exceeds either operand's length, and is
    /// symmetric in its arguments.
    #[test]
    fn count_is_bounded_and_symmetric(a in arb_sorted_slice(150), b in arb_sorted_slice(150)) {
        let c = sorted_intersection_size(&a, &b);
        prop_assert!(c <= a.len() && c <= b.len());
        prop_assert_eq!(sorted_intersection_size(&b, &a), c);
    }

    /// The loaded-kernel path (marks + cache) agrees with the dispatcher on
    /// graphs built from arbitrary edge lists, for every vertex pair class,
    /// and the cache returns the same count it stored.
    #[test]
    fn loaded_kernel_matches_dispatcher(
        edges in prop::collection::vec((0u32..40, 0u32..40), 1..150),
        loaded in 0u32..40,
    ) {
        let g = GraphBuilder::new().add_edges(edges.iter().copied()).build();
        let loaded = loaded % g.num_vertices() as u32;
        let mut kernel = IntersectionKernel::new(g.num_vertices());
        kernel.load(&g, loaded);
        for u in g.vertices() {
            let expected = sorted_intersection_size(g.neighbors(u), g.neighbors(loaded));
            prop_assert_eq!(kernel.count_with_loaded(&g, u), expected);
            prop_assert_eq!(kernel.cached_with_loaded(u), Some(expected));
            // Second query must come from the cache with the same value.
            prop_assert_eq!(kernel.count_with_loaded(&g, u), expected);
        }
    }
}
