//! Streaming orders for edges and vertices.
//!
//! Streaming partitioners are sensitive to arrival order; these helpers
//! produce the standard orders used in the literature (natural file order,
//! random permutation, BFS, DFS) deterministically.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tlp_graph::{EdgeId, GraphView, VertexId};

/// Arrival order of an edge stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Edge-id order (the canonical sorted order of `CsrGraph`).
    Natural,
    /// Seeded uniform shuffle.
    Random(u64),
    /// Edges in order of BFS discovery of their earlier endpoint.
    Bfs,
}

/// Arrival order of a vertex stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexOrder {
    /// `0..n`.
    Natural,
    /// Seeded uniform shuffle.
    Random(u64),
    /// BFS from vertex 0, restarting per component (the order recommended
    /// for LDG/FENNEL in Stanton & Kliot's evaluation).
    Bfs,
    /// DFS from vertex 0, restarting per component.
    Dfs,
}

/// Materializes an edge arrival order.
///
/// # Example
///
/// ```
/// use tlp_baselines::{edge_order, EdgeOrder};
/// use tlp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().add_edges([(0, 1), (1, 2), (2, 3)]).build();
/// assert_eq!(edge_order(&g, EdgeOrder::Natural), vec![0, 1, 2]);
/// let shuffled = edge_order(&g, EdgeOrder::Random(7));
/// let mut sorted = shuffled.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![0, 1, 2]);
/// ```
pub fn edge_order<'a>(graph: impl Into<GraphView<'a>>, order: EdgeOrder) -> Vec<EdgeId> {
    let graph = graph.into();
    let m = graph.num_edges() as EdgeId;
    match order {
        EdgeOrder::Natural => (0..m).collect(),
        EdgeOrder::Random(seed) => {
            let mut ids: Vec<EdgeId> = (0..m).collect();
            ids.shuffle(&mut StdRng::seed_from_u64(seed));
            ids
        }
        EdgeOrder::Bfs => {
            let vorder = vertex_order(graph, VertexOrder::Bfs);
            let mut rank = vec![u32::MAX; graph.num_vertices()];
            for (i, &v) in vorder.iter().enumerate() {
                rank[v as usize] = i as u32;
            }
            let mut ids: Vec<EdgeId> = (0..m).collect();
            ids.sort_by_key(|&e| {
                let edge = graph.edge(e);
                let (a, b) = (rank[edge.source() as usize], rank[edge.target() as usize]);
                (a.min(b), a.max(b), e)
            });
            ids
        }
    }
}

/// Materializes a vertex arrival order.
pub fn vertex_order<'a>(graph: impl Into<GraphView<'a>>, order: VertexOrder) -> Vec<VertexId> {
    let graph = graph.into();
    let n = graph.num_vertices();
    match order {
        VertexOrder::Natural => (0..n as VertexId).collect(),
        VertexOrder::Random(seed) => {
            let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
            ids.shuffle(&mut StdRng::seed_from_u64(seed));
            ids
        }
        VertexOrder::Bfs => {
            let mut visited = vec![false; n];
            let mut out = Vec::with_capacity(n);
            let mut queue = std::collections::VecDeque::new();
            for s in 0..n as VertexId {
                if visited[s as usize] {
                    continue;
                }
                visited[s as usize] = true;
                queue.push_back(s);
                while let Some(v) = queue.pop_front() {
                    out.push(v);
                    for &w in graph.neighbors(v) {
                        if !visited[w as usize] {
                            visited[w as usize] = true;
                            queue.push_back(w);
                        }
                    }
                }
            }
            out
        }
        VertexOrder::Dfs => {
            let mut visited = vec![false; n];
            let mut out = Vec::with_capacity(n);
            let mut stack = Vec::new();
            for s in 0..n as VertexId {
                if visited[s as usize] {
                    continue;
                }
                stack.push(s);
                visited[s as usize] = true;
                while let Some(v) = stack.pop() {
                    out.push(v);
                    for &w in graph.neighbors(v) {
                        if !visited[w as usize] {
                            visited[w as usize] = true;
                            stack.push(w);
                        }
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::{CsrGraph, GraphBuilder};

    fn graph() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (4, 5)])
            .build()
    }

    #[test]
    fn natural_orders() {
        let g = graph();
        assert_eq!(edge_order(&g, EdgeOrder::Natural), vec![0, 1, 2, 3]);
        assert_eq!(
            vertex_order(&g, VertexOrder::Natural),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn random_orders_are_permutations_and_seeded() {
        let g = graph();
        let a = edge_order(&g, EdgeOrder::Random(1));
        let b = edge_order(&g, EdgeOrder::Random(1));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        let v = vertex_order(&g, VertexOrder::Random(2));
        let mut vs = v.clone();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_vertex_order_covers_all_components() {
        let g = graph();
        let order = vertex_order(&g, VertexOrder::Bfs);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
        // Component {4,5} appears after component {0..3}.
        let pos4 = order.iter().position(|&v| v == 4).unwrap();
        assert!(pos4 >= 4);
    }

    #[test]
    fn dfs_vertex_order_is_complete() {
        let g = graph();
        let mut order = vertex_order(&g, VertexOrder::Dfs);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_edge_order_groups_by_discovery() {
        let g = graph();
        let order = edge_order(&g, EdgeOrder::Bfs);
        assert_eq!(order.len(), 4);
        // Edge (0,1) must come first: both endpoints discovered earliest.
        assert_eq!(g.edge(order[0]).endpoints(), (0, 1));
    }
}
