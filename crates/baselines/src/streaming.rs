//! Out-of-core drivers for the streaming baselines.
//!
//! Each streaming heuristic is factored into a [`StreamingPlacer`] — the
//! per-edge placement state machine — so the same decision code runs in two
//! harnesses:
//!
//! * the materialized `EdgePartitioner::partition` paths (which now pump a
//!   [`CsrEdgeStream`](tlp_store::CsrEdgeStream) in the requested arrival order and scatter the
//!   decisions back to edge ids), and
//! * [`partition_stream`], which pumps any [`EdgeStream`] — including
//!   [`tlp_store::BinaryEdgeStream`] reading a `.tlpg` file chunk by chunk —
//!   holding at most `budget` edges in memory.
//!
//! Because both paths execute the identical placer over the identical
//! arrival sequence, a streamed run is bit-identical to the materialized
//! one at any buffer budget.

use crate::util::{least_loaded, splitmix64, PartitionSet};
use tlp_core::{EdgePartition, PartitionError, PartitionId};
use tlp_graph::{GraphView, VertexId};
use tlp_store::{for_each_chunk, EdgeStream, StoreError, StreamMeta};

/// Checks that `partition` covers exactly the edges of `graph`, the shared
/// precondition of the `seeded_from` constructors.
fn check_seeding_pair(graph: GraphView<'_>, partition: &EdgePartition) -> Result<(), PartitionError> {
    if partition.num_edges() != graph.num_edges() {
        return Err(PartitionError::InvalidAssignment(format!(
            "partition covers {} edges but the seeding graph has {}",
            partition.num_edges(),
            graph.num_edges()
        )));
    }
    Ok(())
}

/// Per-edge placement state of a streaming heuristic.
///
/// `place` is called once per arriving edge, in arrival order, and must
/// fold the decision into its own state (loads, replica sets, …).
pub trait StreamingPlacer {
    /// Number of partitions this placer assigns into.
    fn num_partitions(&self) -> usize;

    /// Places the arriving edge `(u, v)` and returns its partition.
    fn place(&mut self, u: VertexId, v: VertexId) -> PartitionId;
}

/// Result of driving a placer over an edge stream.
#[derive(Clone, Debug)]
pub struct StreamedPartition {
    /// Number of partitions.
    pub num_partitions: usize,
    /// Partition of each edge **in arrival order** (for natural-order
    /// streams this is `EdgeId` order, so it doubles as an assignment).
    pub assignments: Vec<PartitionId>,
    /// Number of edges seen.
    pub edges_seen: usize,
    /// Largest chunk buffer observed — bounded by the stream's budget.
    pub peak_buffer: usize,
}

impl StreamedPartition {
    /// Interprets the arrival-order assignments as an [`EdgePartition`]
    /// (valid when the stream arrived in natural `EdgeId` order).
    ///
    /// # Errors
    ///
    /// Propagates [`EdgePartition::new`] validation errors.
    pub fn into_partition(self) -> Result<EdgePartition, PartitionError> {
        EdgePartition::new(self.num_partitions, self.assignments)
    }
}

/// Drives `placer` over every edge of `stream`.
///
/// # Errors
///
/// Propagates stream errors ([`StoreError`]) — placement itself is total.
pub fn partition_stream<S: EdgeStream + ?Sized>(
    placer: &mut dyn StreamingPlacer,
    stream: &mut S,
) -> Result<StreamedPartition, StoreError> {
    let mut assignments = Vec::new();
    let (edges_seen, peak_buffer) = for_each_chunk(stream, |chunk| {
        for e in chunk {
            assignments.push(placer.place(e.source(), e.target()));
        }
        Ok(())
    })?;
    Ok(StreamedPartition {
        num_partitions: placer.num_partitions(),
        assignments,
        edges_seen,
        peak_buffer,
    })
}

/// HDRF placement state (see [`crate::HdrfPartitioner`] for the scoring
/// rule). State is `O(n + p)`: replica sets, partial degrees, loads.
#[derive(Clone, Debug)]
pub struct HdrfState {
    lambda: f64,
    replicas: Vec<PartitionSet>,
    partial_degree: Vec<u32>,
    loads: Vec<usize>,
}

impl HdrfState {
    const EPSILON: f64 = 1e-9;

    /// Creates HDRF state for `num_vertices` vertices and `num_partitions`
    /// partitions.
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroPartitions`] and the same `lambda` validation
    /// as [`crate::HdrfPartitioner::new`].
    pub fn new(
        num_vertices: usize,
        num_partitions: usize,
        lambda: f64,
    ) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(PartitionError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(HdrfState {
            lambda,
            replicas: (0..num_vertices)
                .map(|_| PartitionSet::new(num_partitions))
                .collect(),
            partial_degree: vec![0u32; num_vertices],
            loads: vec![0usize; num_partitions],
        })
    }

    /// Creates HDRF state *as if* every edge of `graph` had already been
    /// streamed through [`StreamingPlacer::place`] with the outcomes
    /// recorded in `partition`: partial degrees equal the graph degrees,
    /// replica sets and loads are folded from the assignment.
    ///
    /// When `partition` was itself produced by an HDRF stream over
    /// `graph`'s canonical edge order, the returned state is identical to
    /// the live state at the end of that stream, so placements continue
    /// bit-identically — this is how the serving layer resumes online
    /// placement against a stored partition.
    ///
    /// # Errors
    ///
    /// [`HdrfState::new`] validation errors, plus
    /// [`PartitionError::InvalidAssignment`] if `partition` does not cover
    /// `graph`'s edges.
    pub fn seeded_from<'a>(
        graph: impl Into<GraphView<'a>>,
        partition: &EdgePartition,
        lambda: f64,
    ) -> Result<Self, PartitionError> {
        let graph = graph.into();
        check_seeding_pair(graph, partition)?;
        let mut state = HdrfState::new(graph.num_vertices(), partition.num_partitions(), lambda)?;
        for (eid, edge) in graph.edge_iter().enumerate() {
            let q = partition.partition_of(eid as u32) as usize;
            state.partial_degree[edge.source() as usize] += 1;
            state.partial_degree[edge.target() as usize] += 1;
            state.loads[q] += 1;
            state.replicas[edge.source() as usize].insert(q);
            state.replicas[edge.target() as usize].insert(q);
        }
        Ok(state)
    }
}

impl StreamingPlacer for HdrfState {
    fn num_partitions(&self) -> usize {
        self.loads.len()
    }

    fn place(&mut self, u: VertexId, v: VertexId) -> PartitionId {
        let p = self.loads.len();
        self.partial_degree[u as usize] += 1;
        self.partial_degree[v as usize] += 1;
        let du = f64::from(self.partial_degree[u as usize]);
        let dv = f64::from(self.partial_degree[v as usize]);
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;
        let max_load = self.loads.iter().copied().max().expect("p >= 1") as f64;
        let min_load = self.loads.iter().copied().min().expect("p >= 1") as f64;

        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for q in 0..p {
            let mut c_rep = 0.0;
            if self.replicas[u as usize].contains(q) {
                c_rep += 1.0 + (1.0 - theta_u);
            }
            if self.replicas[v as usize].contains(q) {
                c_rep += 1.0 + (1.0 - theta_v);
            }
            let c_bal = self.lambda * (max_load - self.loads[q] as f64)
                / (Self::EPSILON + max_load - min_load);
            let score = c_rep + c_bal;
            if score > best_score || (score == best_score && self.loads[q] < self.loads[best]) {
                best = q;
                best_score = score;
            }
        }
        self.loads[best] += 1;
        self.replicas[u as usize].insert(best);
        self.replicas[v as usize].insert(best);
        best as PartitionId
    }
}

/// PowerGraph-greedy placement state (see [`crate::GreedyPartitioner`]).
#[derive(Clone, Debug)]
pub struct GreedyState {
    replicas: Vec<PartitionSet>,
    loads: Vec<usize>,
}

impl GreedyState {
    /// Creates greedy state for `num_vertices` vertices.
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroPartitions`].
    pub fn new(num_vertices: usize, num_partitions: usize) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        Ok(GreedyState {
            replicas: (0..num_vertices)
                .map(|_| PartitionSet::new(num_partitions))
                .collect(),
            loads: vec![0usize; num_partitions],
        })
    }

    /// Creates greedy state as if every edge of `graph` had already been
    /// placed with the outcomes in `partition` — the greedy analogue of
    /// [`HdrfState::seeded_from`], with the same continuation guarantee.
    ///
    /// # Errors
    ///
    /// [`GreedyState::new`] validation errors, plus
    /// [`PartitionError::InvalidAssignment`] if `partition` does not cover
    /// `graph`'s edges.
    pub fn seeded_from<'a>(
        graph: impl Into<GraphView<'a>>,
        partition: &EdgePartition,
    ) -> Result<Self, PartitionError> {
        let graph = graph.into();
        check_seeding_pair(graph, partition)?;
        let mut state = GreedyState::new(graph.num_vertices(), partition.num_partitions())?;
        for (eid, edge) in graph.edge_iter().enumerate() {
            let q = partition.partition_of(eid as u32) as usize;
            state.loads[q] += 1;
            state.replicas[edge.source() as usize].insert(q);
            state.replicas[edge.target() as usize].insert(q);
        }
        Ok(state)
    }
}

impl StreamingPlacer for GreedyState {
    fn num_partitions(&self) -> usize {
        self.loads.len()
    }

    fn place(&mut self, u: VertexId, v: VertexId) -> PartitionId {
        let p = self.loads.len();
        let (au, av) = (&self.replicas[u as usize], &self.replicas[v as usize]);
        let pid = if let Some(pid) = least_loaded(&self.loads, au.intersection(av)) {
            pid
        } else {
            match (au.is_empty(), av.is_empty()) {
                (false, false) => {
                    least_loaded(&self.loads, au.iter().chain(av.iter())).expect("non-empty")
                }
                (false, true) => least_loaded(&self.loads, au.iter()).expect("non-empty"),
                (true, false) => least_loaded(&self.loads, av.iter()).expect("non-empty"),
                (true, true) => least_loaded(&self.loads, 0..p).expect("p >= 1"),
            }
        };
        self.loads[pid] += 1;
        self.replicas[u as usize].insert(pid);
        self.replicas[v as usize].insert(pid);
        pid as PartitionId
    }
}

/// DBH placement state (see [`crate::DbhPartitioner`]). Needs the *final*
/// vertex degrees up front, which streams provide via [`StreamMeta`].
#[derive(Clone, Debug)]
pub struct DbhState {
    degrees: Vec<u32>,
    seed: u64,
    num_partitions: usize,
}

impl DbhState {
    /// Creates DBH state from final vertex degrees.
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroPartitions`].
    pub fn new(
        degrees: Vec<u32>,
        num_partitions: usize,
        seed: u64,
    ) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        Ok(DbhState {
            degrees,
            seed,
            num_partitions,
        })
    }

    /// Creates DBH state from a stream's metadata.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingDegrees`] if the source cannot provide final
    /// degrees (e.g. a one-pass text stream), plus [`DbhState::new`] errors
    /// mapped to [`StoreError::Corrupt`].
    pub fn from_meta(
        meta: &StreamMeta,
        num_partitions: usize,
        seed: u64,
    ) -> Result<Self, StoreError> {
        let degrees = meta.degrees.clone().ok_or(StoreError::MissingDegrees)?;
        DbhState::new(degrees, num_partitions, seed).map_err(|e| StoreError::Corrupt(e.to_string()))
    }
}

impl StreamingPlacer for DbhState {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn place(&mut self, u: VertexId, v: VertexId) -> PartitionId {
        let (du, dv) = (self.degrees[u as usize], self.degrees[v as usize]);
        let anchor = if du < dv || (du == dv && u <= v) {
            u
        } else {
            v
        };
        (splitmix64(u64::from(anchor) ^ self.seed) % self.num_partitions as u64) as PartitionId
    }
}

/// Random placement state (see [`crate::RandomPartitioner`]): a stateless
/// hash of the arrival index, which on a natural-order stream equals the
/// `EdgeId` the materialized path hashes.
#[derive(Clone, Debug)]
pub struct RandomState {
    seed: u64,
    num_partitions: usize,
    next_index: u64,
}

impl RandomState {
    /// Creates random placement state.
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroPartitions`].
    pub fn new(num_partitions: usize, seed: u64) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        Ok(RandomState {
            seed,
            num_partitions,
            next_index: 0,
        })
    }
}

impl StreamingPlacer for RandomState {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn place(&mut self, _u: VertexId, _v: VertexId) -> PartitionId {
        let index = self.next_index;
        self.next_index += 1;
        (splitmix64(index ^ self.seed) % self.num_partitions as u64) as PartitionId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_store::CsrEdgeStream;

    #[test]
    fn peak_buffer_is_bounded_by_budget() {
        let g = tlp_graph::generators::erdos_renyi(100, 400, 3);
        for budget in [1usize, 7, 64] {
            let mut placer = GreedyState::new(g.num_vertices(), 4).unwrap();
            let mut stream = CsrEdgeStream::new(&g, budget);
            let streamed = partition_stream(&mut placer, &mut stream).unwrap();
            assert_eq!(streamed.edges_seen, g.num_edges());
            assert!(
                streamed.peak_buffer <= budget,
                "peak {} exceeds budget {budget}",
                streamed.peak_buffer
            );
        }
    }

    #[test]
    fn zero_partitions_rejected_everywhere() {
        assert!(HdrfState::new(4, 0, 1.1).is_err());
        assert!(GreedyState::new(4, 0).is_err());
        assert!(DbhState::new(vec![1, 1], 0, 0).is_err());
        assert!(RandomState::new(0, 0).is_err());
    }

    /// Streams the first `split` canonical edges of `g` through a fresh
    /// placer, seeds a new placer from the resulting (prefix graph,
    /// prefix partition) pair, and checks that placing the remaining
    /// edges continues bit-identically to the uninterrupted full stream.
    fn assert_seeded_continuation(
        g: &tlp_graph::CsrGraph,
        split: usize,
        p: usize,
        fresh: impl Fn(usize) -> Box<dyn StreamingPlacer>,
        seeded: impl Fn(&tlp_graph::CsrGraph, &EdgePartition) -> Box<dyn StreamingPlacer>,
    ) {
        let mut full = fresh(g.num_vertices());
        let full_assignments: Vec<PartitionId> = g
            .edges()
            .iter()
            .map(|e| full.place(e.source(), e.target()))
            .collect();

        let prefix_graph = tlp_graph::CsrGraph::from_sorted_canonical_edges(
            g.num_vertices(),
            g.edges()[..split].to_vec(),
        )
        .unwrap();
        let prefix_partition = EdgePartition::new(p, full_assignments[..split].to_vec()).unwrap();
        let mut resumed = seeded(&prefix_graph, &prefix_partition);
        for (i, e) in g.edges().iter().enumerate().skip(split) {
            assert_eq!(
                resumed.place(e.source(), e.target()),
                full_assignments[i],
                "seeded continuation diverged at edge {i}"
            );
        }
    }

    #[test]
    fn hdrf_seeded_state_continues_bit_identically() {
        let g = tlp_graph::generators::chung_lu(400, 1600, 2.2, 5);
        let split = g.num_edges() * 3 / 4;
        assert_seeded_continuation(
            &g,
            split,
            8,
            |n| Box::new(HdrfState::new(n, 8, 1.1).unwrap()),
            |pg, pp| Box::new(HdrfState::seeded_from(pg, pp, 1.1).unwrap()),
        );
    }

    #[test]
    fn greedy_seeded_state_continues_bit_identically() {
        let g = tlp_graph::generators::chung_lu(400, 1600, 2.2, 9);
        let split = g.num_edges() / 2;
        assert_seeded_continuation(
            &g,
            split,
            8,
            |n| Box::new(GreedyState::new(n, 8).unwrap()),
            |pg, pp| Box::new(GreedyState::seeded_from(pg, pp).unwrap()),
        );
    }

    #[test]
    fn seeding_rejects_mismatched_pairs() {
        let g = tlp_graph::generators::erdos_renyi(50, 120, 4);
        let short = EdgePartition::new(4, vec![0; g.num_edges() - 1]);
        // An assignment one edge short is rejected by EdgePartition or by
        // the seeding precondition, whichever fires first.
        if let Ok(part) = short {
            assert!(HdrfState::seeded_from(&g, &part, 1.1).is_err());
            assert!(GreedyState::seeded_from(&g, &part).is_err());
        }
        let empty_graph = tlp_graph::GraphBuilder::new().build();
        let part = EdgePartition::new(4, (0..g.num_edges()).map(|_| 0).collect()).unwrap();
        assert!(HdrfState::seeded_from(&empty_graph, &part, 1.1).is_err());
        assert!(GreedyState::seeded_from(&empty_graph, &part).is_err());
    }

    #[test]
    fn dbh_from_meta_requires_degrees() {
        let meta = StreamMeta::default();
        assert!(matches!(
            DbhState::from_meta(&meta, 4, 0),
            Err(StoreError::MissingDegrees)
        ));
    }
}
