//! Internal helpers shared by the baseline partitioners.

/// SplitMix64: a fast, high-quality deterministic integer mixer, used where
/// a seeded stateless hash is needed (DBH, Random's per-edge draws).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small dense set of partition ids (replica sets `A(v)` in PowerGraph /
/// HDRF terminology), sized for arbitrary `p`.
#[derive(Clone, Debug, Default)]
pub(crate) struct PartitionSet {
    words: Vec<u64>,
}

impl PartitionSet {
    pub(crate) fn new(num_partitions: usize) -> Self {
        PartitionSet {
            words: vec![0; num_partitions.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, pid: usize) {
        self.words[pid / 64] |= 1 << (pid % 64);
    }

    pub(crate) fn contains(&self, pid: usize) -> bool {
        self.words[pid / 64] >> (pid % 64) & 1 == 1
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }

    pub(crate) fn intersection<'a>(
        &'a self,
        other: &'a PartitionSet,
    ) -> impl Iterator<Item = usize> + 'a {
        self.iter().filter(move |&pid| other.contains(pid))
    }
}

/// Picks the least-loaded partition from `candidates` (ties: lowest id).
/// Returns `None` when `candidates` is empty.
pub(crate) fn least_loaded(
    loads: &[usize],
    candidates: impl Iterator<Item = usize>,
) -> Option<usize> {
    candidates.min_by_key(|&pid| (loads[pid], pid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low bits should differ across consecutive inputs.
        let a = splitmix64(100) % 16;
        let spread: std::collections::HashSet<u64> = (0..64).map(|i| splitmix64(i) % 16).collect();
        assert!(spread.len() > 8, "poor low-bit spread: {spread:?} {a}");
    }

    #[test]
    fn partition_set_basic_ops() {
        let mut s = PartitionSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn intersection_works_across_words() {
        let mut a = PartitionSet::new(130);
        let mut b = PartitionSet::new(130);
        a.insert(3);
        a.insert(70);
        a.insert(129);
        b.insert(70);
        b.insert(129);
        assert_eq!(a.intersection(&b).collect::<Vec<_>>(), vec![70, 129]);
    }

    #[test]
    fn least_loaded_breaks_ties_by_id() {
        let loads = [5, 3, 3, 9];
        assert_eq!(least_loaded(&loads, 0..4), Some(1));
        assert_eq!(least_loaded(&loads, [3, 2].into_iter()), Some(2));
        assert_eq!(least_loaded(&loads, std::iter::empty()), None);
    }
}
