//! FENNEL vertex streaming (Tsourakakis et al., WSDM 2014).

use crate::stream::{vertex_order, VertexOrder};
use crate::util::least_loaded;
use crate::vertex_to_edge::{derive_edge_partition, VertexPartition};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::GraphView;

/// FENNEL streams vertices and places each by the interpolated objective
///
/// ```text
/// argmax_i  |N(v) ∩ P_i| - α * γ / 2 * |P_i|^(γ-1)
/// ```
///
/// with the paper's recommended `γ = 1.5` and `α = √p * m / n^1.5`, under a
/// hard capacity `ν * n / p`. The vertex partition is converted to an edge
/// partition with the standard endpoint rule.
///
/// # Example
///
/// ```
/// use tlp_baselines::{FennelPartitioner, VertexOrder};
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(400, 1_600, 2.2, 8);
/// let part = FennelPartitioner::new(VertexOrder::Random(3)).partition(&g, 8)?;
/// assert_eq!(part.num_edges(), 1_600);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FennelPartitioner {
    order: VertexOrder,
    gamma: f64,
    slack: f64,
}

impl Default for FennelPartitioner {
    fn default() -> Self {
        FennelPartitioner::new(VertexOrder::Random(0))
    }
}

impl FennelPartitioner {
    /// Creates a FENNEL partitioner with `γ = 1.5` and 10% capacity slack.
    pub fn new(order: VertexOrder) -> Self {
        FennelPartitioner {
            order,
            gamma: 1.5,
            slack: 1.1,
        }
    }

    /// Overrides the objective exponent `γ` (> 1).
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Runs the vertex-streaming phase only.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] for `num_partitions == 0`
    /// and [`PartitionError::InvalidParameter`] for `γ <= 1`.
    pub fn partition_vertices<'a>(
        &self,
        graph: impl Into<GraphView<'a>>,
        num_partitions: usize,
    ) -> Result<VertexPartition, PartitionError> {
        let graph = graph.into();
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if self.gamma.is_nan() || self.gamma <= 1.0 {
            return Err(PartitionError::InvalidParameter {
                name: "gamma",
                value: self.gamma,
                constraint: "must be > 1",
            });
        }
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let p = num_partitions;
        let alpha = if n == 0 {
            0.0
        } else {
            (p as f64).sqrt() * m as f64 / (n as f64).powf(1.5)
        };
        let capacity = (self.slack * n as f64 / p as f64).ceil().max(1.0);
        let mut assignment: Vec<PartitionId> = vec![PartitionId::MAX; n];
        let mut sizes = vec![0usize; p];
        let mut neighbor_counts = vec![0usize; p];

        for v in vertex_order(graph, self.order) {
            neighbor_counts.fill(0);
            for &w in graph.neighbors(v) {
                let pid = assignment[w as usize];
                if pid != PartitionId::MAX {
                    neighbor_counts[pid as usize] += 1;
                }
            }
            let mut best = usize::MAX;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..p {
                if sizes[i] as f64 >= capacity {
                    continue;
                }
                let penalty = alpha * self.gamma / 2.0 * (sizes[i] as f64).powf(self.gamma - 1.0);
                let score = neighbor_counts[i] as f64 - penalty;
                if score > best_score {
                    best = i;
                    best_score = score;
                }
            }
            let pid = if best == usize::MAX {
                least_loaded(&sizes, 0..p).expect("p >= 1")
            } else {
                best
            };
            assignment[v as usize] = pid as PartitionId;
            sizes[pid] += 1;
        }
        VertexPartition::new(p, assignment)
    }
}

impl EdgePartitioner for FennelPartitioner {
    fn name(&self) -> &str {
        "FENNEL"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let vp = self.partition_vertices(graph, num_partitions)?;
        Ok(derive_edge_partition(graph, &vp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::chung_lu;
    use tlp_graph::GraphBuilder;

    #[test]
    fn rejects_bad_gamma_and_zero_p() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        assert!(FennelPartitioner::default()
            .with_gamma(1.0)
            .partition(&g, 2)
            .is_err());
        assert!(FennelPartitioner::default().partition(&g, 0).is_err());
    }

    #[test]
    fn respects_vertex_capacity() {
        let g = chung_lu(200, 600, 2.2, 1);
        let vp = FennelPartitioner::new(VertexOrder::Natural)
            .partition_vertices(&g, 4)
            .unwrap();
        let cap = (1.1f64 * 200.0 / 4.0).ceil() as usize;
        for &c in &vp.vertex_counts() {
            assert!(c <= cap);
        }
    }

    #[test]
    fn beats_random_on_structured_graphs() {
        let g = chung_lu(600, 3000, 2.2, 2);
        let fennel = FennelPartitioner::new(VertexOrder::Random(4))
            .partition(&g, 10)
            .unwrap();
        let rnd = crate::RandomPartitioner::new(4).partition(&g, 10).unwrap();
        let rf_f = PartitionMetrics::compute(&g, &fennel).replication_factor;
        let rf_r = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_f < rf_r, "FENNEL {rf_f} vs Random {rf_r}");
    }

    #[test]
    fn deterministic() {
        let g = chung_lu(150, 450, 2.2, 6);
        let a = FennelPartitioner::default().partition(&g, 3).unwrap();
        let b = FennelPartitioner::default().partition(&g, 3).unwrap();
        assert_eq!(a, b);
    }
}
