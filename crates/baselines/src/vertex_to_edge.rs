//! Vertex partitions and their conversion to edge partitions.
//!
//! LDG, FENNEL, and METIS are *vertex* partitioners; the paper evaluates
//! everything under the edge-partitioning metric (RF), so vertex partitions
//! are converted: each edge follows one of its endpoints. We send each edge
//! to the endpoint partition with the smaller current edge load (ties to
//! the lower partition id), which keeps the derived edge partition balanced
//! without changing which partitions an edge may join. The same conversion
//! is applied to every vertex partitioner, so comparisons remain fair.

use tlp_core::{EdgePartition, PartitionError, PartitionId};
use tlp_graph::{GraphView, VertexId};

/// A total assignment of vertices to `p` partitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPartition {
    num_partitions: usize,
    assignment: Vec<PartitionId>,
}

impl VertexPartition {
    /// Wraps a complete vertex assignment.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] if `num_partitions == 0`,
    /// or [`PartitionError::InvalidAssignment`] if an entry is out of range.
    pub fn new(
        num_partitions: usize,
        assignment: Vec<PartitionId>,
    ) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if let Some((v, &pid)) = assignment
            .iter()
            .enumerate()
            .find(|(_, &pid)| pid as usize >= num_partitions)
        {
            return Err(PartitionError::InvalidAssignment(format!(
                "vertex {v} assigned to partition {pid} of {num_partitions}"
            )));
        }
        Ok(VertexPartition {
            num_partitions,
            assignment,
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Partition of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v as usize]
    }

    /// The raw assignment, indexed by vertex id.
    pub fn assignments(&self) -> &[PartitionId] {
        &self.assignment
    }

    /// Vertex count per partition.
    pub fn vertex_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &pid in &self.assignment {
            counts[pid as usize] += 1;
        }
        counts
    }

    /// Number of cross-partition edges (the vertex-partitioning objective,
    /// Definition 1).
    pub fn edge_cut<'a>(&self, graph: impl Into<GraphView<'a>>) -> usize {
        graph
            .into()
            .edge_iter()
            .filter(|e| self.partition_of(e.source()) != self.partition_of(e.target()))
            .count()
    }
}

/// Converts a vertex partition into an edge partition (load-aware endpoint
/// rule; see the module docs).
///
/// # Panics
///
/// Panics if the vertex partition does not cover the graph's vertices.
///
/// # Example
///
/// ```
/// use tlp_baselines::{derive_edge_partition, VertexPartition};
/// use tlp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().add_edges([(0, 1), (1, 2), (2, 3)]).build();
/// let vp = VertexPartition::new(2, vec![0, 0, 1, 1])?;
/// let ep = derive_edge_partition(&g, &vp);
/// assert_eq!(ep.partition_of(0), 0);         // edge (0,1): both endpoints in 0
/// assert_eq!(ep.partition_of(2), 1);         // edge (2,3): both endpoints in 1
/// assert_eq!(ep.edge_counts().iter().sum::<usize>(), 3);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
pub fn derive_edge_partition<'a>(
    graph: impl Into<GraphView<'a>>,
    vertices: &VertexPartition,
) -> EdgePartition {
    let graph = graph.into();
    assert_eq!(
        vertices.assignments().len(),
        graph.num_vertices(),
        "vertex partition does not cover the graph"
    );
    let p = vertices.num_partitions();
    let mut loads = vec![0usize; p];
    let mut assignment = Vec::with_capacity(graph.num_edges());
    for e in graph.edge_iter() {
        let a = vertices.partition_of(e.source());
        let b = vertices.partition_of(e.target());
        let pid = if a == b {
            a
        } else {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if loads[lo as usize] <= loads[hi as usize] {
                lo
            } else {
                hi
            }
        };
        loads[pid as usize] += 1;
        assignment.push(pid);
    }
    EdgePartition::new(p, assignment).expect("derived assignment is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn validation() {
        assert!(VertexPartition::new(0, vec![]).is_err());
        assert!(VertexPartition::new(2, vec![0, 2]).is_err());
        let vp = VertexPartition::new(2, vec![0, 1, 1]).unwrap();
        assert_eq!(vp.vertex_counts(), vec![1, 2]);
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (0, 2)])
            .build();
        let vp = VertexPartition::new(2, vec![0, 0, 1]).unwrap();
        assert_eq!(vp.edge_cut(&g), 2); // (1,2) and (0,2)
    }

    #[test]
    fn internal_edges_stay_in_their_partition() {
        let g = GraphBuilder::new().add_edges([(0, 1), (2, 3)]).build();
        let vp = VertexPartition::new(2, vec![0, 0, 1, 1]).unwrap();
        let ep = derive_edge_partition(&g, &vp);
        assert_eq!(ep.assignments(), &[0, 1]);
    }

    #[test]
    fn cross_edges_balance_loads() {
        // A star with center in partition 0 and all leaves in partition 1:
        // cross edges should spread over both partitions by load.
        let g = GraphBuilder::new()
            .add_edges((1..=4).map(|v| (0, v)))
            .build();
        let vp = VertexPartition::new(2, vec![0, 1, 1, 1, 1]).unwrap();
        let ep = derive_edge_partition(&g, &vp);
        let counts = ep.edge_counts();
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_sizes_panic() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let vp = VertexPartition::new(2, vec![0]).unwrap();
        derive_edge_partition(&g, &vp);
    }
}
