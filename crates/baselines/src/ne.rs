//! NE — Neighborhood Expansion (Zhang et al., "Graph Edge Partitioning via
//! Neighborhood Heuristic", KDD 2017; the paper's reference [13]).
//!
//! Like TLP, NE builds partitions one at a time from a random seed, so it
//! is the most closely related comparator — close enough that it runs on
//! the same expansion engine ([`tlp_core::engine`]) as TLP itself. NE's
//! *boundary* set `S` is the engine's member-or-frontier set, its *core*
//! `C` is the member set, and its eager "allocate every edge between the
//! joining vertex and `S`" rule is the engine's
//! [`AdmissionMode::Eager`]. Under that discipline no residual edge ever
//! connects two `S` vertices, so a candidate's residual degree *is* its
//! count of neighbors outside `S` — exactly the key NE minimizes — and the
//! whole algorithm reduces to [`NePolicy`]: a lazy min-heap on
//! `(residual_degree, vertex)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tlp_core::engine::{self, AdmissionMode, GrowthState, Selection, SelectionPolicy, Workspace};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, Stage, TlpConfig};
use tlp_graph::{GraphView, ResidualGraph, VertexId};

/// NE's selection rule as an engine policy: admit the boundary vertex with
/// the fewest residual neighbors outside the boundary set.
///
/// Keys only decrease as `S` grows, so lazy stale heap entries are always
/// *larger* than the fresh entry pushed on each change and the freshest
/// (smallest) entry surfaces first; stale pops are discarded by validating
/// the key against the current residual degree.
#[derive(Debug, Default)]
pub struct NePolicy {
    heap: BinaryHeap<Reverse<(u32, VertexId)>>,
}

impl SelectionPolicy for NePolicy {
    fn admission(&self) -> AdmissionMode {
        AdmissionMode::Eager
    }

    fn on_candidate(
        &mut self,
        _ws: &Workspace,
        residual: &ResidualGraph<'_>,
        v: VertexId,
        _round: u32,
    ) {
        self.heap
            .push(Reverse((residual.residual_degree(v) as u32, v)));
    }

    fn select(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        _state: GrowthState,
    ) -> Selection {
        loop {
            let Reverse((c, v)) = self
                .heap
                .pop()
                .expect("non-empty frontier implies a valid heap entry");
            if ws.is_candidate(v) && residual.residual_degree(v) as u32 == c {
                // The stage label is trace bookkeeping; NE has no stages.
                return Selection {
                    vertex: v,
                    stage: Stage::One,
                };
            }
        }
    }

    fn end_round(&mut self) {
        self.heap.clear();
    }
}

/// The NE partitioner.
///
/// # Example
///
/// ```
/// use tlp_baselines::NePartitioner;
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::power_law_community;
///
/// let g = power_law_community(400, 1_600, 2.1, 10, 0.2, 3);
/// let part = NePartitioner::new(1).partition(&g, 8)?;
/// assert_eq!(part.num_edges(), 1_600);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NePartitioner {
    seed: u64,
}

impl NePartitioner {
    /// Creates an NE partitioner with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        NePartitioner { seed }
    }
}

impl EdgePartitioner for NePartitioner {
    fn name(&self) -> &str {
        "NE"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        // Default capacity (`ceil(m / p)`), within-round reseeding, and the
        // engine's least-loaded leftover sweep match NE's published loop.
        let config = TlpConfig::new().seed(self.seed);
        let mut policy = NePolicy::default();
        engine::run(graph, num_partitions, &config, &mut policy).map(|(partition, _)| partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::power_law_community;
    use tlp_graph::GraphBuilder;

    #[test]
    fn covers_all_edges_and_is_deterministic() {
        let g = power_law_community(300, 1500, 2.1, 8, 0.25, 2);
        let a = NePartitioner::new(5).partition(&g, 6).unwrap();
        let b = NePartitioner::new(5).partition(&g, 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_counts().iter().sum::<usize>(), 1500);
    }

    #[test]
    fn beats_random_and_hashing() {
        let g = power_law_community(800, 4000, 2.1, 16, 0.2, 7);
        let p = 10;
        let rf = |part: &EdgePartition| PartitionMetrics::compute(&g, part).replication_factor;
        let ne = rf(&NePartitioner::new(1).partition(&g, p).unwrap());
        let rnd = rf(&crate::RandomPartitioner::new(1).partition(&g, p).unwrap());
        let dbh = rf(&crate::DbhPartitioner::new(1).partition(&g, p).unwrap());
        assert!(ne < rnd, "NE {ne} vs Random {rnd}");
        assert!(ne < dbh, "NE {ne} vs DBH {dbh}");
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = power_law_community(500, 2500, 2.2, 10, 0.25, 3);
        let part = NePartitioner::new(2).partition(&g, 5).unwrap();
        let counts = part.edge_counts();
        let max = *counts.iter().max().unwrap();
        assert!(max <= 2 * 2500 / 5, "unbalanced: {counts:?}");
    }

    #[test]
    fn handles_disconnected_graphs_and_zero_p() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (2, 3), (4, 5)])
            .build();
        let part = NePartitioner::new(0).partition(&g, 2).unwrap();
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 3);
        assert!(NePartitioner::new(0).partition(&g, 0).is_err());
    }
}
