//! NE — Neighborhood Expansion (Zhang et al., "Graph Edge Partitioning via
//! Neighborhood Heuristic", KDD 2017; the paper's reference [13]).
//!
//! Like TLP, NE builds partitions one at a time from a random seed, so it
//! is the most closely related comparator. It maintains a *core* set `C`
//! and a *boundary* set `S ⊇ C`; each step moves the boundary vertex with
//! the fewest residual neighbors outside `S` into the core, extends the
//! boundary with that vertex's neighbors, and allocates every residual
//! edge between the moved vertex and `S`.

use crate::stream::{edge_order, EdgeOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::{CsrGraph, ResidualGraph, VertexId};

/// The NE partitioner.
///
/// # Example
///
/// ```
/// use tlp_baselines::NePartitioner;
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::power_law_community;
///
/// let g = power_law_community(400, 1_600, 2.1, 10, 0.2, 3);
/// let part = NePartitioner::new(1).partition(&g, 8)?;
/// assert_eq!(part.num_edges(), 1_600);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NePartitioner {
    seed: u64,
}

impl NePartitioner {
    /// Creates an NE partitioner with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        NePartitioner { seed }
    }
}

impl EdgePartitioner for NePartitioner {
    fn name(&self) -> &str {
        "NE"
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        let m = graph.num_edges();
        let n = graph.num_vertices();
        let mut assignment: Vec<PartitionId> = vec![0; m];
        if m == 0 {
            return EdgePartition::new(num_partitions, assignment);
        }
        let capacity = m.div_ceil(num_partitions).max(1);
        let mut residual = ResidualGraph::new(graph);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Round-stamped membership of S (boundary) and C (core).
        let mut in_s = vec![u32::MAX; n];
        let mut in_c = vec![u32::MAX; n];
        // Residual neighbors outside S, per boundary candidate.
        let mut outside = vec![0u32; n];

        for k in 0..num_partitions as u32 {
            if residual.is_exhausted() {
                break;
            }
            let mut allocated = 0usize;
            // Min-heap on (outside-count, vertex): keys only decrease as S
            // grows, so lazy stale entries are always *larger* and the
            // freshest (smallest) entry surfaces first.
            let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
            let mut scratch: Vec<(VertexId, tlp_graph::EdgeId)> = Vec::new();

            let hint = rng.gen_range(0..n as u32);
            let seed = residual
                .any_active_vertex_from(hint)
                .expect("residual not exhausted");
            add_to_s(
                seed, k, &mut residual, &mut assignment, &mut in_s, &in_c, &mut outside,
                &mut heap, &mut scratch, &mut allocated,
            );

            while allocated <= capacity && !residual.is_exhausted() {
                // Pop the boundary vertex with fewest outside neighbors.
                let x = loop {
                    match heap.pop() {
                        None => break None,
                        Some(Reverse((c, v))) => {
                            if in_c[v as usize] != k
                                && in_s[v as usize] == k
                                && outside[v as usize] == c
                            {
                                break Some(v);
                            }
                        }
                    }
                };
                let x = match x {
                    Some(x) => x,
                    None => {
                        // Boundary exhausted: reseed within the round.
                        let hint = rng.gen_range(0..n as u32);
                        match residual.any_active_vertex_from(hint) {
                            Some(s) => {
                                add_to_s(
                                    s, k, &mut residual, &mut assignment, &mut in_s, &in_c,
                                    &mut outside, &mut heap, &mut scratch, &mut allocated,
                                );
                                continue;
                            }
                            None => break,
                        }
                    }
                };
                in_c[x as usize] = k;

                // Expand: every residual neighbor of x joins S (allocating
                // each S-internal edge, including the one back to x).
                let neighbors: Vec<VertexId> =
                    residual.residual_incident(x).map(|(u, _)| u).collect();
                for u in neighbors {
                    add_to_s(
                        u, k, &mut residual, &mut assignment, &mut in_s, &in_c, &mut outside,
                        &mut heap, &mut scratch, &mut allocated,
                    );
                }
            }
        }

        // Any remainder (possible when rounds exhaust early) goes to the
        // least-loaded partitions, as elsewhere in this workspace.
        if !residual.is_exhausted() {
            let mut counts = vec![0usize; num_partitions];
            for &pid in &assignment {
                counts[pid as usize] += 1;
            }
            for eid in edge_order(graph, EdgeOrder::Natural) {
                if residual.is_free(eid) {
                    let (target, _) = counts
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &c)| (c, i))
                        .expect("p >= 1");
                    assignment[eid as usize] = target as PartitionId;
                    counts[target] += 1;
                    residual.allocate(eid);
                }
            }
        }

        EdgePartition::new(num_partitions, assignment)
    }
}

/// Adds `v` to the boundary set `S` of round `k`: allocates every residual
/// edge from `v` to current `S` members (the "both endpoints in S" rule),
/// updates affected boundary candidates' outside counts, and enrolls `v` as
/// a candidate keyed by its remaining (outside-`S`) residual degree.
#[allow(clippy::too_many_arguments)]
fn add_to_s(
    v: VertexId,
    k: u32,
    residual: &mut ResidualGraph<'_>,
    assignment: &mut [PartitionId],
    in_s: &mut [u32],
    in_c: &[u32],
    outside: &mut [u32],
    heap: &mut BinaryHeap<Reverse<(u32, VertexId)>>,
    scratch: &mut Vec<(VertexId, tlp_graph::EdgeId)>,
    allocated: &mut usize,
) {
    if in_s[v as usize] == k {
        return;
    }
    in_s[v as usize] = k;
    scratch.clear();
    scratch.extend(residual.residual_incident(v));
    for i in 0..scratch.len() {
        let (u, eid) = scratch[i];
        if in_s[u as usize] == k {
            residual.allocate(eid);
            assignment[eid as usize] = k;
            *allocated += 1;
            if in_c[u as usize] != k {
                outside[u as usize] -= 1;
                heap.push(Reverse((outside[u as usize], u)));
            }
        }
    }
    // All of v's surviving residual edges now point outside S.
    let count = residual.residual_degree(v) as u32;
    outside[v as usize] = count;
    heap.push(Reverse((count, v)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::power_law_community;
    use tlp_graph::GraphBuilder;

    #[test]
    fn covers_all_edges_and_is_deterministic() {
        let g = power_law_community(300, 1500, 2.1, 8, 0.25, 2);
        let a = NePartitioner::new(5).partition(&g, 6).unwrap();
        let b = NePartitioner::new(5).partition(&g, 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_counts().iter().sum::<usize>(), 1500);
    }

    #[test]
    fn beats_random_and_hashing() {
        let g = power_law_community(800, 4000, 2.1, 16, 0.2, 7);
        let p = 10;
        let rf = |part: &EdgePartition| PartitionMetrics::compute(&g, part).replication_factor;
        let ne = rf(&NePartitioner::new(1).partition(&g, p).unwrap());
        let rnd = rf(&crate::RandomPartitioner::new(1).partition(&g, p).unwrap());
        let dbh = rf(&crate::DbhPartitioner::new(1).partition(&g, p).unwrap());
        assert!(ne < rnd, "NE {ne} vs Random {rnd}");
        assert!(ne < dbh, "NE {ne} vs DBH {dbh}");
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = power_law_community(500, 2500, 2.2, 10, 0.25, 3);
        let part = NePartitioner::new(2).partition(&g, 5).unwrap();
        let counts = part.edge_counts();
        let max = *counts.iter().max().unwrap();
        assert!(max <= 2 * 2500 / 5, "unbalanced: {counts:?}");
    }

    #[test]
    fn handles_disconnected_graphs_and_zero_p() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (2, 3), (4, 5)])
            .build();
        let part = NePartitioner::new(0).partition(&g, 2).unwrap();
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 3);
        assert!(NePartitioner::new(0).partition(&g, 0).is_err());
    }
}
