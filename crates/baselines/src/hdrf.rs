//! HDRF: High-Degree (are) Replicated First (Petroni et al., CIKM 2015).

use crate::stream::{edge_order, EdgeOrder};
use crate::util::PartitionSet;
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::CsrGraph;

/// HDRF streaming edge placement.
///
/// For an arriving edge `(u, v)` HDRF scores every partition `q` as
/// `C_rep(q) + C_bal(q)` and picks the argmax:
///
/// * `C_rep(q) = g(u, q) + g(v, q)` where `g(x, q) = 1 + (1 - θ(x))` if `x`
///   already has a replica in `q` and 0 otherwise, with
///   `θ(x) = δ(x) / (δ(u) + δ(v))` the endpoint's *partial-degree* share —
///   this prefers replicating the higher-degree endpoint;
/// * `C_bal(q) = λ * (maxsize - load(q)) / (ε + maxsize - minsize)`.
///
/// `λ` trades replication quality against balance (the paper's default 1.1).
///
/// # Example
///
/// ```
/// use tlp_baselines::{EdgeOrder, HdrfPartitioner};
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(300, 1_200, 2.1, 1);
/// let part = HdrfPartitioner::new(EdgeOrder::Random(2), 1.1)?.partition(&g, 6)?;
/// assert_eq!(part.num_edges(), 1_200);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HdrfPartitioner {
    order: EdgeOrder,
    lambda: f64,
}

impl HdrfPartitioner {
    /// Creates an HDRF partitioner.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] if `lambda` is negative
    /// or non-finite.
    pub fn new(order: EdgeOrder, lambda: f64) -> Result<Self, PartitionError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(PartitionError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(HdrfPartitioner { order, lambda })
    }

    /// The balance weight `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Default for HdrfPartitioner {
    fn default() -> Self {
        HdrfPartitioner::new(EdgeOrder::Random(0), 1.1).expect("default lambda is valid")
    }
}

impl EdgePartitioner for HdrfPartitioner {
    fn name(&self) -> &str {
        "HDRF"
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        let p = num_partitions;
        let n = graph.num_vertices();
        let mut replicas: Vec<PartitionSet> = (0..n).map(|_| PartitionSet::new(p)).collect();
        // Partial degrees: how many stream edges of each vertex have been
        // seen so far (HDRF is defined over the stream, not the final graph).
        let mut partial_degree = vec![0u32; n];
        let mut loads = vec![0usize; p];
        let mut assignment = vec![0 as PartitionId; graph.num_edges()];
        const EPSILON: f64 = 1e-9;

        for eid in edge_order(graph, self.order) {
            let edge = graph.edge(eid);
            let (u, v) = edge.endpoints();
            partial_degree[u as usize] += 1;
            partial_degree[v as usize] += 1;
            let du = f64::from(partial_degree[u as usize]);
            let dv = f64::from(partial_degree[v as usize]);
            let theta_u = du / (du + dv);
            let theta_v = 1.0 - theta_u;
            let max_load = loads.iter().copied().max().expect("p >= 1") as f64;
            let min_load = loads.iter().copied().min().expect("p >= 1") as f64;

            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for q in 0..p {
                let mut c_rep = 0.0;
                if replicas[u as usize].contains(q) {
                    c_rep += 1.0 + (1.0 - theta_u);
                }
                if replicas[v as usize].contains(q) {
                    c_rep += 1.0 + (1.0 - theta_v);
                }
                let c_bal =
                    self.lambda * (max_load - loads[q] as f64) / (EPSILON + max_load - min_load);
                let score = c_rep + c_bal;
                if score > best_score || (score == best_score && loads[q] < loads[best]) {
                    best = q;
                    best_score = score;
                }
            }
            assignment[eid as usize] = best as PartitionId;
            loads[best] += 1;
            replicas[u as usize].insert(best);
            replicas[v as usize].insert(best);
        }
        EdgePartition::new(p, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::chung_lu;

    #[test]
    fn rejects_bad_lambda() {
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, -1.0).is_err());
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, f64::NAN).is_err());
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, 0.0).is_ok());
    }

    #[test]
    fn beats_random_on_power_law() {
        let g = chung_lu(800, 4000, 2.0, 4);
        let hdrf = HdrfPartitioner::default().partition(&g, 10).unwrap();
        let rnd = crate::RandomPartitioner::new(0).partition(&g, 10).unwrap();
        let rf_h = PartitionMetrics::compute(&g, &hdrf).replication_factor;
        let rf_r = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_h < rf_r, "HDRF {rf_h} vs Random {rf_r}");
    }

    #[test]
    fn higher_lambda_improves_balance() {
        let g = chung_lu(600, 3000, 2.0, 9);
        let loose = HdrfPartitioner::new(EdgeOrder::Random(1), 0.1)
            .unwrap()
            .partition(&g, 8)
            .unwrap();
        let tight = HdrfPartitioner::new(EdgeOrder::Random(1), 5.0)
            .unwrap()
            .partition(&g, 8)
            .unwrap();
        let bal = |part: &EdgePartition| {
            let m = PartitionMetrics::compute(&g, part);
            m.balance
        };
        assert!(bal(&tight) <= bal(&loose) + 1e-9);
    }

    #[test]
    fn total_and_deterministic() {
        let g = chung_lu(200, 800, 2.2, 5);
        let a = HdrfPartitioner::default().partition(&g, 4).unwrap();
        let b = HdrfPartitioner::default().partition(&g, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_counts().iter().sum::<usize>(), 800);
    }
}
