//! HDRF: High-Degree (are) Replicated First (Petroni et al., CIKM 2015).

use crate::stream::{edge_order, EdgeOrder};
use crate::streaming::{partition_stream, HdrfState};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::GraphView;
use tlp_store::CsrEdgeStream;

/// HDRF streaming edge placement.
///
/// For an arriving edge `(u, v)` HDRF scores every partition `q` as
/// `C_rep(q) + C_bal(q)` and picks the argmax:
///
/// * `C_rep(q) = g(u, q) + g(v, q)` where `g(x, q) = 1 + (1 - θ(x))` if `x`
///   already has a replica in `q` and 0 otherwise, with
///   `θ(x) = δ(x) / (δ(u) + δ(v))` the endpoint's *partial-degree* share —
///   this prefers replicating the higher-degree endpoint;
/// * `C_bal(q) = λ * (maxsize - load(q)) / (ε + maxsize - minsize)`.
///
/// `λ` trades replication quality against balance (the paper's default 1.1).
///
/// # Example
///
/// ```
/// use tlp_baselines::{EdgeOrder, HdrfPartitioner};
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(300, 1_200, 2.1, 1);
/// let part = HdrfPartitioner::new(EdgeOrder::Random(2), 1.1)?.partition(&g, 6)?;
/// assert_eq!(part.num_edges(), 1_200);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HdrfPartitioner {
    order: EdgeOrder,
    lambda: f64,
}

impl HdrfPartitioner {
    /// Creates an HDRF partitioner.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] if `lambda` is negative
    /// or non-finite.
    pub fn new(order: EdgeOrder, lambda: f64) -> Result<Self, PartitionError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(PartitionError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(HdrfPartitioner { order, lambda })
    }

    /// The balance weight `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Default for HdrfPartitioner {
    fn default() -> Self {
        HdrfPartitioner::new(EdgeOrder::Random(0), 1.1).expect("default lambda is valid")
    }
}

impl EdgePartitioner for HdrfPartitioner {
    fn name(&self) -> &str {
        "HDRF"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let mut placer = HdrfState::new(graph.num_vertices(), num_partitions, self.lambda)?;
        let order = edge_order(graph, self.order);
        let mut stream = CsrEdgeStream::with_order(graph, order.clone(), usize::MAX);
        let streamed = partition_stream(&mut placer, &mut stream)
            .map_err(|e| PartitionError::InvalidAssignment(e.to_string()))?;
        // Scatter arrival-order decisions back to edge ids.
        let mut assignment = vec![0 as PartitionId; graph.num_edges()];
        for (i, &eid) in order.iter().enumerate() {
            assignment[eid as usize] = streamed.assignments[i];
        }
        EdgePartition::new(num_partitions, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::chung_lu;

    #[test]
    fn rejects_bad_lambda() {
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, -1.0).is_err());
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, f64::NAN).is_err());
        assert!(HdrfPartitioner::new(EdgeOrder::Natural, 0.0).is_ok());
    }

    #[test]
    fn beats_random_on_power_law() {
        let g = chung_lu(800, 4000, 2.0, 4);
        let hdrf = HdrfPartitioner::default().partition(&g, 10).unwrap();
        let rnd = crate::RandomPartitioner::new(0).partition(&g, 10).unwrap();
        let rf_h = PartitionMetrics::compute(&g, &hdrf).replication_factor;
        let rf_r = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_h < rf_r, "HDRF {rf_h} vs Random {rf_r}");
    }

    #[test]
    fn higher_lambda_improves_balance() {
        let g = chung_lu(600, 3000, 2.0, 9);
        let loose = HdrfPartitioner::new(EdgeOrder::Random(1), 0.1)
            .unwrap()
            .partition(&g, 8)
            .unwrap();
        let tight = HdrfPartitioner::new(EdgeOrder::Random(1), 5.0)
            .unwrap()
            .partition(&g, 8)
            .unwrap();
        let bal = |part: &EdgePartition| {
            let m = PartitionMetrics::compute(&g, part);
            m.balance
        };
        assert!(bal(&tight) <= bal(&loose) + 1e-9);
    }

    #[test]
    fn total_and_deterministic() {
        let g = chung_lu(200, 800, 2.2, 5);
        let a = HdrfPartitioner::default().partition(&g, 4).unwrap();
        let b = HdrfPartitioner::default().partition(&g, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_counts().iter().sum::<usize>(), 800);
    }
}
