//! The streaming baselines as pipeline [`Algorithm`]s.
//!
//! [`StreamingBaseline`] adapts the [`StreamingPlacer`] state machines
//! (Random, DBH, Greedy, HDRF) to the unified `tlp-core` pipeline: it
//! consumes any [`EdgeSource`] in two bounded-memory passes — pass 1
//! places every edge in arrival order, pass 2 replays the stream through
//! the canonical [`StreamedMetrics`] accumulator — and emits a
//! [`RunArtifact`] whose metrics are bit-identical to
//! [`PartitionMetrics::compute`] on the materialized graph (pinned by the
//! conformance tests). Because arrival order over every canonical-order
//! source equals `EdgeId` order, the streamed assignments double as an
//! [`EdgePartition`], and streamed runs agree bit-for-bit with the
//! materialized partitioners driven in natural order.

use crate::streaming::{DbhState, GreedyState, HdrfState, RandomState, StreamingPlacer};
use tlp_core::{
    AlgoConfig, Algorithm, Capability, EdgePartition, PartitionId, PipelineError, RunArtifact,
    StreamedMetrics,
};
use tlp_graph::{EdgeSource, SourceError};

/// The canonical HDRF balance weight used across the workspace.
pub const HDRF_LAMBDA: f64 = 1.1;

/// Which streaming heuristic a [`StreamingBaseline`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamingKind {
    /// Stateless hash of the arrival index.
    Random,
    /// Degree-based hashing (needs final degrees up front).
    Dbh,
    /// PowerGraph greedy placement.
    Greedy,
    /// High-degree replicated first, `λ = 1.1`.
    Hdrf,
}

impl StreamingKind {
    /// Display label matching the materialized partitioner's `name()`.
    pub fn label(self) -> &'static str {
        match self {
            StreamingKind::Random => "Random",
            StreamingKind::Dbh => "DBH",
            StreamingKind::Greedy => "Greedy",
            StreamingKind::Hdrf => "HDRF",
        }
    }
}

/// A streaming baseline as a pipeline [`Algorithm`]
/// (capability [`Capability::Streaming`]).
pub struct StreamingBaseline {
    kind: StreamingKind,
    seed: u64,
}

impl StreamingBaseline {
    /// Builds the given heuristic from the unified config.
    pub fn new(kind: StreamingKind, config: &AlgoConfig) -> Self {
        StreamingBaseline {
            kind,
            seed: config.seed,
        }
    }
}

/// Number of vertices, from the hint or by materializing.
fn resolve_num_vertices(source: &mut dyn EdgeSource) -> Result<usize, PipelineError> {
    if let Some(n) = source.num_vertices_hint() {
        return Ok(n);
    }
    if !source.supports_random_access() {
        return Err(PipelineError::Source(SourceError::MissingMeta {
            what: "num_vertices",
            source: source.describe(),
        }));
    }
    Ok(source.random_access()?.num_vertices())
}

/// Final degrees, from the hint or by materializing.
fn resolve_degrees(source: &mut dyn EdgeSource) -> Result<Vec<u32>, PipelineError> {
    if let Some(degrees) = source.degrees_hint() {
        return Ok(degrees);
    }
    if !source.supports_random_access() {
        return Err(PipelineError::Source(SourceError::MissingMeta {
            what: "degrees",
            source: source.describe(),
        }));
    }
    let graph = source.random_access()?;
    Ok(graph.vertices().map(|v| graph.degree(v) as u32).collect())
}

impl Algorithm for StreamingBaseline {
    fn label(&self) -> &str {
        self.kind.label()
    }

    fn capability(&self) -> Capability {
        Capability::Streaming
    }

    fn run(
        &self,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<RunArtifact, PipelineError> {
        let _run = tlp_core::run_span(self.kind.label(), num_partitions);
        let _trial = tlp_core::trial_span(0, Some(self.seed));
        let num_vertices = resolve_num_vertices(source)?;
        let mut placer: Box<dyn StreamingPlacer> = match self.kind {
            StreamingKind::Random => Box::new(RandomState::new(num_partitions, self.seed)?),
            StreamingKind::Dbh => {
                let degrees = resolve_degrees(source)?;
                Box::new(DbhState::new(degrees, num_partitions, self.seed)?)
            }
            StreamingKind::Greedy => Box::new(GreedyState::new(num_vertices, num_partitions)?),
            StreamingKind::Hdrf => {
                Box::new(HdrfState::new(num_vertices, num_partitions, HDRF_LAMBDA)?)
            }
        };

        // Pass 1: place every edge in arrival order, recording assignments
        // and the replica/load sides of the metrics.
        let mut metrics = StreamedMetrics::new(num_vertices, num_partitions);
        let mut assignments: Vec<PartitionId> = Vec::new();
        let start = std::time::Instant::now();
        let stats = {
            let _pass = tlp_obs::span("pass");
            source.stream_pass(&mut |chunk| {
                tlp_obs::counter("stream.chunk", 1);
                tlp_obs::counter("stream.edges", chunk.len() as u64);
                for e in chunk {
                    let q = placer.place(e.source(), e.target());
                    metrics.observe_assignment(e.source(), e.target(), q);
                    assignments.push(q);
                }
            })?
        };
        let seconds = start.elapsed().as_secs_f64();

        // Pass 2: replay the (deterministic) stream to count external
        // incidences against the final replica sets.
        let mut index = 0usize;
        {
            let _pass = tlp_obs::span("pass");
            source.stream_pass(&mut |chunk| {
                tlp_obs::counter("stream.chunk", 1);
                tlp_obs::counter("stream.edges", chunk.len() as u64);
                for e in chunk {
                    if let Some(&q) = assignments.get(index) {
                        metrics.observe_external(e.source(), e.target(), q);
                    }
                    index += 1;
                }
            })?;
        }
        if index != assignments.len() {
            return Err(PipelineError::Source(SourceError::Corrupt(format!(
                "stream replay mismatch: pass 1 delivered {} edges, pass 2 delivered {index}",
                assignments.len()
            ))));
        }

        tlp_obs::counter("run.edges", assignments.len() as u64);
        let partition = EdgePartition::new(num_partitions, assignments)?;
        let metrics = metrics.finish();
        let mut artifact = RunArtifact::new(self.kind.label(), partition, metrics, seconds);
        artifact.peak_stream_buffer = Some(stats.peak_buffer);
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DbhPartitioner, EdgeOrder, GreedyPartitioner, HdrfPartitioner, RandomPartitioner};
    use tlp_core::{EdgePartitioner, PartitionMetrics};
    use tlp_graph::generators::chung_lu;
    use tlp_graph::CsrSource;

    fn materialized(kind: StreamingKind, seed: u64) -> Box<dyn EdgePartitioner> {
        match kind {
            StreamingKind::Random => Box::new(RandomPartitioner::new(seed)),
            StreamingKind::Dbh => Box::new(DbhPartitioner::new(seed)),
            StreamingKind::Greedy => Box::new(GreedyPartitioner::new(EdgeOrder::Natural)),
            StreamingKind::Hdrf => Box::new(
                HdrfPartitioner::new(EdgeOrder::Natural, HDRF_LAMBDA).expect("valid lambda"),
            ),
        }
    }

    #[test]
    fn streamed_artifacts_match_materialized_partitioners_bit_for_bit() {
        let g = chung_lu(600, 2400, 2.2, 17);
        for kind in [
            StreamingKind::Random,
            StreamingKind::Dbh,
            StreamingKind::Greedy,
            StreamingKind::Hdrf,
        ] {
            let config = AlgoConfig::seeded(23);
            let algo = StreamingBaseline::new(kind, &config);
            let artifact = algo.run(&mut CsrSource::new(&g), 8).expect("run");
            let direct = materialized(kind, 23).partition(&g, 8).expect("direct");
            assert_eq!(artifact.partition, direct, "{kind:?} assignment drifted");
            assert_eq!(
                artifact.metrics,
                PartitionMetrics::compute(&g, &direct),
                "{kind:?} streamed metrics drifted from the canonical computation"
            );
            assert!(artifact.peak_stream_buffer.is_some());
        }
    }
}
