//! Uniform random edge assignment (the paper's "Random" baseline).

use crate::streaming::{partition_stream, RandomState};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError};
use tlp_graph::GraphView;
use tlp_store::CsrEdgeStream;

/// Assigns every edge to a uniformly random partition.
///
/// The paper treats Random's replication factor as the quality floor: it is
/// fast and perfectly balanced in expectation but replicates aggressively.
/// Deterministic per seed (a stateless per-edge hash, so the assignment of
/// one edge never depends on the others).
///
/// # Example
///
/// ```
/// use tlp_baselines::RandomPartitioner;
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::erdos_renyi;
///
/// let g = erdos_renyi(50, 200, 1);
/// let part = RandomPartitioner::new(42).partition(&g, 4)?;
/// assert_eq!(part.num_edges(), 200);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a random partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPartitioner { seed }
    }
}

impl EdgePartitioner for RandomPartitioner {
    fn name(&self) -> &str {
        "Random"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let mut placer = RandomState::new(num_partitions, self.seed)?;
        let mut stream = CsrEdgeStream::new(graph, usize::MAX);
        partition_stream(&mut placer, &mut stream)
            .map_err(|e| PartitionError::InvalidAssignment(e.to_string()))?
            .into_partition()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::generators::erdos_renyi;

    #[test]
    fn covers_all_edges_roughly_evenly() {
        let g = erdos_renyi(100, 2000, 3);
        let part = RandomPartitioner::new(1).partition(&g, 10).unwrap();
        let counts = part.edge_counts();
        assert_eq!(counts.iter().sum::<usize>(), 2000);
        // Expect every partition within 3 sigma of 200.
        for &c in &counts {
            assert!((100..=300).contains(&c), "unbalanced count {c}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(40, 100, 2);
        let a = RandomPartitioner::new(5).partition(&g, 3).unwrap();
        let b = RandomPartitioner::new(5).partition(&g, 3).unwrap();
        let c = RandomPartitioner::new(6).partition(&g, 3).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = erdos_renyi(10, 20, 1);
        assert!(RandomPartitioner::new(0).partition(&g, 0).is_err());
    }
}
