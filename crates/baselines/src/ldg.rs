//! Linear deterministic greedy (LDG) vertex streaming, Stanton & Kliot,
//! KDD 2012.

use crate::stream::{vertex_order, VertexOrder};
use crate::util::least_loaded;
use crate::vertex_to_edge::{derive_edge_partition, VertexPartition};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::GraphView;

/// LDG streams vertices and places each into the partition holding most of
/// its already-placed neighbors, damped by a fullness penalty:
///
/// ```text
/// argmax_i  |N(v) ∩ P_i| * (1 - |P_i| / C),    C = slack * n / p
/// ```
///
/// Ties go to the less-loaded partition. The resulting vertex partition is
/// converted to an edge partition with the standard endpoint rule (see
/// [`crate::derive_edge_partition`]).
///
/// # Example
///
/// ```
/// use tlp_baselines::{LdgPartitioner, VertexOrder};
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(400, 1_600, 2.2, 5);
/// let ldg = LdgPartitioner::new(VertexOrder::Random(7));
/// let part = ldg.partition(&g, 8)?;
/// assert_eq!(part.num_edges(), 1_600);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    order: VertexOrder,
    slack: f64,
}

impl Default for LdgPartitioner {
    fn default() -> Self {
        LdgPartitioner::new(VertexOrder::Random(0))
    }
}

impl LdgPartitioner {
    /// Creates an LDG partitioner with the standard 10% capacity slack.
    pub fn new(order: VertexOrder) -> Self {
        LdgPartitioner { order, slack: 1.1 }
    }

    /// Overrides the capacity slack multiplier (must be `>= 1`).
    #[must_use]
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Runs the vertex-streaming phase only.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] if `num_partitions == 0`
    /// and [`PartitionError::InvalidParameter`] for a slack below 1.
    pub fn partition_vertices<'a>(
        &self,
        graph: impl Into<GraphView<'a>>,
        num_partitions: usize,
    ) -> Result<VertexPartition, PartitionError> {
        let graph = graph.into();
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if self.slack.is_nan() || self.slack < 1.0 {
            return Err(PartitionError::InvalidParameter {
                name: "slack",
                value: self.slack,
                constraint: "must be >= 1",
            });
        }
        let n = graph.num_vertices();
        let p = num_partitions;
        let capacity = (self.slack * n as f64 / p as f64).ceil().max(1.0);
        let mut assignment: Vec<PartitionId> = vec![PartitionId::MAX; n];
        let mut sizes = vec![0usize; p];
        let mut neighbor_counts = vec![0usize; p];

        for v in vertex_order(graph, self.order) {
            neighbor_counts.fill(0);
            for &w in graph.neighbors(v) {
                let pid = assignment[w as usize];
                if pid != PartitionId::MAX {
                    neighbor_counts[pid as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..p {
                if sizes[i] as f64 >= capacity {
                    continue;
                }
                let score = neighbor_counts[i] as f64 * (1.0 - sizes[i] as f64 / capacity);
                if score > best_score
                    || (score == best_score && (sizes[i], i) < (sizes[best], best))
                {
                    best = i;
                    best_score = score;
                }
            }
            if best_score == f64::NEG_INFINITY {
                // All partitions at capacity (possible only via rounding):
                // fall back to least loaded.
                best = least_loaded(&sizes, 0..p).expect("p >= 1");
            }
            assignment[v as usize] = best as PartitionId;
            sizes[best] += 1;
        }
        VertexPartition::new(p, assignment)
    }
}

impl EdgePartitioner for LdgPartitioner {
    fn name(&self) -> &str {
        "LDG"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let vp = self.partition_vertices(graph, num_partitions)?;
        Ok(derive_edge_partition(graph, &vp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::{chung_lu, erdos_renyi};
    use tlp_graph::GraphBuilder;

    #[test]
    fn vertex_partition_respects_capacity() {
        let g = erdos_renyi(100, 300, 1);
        let ldg = LdgPartitioner::new(VertexOrder::Natural);
        let vp = ldg.partition_vertices(&g, 4).unwrap();
        let cap = (1.1f64 * 100.0 / 4.0).ceil() as usize;
        for &c in &vp.vertex_counts() {
            assert!(c <= cap, "partition of {c} vertices exceeds capacity {cap}");
        }
    }

    #[test]
    fn keeps_communities_together() {
        // Two cliques joined by one edge: LDG should keep each clique whole.
        let mut b = GraphBuilder::new();
        for a in 0..5u32 {
            for c in (a + 1)..5 {
                b.push_edge(a, c);
                b.push_edge(a + 5, c + 5);
            }
        }
        b.push_edge(0, 5);
        let g = b.build();
        let ldg = LdgPartitioner::new(VertexOrder::Bfs);
        let vp = ldg.partition_vertices(&g, 2).unwrap();
        // LDG may pull the bridge endpoint across (capacity permitting),
        // cutting its 4 clique edges; anything near-minimal beats the ~10
        // expected of a random split of this 21-edge graph.
        assert!(vp.edge_cut(&g) <= 5, "cut = {}", vp.edge_cut(&g));
    }

    #[test]
    fn beats_random_on_structured_graphs() {
        let g = chung_lu(600, 3000, 2.2, 7);
        let ldg = LdgPartitioner::new(VertexOrder::Random(3))
            .partition(&g, 10)
            .unwrap();
        let rnd = crate::RandomPartitioner::new(3).partition(&g, 10).unwrap();
        let rf_ldg = PartitionMetrics::compute(&g, &ldg).replication_factor;
        let rf_rnd = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_ldg < rf_rnd, "LDG {rf_ldg} vs Random {rf_rnd}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        assert!(LdgPartitioner::default().partition(&g, 0).is_err());
        assert!(LdgPartitioner::default()
            .with_slack(0.5)
            .partition(&g, 2)
            .is_err());
    }

    #[test]
    fn deterministic_per_order() {
        let g = erdos_renyi(80, 240, 5);
        let a = LdgPartitioner::new(VertexOrder::Random(9))
            .partition(&g, 4)
            .unwrap();
        let b = LdgPartitioner::new(VertexOrder::Random(9))
            .partition(&g, 4)
            .unwrap();
        assert_eq!(a, b);
    }
}
