//! PowerGraph's greedy streaming edge placement (Gonzalez et al., OSDI 2012).

use crate::stream::{edge_order, EdgeOrder};
use crate::streaming::{partition_stream, GreedyState};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError, PartitionId};
use tlp_graph::GraphView;
use tlp_store::CsrEdgeStream;

/// The greedy heuristic of PowerGraph's "oblivious" edge placement.
///
/// For each arriving edge `(u, v)`, with `A(x)` the set of partitions where
/// `x` already has edges:
///
/// 1. if `A(u) ∩ A(v)` is non-empty, pick its least-loaded member;
/// 2. else if both are non-empty, pick the least-loaded of `A(u) ∪ A(v)`;
/// 3. else if one is non-empty, pick its least-loaded member;
/// 4. else pick the globally least-loaded partition.
///
/// # Example
///
/// ```
/// use tlp_baselines::{EdgeOrder, GreedyPartitioner};
/// use tlp_core::EdgePartitioner;
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(300, 1_500, 2.2, 2);
/// let part = GreedyPartitioner::new(EdgeOrder::Random(4)).partition(&g, 6)?;
/// assert_eq!(part.num_edges(), 1_500);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GreedyPartitioner {
    order: EdgeOrder,
}

impl Default for GreedyPartitioner {
    fn default() -> Self {
        GreedyPartitioner::new(EdgeOrder::Random(0))
    }
}

impl GreedyPartitioner {
    /// Creates a greedy partitioner streaming edges in `order`.
    pub fn new(order: EdgeOrder) -> Self {
        GreedyPartitioner { order }
    }
}

impl EdgePartitioner for GreedyPartitioner {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let mut placer = GreedyState::new(graph.num_vertices(), num_partitions)?;
        let order = edge_order(graph, self.order);
        let mut stream = CsrEdgeStream::with_order(graph, order.clone(), usize::MAX);
        let streamed = partition_stream(&mut placer, &mut stream)
            .map_err(|e| PartitionError::InvalidAssignment(e.to_string()))?;
        // Scatter arrival-order decisions back to edge ids.
        let mut assignment = vec![0 as PartitionId; graph.num_edges()];
        for (i, &eid) in order.iter().enumerate() {
            assignment[eid as usize] = streamed.assignments[i];
        }
        EdgePartition::new(num_partitions, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::chung_lu;
    use tlp_graph::GraphBuilder;

    #[test]
    fn reuses_shared_replica_partitions() {
        // Triangle: after two edges, the third must join an existing
        // replica partition rather than opening a new one.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (0, 2)])
            .build();
        let part = GreedyPartitioner::new(EdgeOrder::Natural)
            .partition(&g, 3)
            .unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        // Greedy keeps a triangle within at most two partitions.
        let used = m.edge_counts.iter().filter(|&&c| c > 0).count();
        assert!(used <= 2, "triangle scattered over {used} partitions");
    }

    #[test]
    fn beats_random_on_power_law() {
        let g = chung_lu(800, 4000, 2.1, 6);
        let greedy = GreedyPartitioner::new(EdgeOrder::Random(1))
            .partition(&g, 10)
            .unwrap();
        let rnd = crate::RandomPartitioner::new(1).partition(&g, 10).unwrap();
        let rf_g = PartitionMetrics::compute(&g, &greedy).replication_factor;
        let rf_r = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_g < rf_r, "Greedy {rf_g} vs Random {rf_r}");
    }

    #[test]
    fn loads_stay_reasonably_balanced() {
        let g = chung_lu(500, 2500, 2.2, 8);
        let part = GreedyPartitioner::new(EdgeOrder::Random(2))
            .partition(&g, 5)
            .unwrap();
        let counts = part.edge_counts();
        let max = *counts.iter().max().unwrap();
        let ideal = 2500 / 5;
        assert!(max <= 2 * ideal, "max load {max} vs ideal {ideal}");
    }

    #[test]
    fn deterministic_and_rejects_zero() {
        let g = chung_lu(100, 400, 2.2, 3);
        let a = GreedyPartitioner::default().partition(&g, 4).unwrap();
        let b = GreedyPartitioner::default().partition(&g, 4).unwrap();
        assert_eq!(a, b);
        assert!(GreedyPartitioner::default().partition(&g, 0).is_err());
    }
}
