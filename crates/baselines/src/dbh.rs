//! Degree-based hashing (DBH), Xie et al., NIPS 2014.

use crate::streaming::{partition_stream, DbhState};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError};
use tlp_graph::GraphView;
use tlp_store::CsrEdgeStream;

/// Degree-based hashing: each edge is placed by hashing its *lower-degree*
/// endpoint.
///
/// The intuition for power-law graphs: cutting (replicating) the few
/// high-degree hubs is unavoidable, so DBH deliberately keeps the many
/// low-degree vertices whole — an edge follows its low-degree endpoint, so
/// that endpoint's edges all land in one partition.
///
/// # Example
///
/// ```
/// use tlp_baselines::DbhPartitioner;
/// use tlp_core::{EdgePartitioner, PartitionMetrics};
/// use tlp_graph::generators::chung_lu;
///
/// let g = chung_lu(500, 2_500, 2.1, 3);
/// let part = DbhPartitioner::new(0).partition(&g, 8)?;
/// let m = PartitionMetrics::compute(&g, &part);
/// assert!(m.replication_factor >= 1.0);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct DbhPartitioner {
    seed: u64,
}

impl DbhPartitioner {
    /// Creates a DBH partitioner; `seed` perturbs the vertex hash.
    pub fn new(seed: u64) -> Self {
        DbhPartitioner { seed }
    }
}

impl EdgePartitioner for DbhPartitioner {
    fn name(&self) -> &str {
        "DBH"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let degrees: Vec<u32> = graph.vertices().map(|v| graph.degree(v) as u32).collect();
        let mut placer = DbhState::new(degrees, num_partitions, self.seed)?;
        let mut stream = CsrEdgeStream::new(graph, usize::MAX);
        partition_stream(&mut placer, &mut stream)
            .map_err(|e| PartitionError::InvalidAssignment(e.to_string()))?
            .into_partition()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::chung_lu;
    use tlp_graph::GraphBuilder;

    #[test]
    fn low_degree_vertices_are_never_replicated() {
        // In a star, every leaf has degree 1 < center degree, so each edge
        // hashes by its leaf: leaves are whole, only the center replicates.
        let g = GraphBuilder::new()
            .add_edges((1..=20).map(|v| (0, v)))
            .build();
        let part = DbhPartitioner::new(3).partition(&g, 4).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.spanned_vertices, 1); // only the hub
    }

    #[test]
    fn beats_random_on_power_law_graphs() {
        let g = chung_lu(1000, 5000, 2.0, 9);
        let p = 10;
        let dbh = DbhPartitioner::new(1).partition(&g, p).unwrap();
        let rnd = crate::RandomPartitioner::new(1).partition(&g, p).unwrap();
        let rf_dbh = PartitionMetrics::compute(&g, &dbh).replication_factor;
        let rf_rnd = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_dbh < rf_rnd, "DBH {rf_dbh} vs Random {rf_rnd}");
    }

    #[test]
    fn deterministic_and_total() {
        let g = chung_lu(200, 800, 2.2, 4);
        let a = DbhPartitioner::new(7).partition(&g, 5).unwrap();
        let b = DbhPartitioner::new(7).partition(&g, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_counts().iter().sum::<usize>(), 800);
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        assert!(DbhPartitioner::new(0).partition(&g, 0).is_err());
    }
}
