//! Baseline edge partitioners used as comparators in the TLP evaluation.
//!
//! The paper's Fig. 8 line-up (besides METIS, which lives in `tlp-metis`):
//!
//! * [`RandomPartitioner`] — uniform random edge assignment, the quality
//!   floor.
//! * [`DbhPartitioner`] — degree-based hashing (Xie et al., NIPS 2014).
//! * [`LdgPartitioner`] — linear deterministic greedy vertex streaming
//!   (Stanton & Kliot, KDD 2012), converted to an edge partition.
//!
//! Extensions from the surrounding literature, useful for wider ablations:
//!
//! * [`GreedyPartitioner`] — PowerGraph's greedy edge placement.
//! * [`HdrfPartitioner`] — high-degree replicated first (Petroni et al.).
//! * [`FennelPartitioner`] — FENNEL vertex streaming, converted to edges.
//!
//! All partitioners implement [`tlp_core::EdgePartitioner`] and are
//! deterministic given their seeds.
//!
//! The edge-streaming heuristics (Random, DBH, Greedy, HDRF) are factored
//! into [`StreamingPlacer`] state machines in [`streaming`], so the same
//! placement code also runs out-of-core over any [`tlp_store::EdgeStream`]
//! (including `.tlpg` files on disk) via [`partition_stream`], holding at
//! most a caller-chosen budget of edges in memory. Streamed and
//! materialized runs of the same heuristic over the same arrival order are
//! bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dbh;
mod fennel;
mod greedy;
mod hdrf;
mod ldg;
mod ne;
mod pipeline;
mod random;
mod stream;
pub mod streaming;
mod util;
mod vertex_to_edge;

pub use dbh::DbhPartitioner;
pub use fennel::FennelPartitioner;
pub use greedy::GreedyPartitioner;
pub use hdrf::HdrfPartitioner;
pub use ldg::LdgPartitioner;
pub use ne::{NePartitioner, NePolicy};
pub use pipeline::{StreamingBaseline, StreamingKind, HDRF_LAMBDA};
pub use random::RandomPartitioner;
pub use stream::{edge_order, vertex_order, EdgeOrder, VertexOrder};
pub use streaming::{
    partition_stream, DbhState, GreedyState, HdrfState, RandomState, StreamedPartition,
    StreamingPlacer,
};
pub use vertex_to_edge::{derive_edge_partition, VertexPartition};
