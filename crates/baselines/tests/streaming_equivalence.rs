//! Satellite (c): the streamed baselines must be bit-identical to their
//! materialized counterparts at every buffer budget — including when the
//! edges come off disk through a `.tlpg` binary stream.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlp_baselines::{
    partition_stream, DbhPartitioner, DbhState, EdgeOrder, GreedyPartitioner, GreedyState,
    HdrfPartitioner, HdrfState, RandomPartitioner, RandomState, StreamingPlacer,
};
use tlp_core::{EdgePartition, EdgePartitioner};
use tlp_graph::generators::{chung_lu, erdos_renyi};
use tlp_graph::CsrGraph;
use tlp_store::{write_graph, BinaryEdgeStream, CsrEdgeStream, EdgeStream, WriteOptions};

const BUDGETS: [usize; 4] = [1, 64, 4096, usize::MAX];
const P: usize = 6;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn placer_for(
    name: &str,
    num_vertices: usize,
    degrees: Option<Vec<u32>>,
) -> Box<dyn StreamingPlacer> {
    match name {
        "hdrf" => Box::new(HdrfState::new(num_vertices, P, 1.1).unwrap()),
        "greedy" => Box::new(GreedyState::new(num_vertices, P).unwrap()),
        "dbh" => Box::new(DbhState::new(degrees.unwrap(), P, 7).unwrap()),
        "random" => Box::new(RandomState::new(P, 7).unwrap()),
        other => panic!("unknown placer {other}"),
    }
}

fn materialized_for(name: &str, graph: &CsrGraph) -> EdgePartition {
    match name {
        "hdrf" => HdrfPartitioner::new(EdgeOrder::Natural, 1.1)
            .unwrap()
            .partition(graph, P)
            .unwrap(),
        "greedy" => GreedyPartitioner::new(EdgeOrder::Natural)
            .partition(graph, P)
            .unwrap(),
        "dbh" => DbhPartitioner::new(7).partition(graph, P).unwrap(),
        "random" => RandomPartitioner::new(7).partition(graph, P).unwrap(),
        other => panic!("unknown partitioner {other}"),
    }
}

fn run_stream(
    name: &str,
    stream: &mut dyn EdgeStream,
    num_vertices: usize,
) -> (EdgePartition, usize) {
    let degrees = stream.meta().degrees.clone();
    let mut placer = placer_for(name, num_vertices, degrees);
    let streamed = partition_stream(placer.as_mut(), stream).unwrap();
    let peak = streamed.peak_buffer;
    (streamed.into_partition().unwrap(), peak)
}

#[test]
fn streamed_matches_materialized_at_every_budget() {
    let graphs = [
        ("chung_lu", chung_lu(400, 1600, 2.2, 17)),
        ("erdos_renyi", erdos_renyi(400, 1600, 18)),
    ];
    for (gname, graph) in &graphs {
        for name in ["hdrf", "greedy", "dbh", "random"] {
            let reference = materialized_for(name, graph);
            for budget in BUDGETS {
                let mut stream = CsrEdgeStream::new(graph, budget);
                let (streamed, peak) = run_stream(name, &mut stream, graph.num_vertices());
                assert_eq!(
                    streamed, reference,
                    "{name} on {gname} diverged at budget {budget}"
                );
                assert!(
                    peak <= budget,
                    "{name} on {gname}: peak buffer {peak} exceeds budget {budget}"
                );
            }
        }
    }
}

#[test]
fn streamed_from_binary_file_matches_materialized() {
    let graph = chung_lu(400, 1600, 2.2, 19);
    let dir = std::env::temp_dir().join(format!(
        "tlp-stream-eq-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("g.tlpg");
    write_graph(&path, &graph, &WriteOptions::default()).unwrap();

    for name in ["hdrf", "greedy", "dbh", "random"] {
        let reference = materialized_for(name, &graph);
        for budget in BUDGETS {
            let mut stream = BinaryEdgeStream::open(&path, budget).unwrap();
            let (streamed, peak) = run_stream(name, &mut stream, graph.num_vertices());
            assert_eq!(
                streamed, reference,
                "{name} from disk diverged at budget {budget}"
            );
            assert!(peak <= budget);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn non_natural_orders_still_roundtrip_through_the_stream_layer() {
    // The materialized partitioners now pump CsrEdgeStream internally for
    // every order; determinism across repeated runs must be preserved.
    let graph = chung_lu(300, 1200, 2.1, 23);
    for order in [EdgeOrder::Natural, EdgeOrder::Random(5), EdgeOrder::Bfs] {
        let a = HdrfPartitioner::new(order, 1.1)
            .unwrap()
            .partition(&graph, P)
            .unwrap();
        let b = HdrfPartitioner::new(order, 1.1)
            .unwrap()
            .partition(&graph, P)
            .unwrap();
        assert_eq!(a, b, "HDRF not deterministic for {order:?}");
        let g = GreedyPartitioner::new(order).partition(&graph, P).unwrap();
        let h = GreedyPartitioner::new(order).partition(&graph, P).unwrap();
        assert_eq!(g, h, "Greedy not deterministic for {order:?}");
    }
}
