//! Single-stage ablations: pure Stage I and pure Stage II partitioners.
//!
//! These are the `R = 1` and `R = 0` extremes of TLP_R, named for use in
//! ablation line-ups (the paper's conclusions (1)-(2) in Section IV-C show
//! both are dominated by the two-stage method).

use crate::{EdgePartition, EdgePartitioner, EdgeRatioLocalPartitioner, PartitionError, TlpConfig};
use tlp_graph::GraphView;

/// Local partitioner that always applies the Stage I criterion (Eq. 7).
///
/// Equivalent to TLP_R with `R = 1`.
#[derive(Clone, Copy, Debug)]
pub struct StageOneOnlyPartitioner {
    inner: EdgeRatioLocalPartitioner,
}

impl StageOneOnlyPartitioner {
    /// Creates the pure Stage I partitioner.
    pub fn new(config: TlpConfig) -> Self {
        let inner = EdgeRatioLocalPartitioner::new(config, 1.0)
            .expect("1.0 is a valid ratio")
            .with_name("StageI-only");
        StageOneOnlyPartitioner { inner }
    }
}

impl EdgePartitioner for StageOneOnlyPartitioner {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        self.inner.partition_view(graph, num_partitions)
    }
}

/// Local partitioner that always applies the Stage II criterion (Eq. 9).
///
/// Equivalent to TLP_R with `R = 0`.
#[derive(Clone, Copy, Debug)]
pub struct StageTwoOnlyPartitioner {
    inner: EdgeRatioLocalPartitioner,
}

impl StageTwoOnlyPartitioner {
    /// Creates the pure Stage II partitioner.
    pub fn new(config: TlpConfig) -> Self {
        let inner = EdgeRatioLocalPartitioner::new(config, 0.0)
            .expect("0.0 is a valid ratio")
            .with_name("StageII-only");
        StageTwoOnlyPartitioner { inner }
    }
}

impl EdgePartitioner for StageTwoOnlyPartitioner {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        self.inner.partition_view(graph, num_partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::generators::erdos_renyi;

    #[test]
    fn names_are_distinct() {
        let one = StageOneOnlyPartitioner::new(TlpConfig::new());
        let two = StageTwoOnlyPartitioner::new(TlpConfig::new());
        assert_eq!(one.name(), "StageI-only");
        assert_eq!(two.name(), "StageII-only");
    }

    #[test]
    fn both_produce_total_partitions() {
        let g = erdos_renyi(120, 480, 4);
        for part in [
            StageOneOnlyPartitioner::new(TlpConfig::new().seed(1))
                .partition(&g, 6)
                .unwrap(),
            StageTwoOnlyPartitioner::new(TlpConfig::new().seed(1))
                .partition(&g, 6)
                .unwrap(),
        ] {
            assert_eq!(part.edge_counts().iter().sum::<usize>(), g.num_edges());
        }
    }
}
