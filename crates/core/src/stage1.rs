//! Stage I selection criterion (Eq. 7 of the paper).
//!
//! In Stage I the partition is still loose (`M(P_k) <= 1`), and the paper
//! selects the frontier vertex that is *close to the partition* and has a
//! *high degree*:
//!
//! ```text
//! mu_s1(v_i) = max_{v_j in N(v_i) ∩ P_k}  |N(v_i) ∩ N(v_j)| / |N(v_j)|
//! ```
//!
//! Neighborhoods are those of the input graph (the criterion is a structural
//! closeness measure borrowed from local community detection, not a residual
//! quantity). `tlp-graph` CSR adjacency lists are sorted, so intersections
//! run on the kernels in [`tlp_graph::intersect`]: an adaptive merge/gallop
//! for one-off terms here, and the engine's
//! [`IntersectionKernel`](tlp_graph::intersect::IntersectionKernel) (marked
//! scratch + per-admission count cache) on the hot incremental path.

use tlp_graph::{GraphView, VertexId};

// The adaptive intersection primitive lives in the graph crate's kernel
// layer; re-exported because `mu_s1`'s definition is stated in terms of it.
pub use tlp_graph::intersect::sorted_intersection_size;

/// The single-member closeness term `|N(v_i) ∩ N(v_j)| / |N(v_j)|`.
///
/// `mu_s1` is the maximum of this over the members `v_j` adjacent to `v_i`;
/// the driver maintains that maximum incrementally as members join.
///
/// Returns 0 when `v_j` has no neighbors (cannot happen for a member of a
/// growing partition, but keeps the function total).
pub fn closeness_term<'a>(graph: impl Into<GraphView<'a>>, v_i: VertexId, v_j: VertexId) -> f64 {
    let graph = graph.into();
    let nj = graph.neighbors(v_j);
    if nj.is_empty() {
        return 0.0;
    }
    sorted_intersection_size(graph.neighbors(v_i), nj) as f64 / nj.len() as f64
}

/// Computes `mu_s1(v_i)` from scratch against a membership predicate.
///
/// The driver uses incremental maxima instead; this reference implementation
/// backs the tests and is handy for one-off analysis.
///
/// # Example
///
/// Reproduces the paper's Fig. 6(a) walk-through: with partition
/// `P_k = {b, c, d}` of the drawn graph, candidate `e` scores highest.
///
/// ```
/// use tlp_core::stage1::mu_s1;
/// use tlp_graph::GraphBuilder;
///
/// // Fig. 6(a): P_k = {1, 2, 3}; candidates a=0, e=4, g=5.
/// let g = GraphBuilder::new()
///     .add_edges([
///         (0, 1),          // a - b
///         (1, 2), (1, 3),  // b - c, b - d
///         (2, 3),          // c - d
///         (4, 2), (4, 3),  // e - c, e - d
///         (4, 5),          // e - g
///         (5, 3),          // g - d
///         (5, 6), (4, 6),  // g - h, e - h (outside edges)
///         (0, 7),          // a - i (outside edge)
///     ])
///     .build();
/// let member = |v: u32| v == 1 || v == 2 || v == 3;
/// let score_a = mu_s1(&g, 0, member);
/// let score_e = mu_s1(&g, 4, member);
/// let score_g = mu_s1(&g, 5, member);
/// assert!(score_e > score_a && score_e > score_g);
/// ```
pub fn mu_s1<'a, F>(graph: impl Into<GraphView<'a>>, v_i: VertexId, mut is_member: F) -> f64
where
    F: FnMut(VertexId) -> bool,
{
    let graph = graph.into();
    let mut best = 0.0f64;
    for &v_j in graph.neighbors(v_i) {
        if is_member(v_j) {
            let term = closeness_term(graph, v_i, v_j);
            if term > best {
                best = term;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn intersection_basic_cases() {
        assert_eq!(sorted_intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(sorted_intersection_size(&[1, 2, 3], &[4, 5]), 0);
        assert_eq!(sorted_intersection_size(&[], &[]), 0);
        assert_eq!(sorted_intersection_size(&[1, 5, 7], &[5]), 1);
    }

    #[test]
    fn closeness_term_matches_hand_computation() {
        // Triangle 0-1-2 plus pendant 3 on vertex 1.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (1, 3)])
            .build();
        // N(0) = {1,2}; N(1) = {0,2,3}. Intersection = {2}. |N(1)| = 3.
        assert!((closeness_term(&g, 0, 1) - 1.0 / 3.0).abs() < 1e-12);
        // N(3) = {1}; N(0) ∩ N(3) = {1} ∩ {1,2}... N(3)={1}, N(0)={1,2} -> {1}.
        assert!((closeness_term(&g, 0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mu_s1_takes_max_over_member_neighbors() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (1, 3), (0, 3)])
            .build();
        // Candidate 3 with members {0, 1}: terms against both, take max.
        let t0 = closeness_term(&g, 3, 0);
        let t1 = closeness_term(&g, 3, 1);
        let m = mu_s1(&g, 3, |v| v == 0 || v == 1);
        assert!((m - t0.max(t1)).abs() < 1e-12);
    }

    #[test]
    fn mu_s1_zero_when_no_member_neighbor() {
        let g = GraphBuilder::new().add_edges([(0, 1), (2, 3)]).build();
        assert_eq!(mu_s1(&g, 0, |v| v == 2), 0.0);
    }

    #[test]
    fn higher_degree_candidate_wins_at_equal_attachment() {
        // Paper Fig. 6 rationale: e and a have equally many edges into P_k,
        // but e's higher degree gives it more shared neighbors.
        let g = GraphBuilder::new()
            .add_edges([
                (0, 1),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 2),
                (4, 3),
                (4, 5),
                (5, 3),
            ])
            .build();
        let member = |v: u32| (1..=3).contains(&v);
        assert!(mu_s1(&g, 4, member) >= mu_s1(&g, 0, member));
    }

    #[test]
    fn adaptive_intersection_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let la = rng.gen_range(0..40);
            let lb = rng.gen_range(0..2000);
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0..500)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0..500)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let naive = a.iter().filter(|x| b.contains(x)).count();
            assert_eq!(sorted_intersection_size(&a, &b), naive);
            assert_eq!(sorted_intersection_size(&b, &a), naive);
        }
    }
}
