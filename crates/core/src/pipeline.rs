//! The unified partitioning pipeline: [`Algorithm`], [`AlgorithmRegistry`],
//! and [`RunArtifact`].
//!
//! Every partitioner in the workspace — TLP and its ablations, the
//! streaming baselines, NE, METIS — is exposed as an [`Algorithm`]: a boxed
//! runner built from one [`AlgoConfig`] that consumes any
//! [`EdgeSource`](tlp_graph::EdgeSource) and emits one [`RunArtifact`]
//! (assignment + canonical [`PartitionMetrics`] + timing + provenance).
//! Call sites (the CLI, the experiment harness, tests, CI scripts) look
//! algorithms up **by name** in an [`AlgorithmRegistry`] instead of wiring
//! concrete types per binary.
//!
//! Capability dispatch: an algorithm declares [`Capability::RandomAccess`]
//! (needs the materialized [`CsrGraph`](tlp_graph::CsrGraph)) or
//! [`Capability::Streaming`] (bounded-memory passes suffice). Running a
//! random-access algorithm against a streaming-only source fails with the
//! typed [`PipelineError::NeedsRandomAccess`] — never a silent fallback.
//!
//! This module defines the mechanism; the `tlp-pipeline` crate registers
//! the workspace's built-in algorithms (it can see every algorithm crate,
//! which `tlp-core` cannot).

use crate::engine::{run_staged, ModularitySwitch};
use crate::{
    EdgePartition, EdgePartitioner, ParallelTrialRunner, PartitionError, PartitionMetrics,
    TlpConfig, Trace,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;
use tlp_graph::{EdgeSource, SourceError};

/// What kind of edge access an algorithm needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Capability {
    /// Needs the whole graph materialized (CSR) — cannot run from a
    /// strictly budgeted stream.
    RandomAccess,
    /// Runs in sequential bounded-memory passes; works from any source.
    Streaming,
}

impl Capability {
    /// Short human-readable label ("csr-only" / "streaming").
    pub fn label(self) -> &'static str {
        match self {
            Capability::RandomAccess => "csr-only",
            Capability::Streaming => "streaming",
        }
    }
}

/// Error from building or running a pipeline algorithm.
#[derive(Debug)]
pub enum PipelineError {
    /// The underlying partitioner failed.
    Partition(PartitionError),
    /// The edge source failed.
    Source(SourceError),
    /// A random-access algorithm was run against a streaming-only source.
    NeedsRandomAccess {
        /// The algorithm's label.
        algorithm: String,
        /// The refusing source's description.
        source: String,
    },
    /// No registered algorithm has this name.
    UnknownAlgorithm(String),
    /// The algorithm spec string or its parameter is invalid.
    Spec(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Partition(e) => write!(f, "{e}"),
            PipelineError::Source(e) => write!(f, "{e}"),
            PipelineError::NeedsRandomAccess { algorithm, source } => write!(
                f,
                "algorithm {algorithm} needs random access, but source {source} is streaming-only"
            ),
            PipelineError::UnknownAlgorithm(name) => write!(f, "unknown algorithm {name:?}"),
            PipelineError::Spec(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Partition(e) => Some(e),
            PipelineError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for PipelineError {
    fn from(e: PartitionError) -> Self {
        PipelineError::Partition(e)
    }
}

impl From<SourceError> for PipelineError {
    fn from(e: SourceError) -> Self {
        PipelineError::Source(e)
    }
}

/// The unified configuration every registry builder receives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlgoConfig {
    /// Base RNG seed.
    pub seed: u64,
    /// Worker-thread cap for multi-trial runs (0 = all available cores).
    pub threads: usize,
    /// Number of independently seeded trials (TLP only; best RF wins).
    pub trials: usize,
    /// Record the per-round selection trace (TLP family, single trial).
    pub record_trace: bool,
    /// Algorithm parameter from a `name=VALUE` spec (e.g. the `R` of
    /// `tlp-r=0.3`); filled in by [`AlgorithmRegistry::build`].
    pub param: Option<f64>,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig {
            seed: 42,
            threads: 0,
            trials: 1,
            record_trace: false,
            param: None,
        }
    }
}

impl AlgoConfig {
    /// A default config with the given seed.
    pub fn seeded(seed: u64) -> Self {
        AlgoConfig {
            seed,
            ..AlgoConfig::default()
        }
    }
}

/// What one pipeline run produced — the single result type every
/// algorithm emits and every consumer (harness reporters, the CLI,
/// `tlp-sim`) reads.
#[derive(Clone, Debug)]
pub struct RunArtifact {
    /// The algorithm's display label (e.g. "TLP", "HDRF").
    pub algorithm: String,
    /// Number of partitions requested.
    pub num_partitions: usize,
    /// The assignment. For streaming runs the indices are arrival order,
    /// which for every canonical-order source coincides with `EdgeId`s.
    pub partition: EdgePartition,
    /// Canonical quality metrics (single-sourced in [`PartitionMetrics`]).
    pub metrics: PartitionMetrics,
    /// Per-round selection trace, when requested and supported.
    pub trace: Option<Trace>,
    /// Wall-clock partitioning time (excludes metric computation).
    pub seconds: f64,
    /// Peak edge-buffer length of the placement pass, for streaming runs.
    pub peak_stream_buffer: Option<usize>,
    /// Per-trial replication factors of a multi-trial run (empty for
    /// single runs); failed trials hold `NaN`.
    pub trial_rfs: Vec<f64>,
    /// Winning trial index of a multi-trial run.
    pub best_trial: Option<usize>,
    /// Partition store directory, when the caller persisted one.
    pub store_dir: Option<PathBuf>,
    /// Checkpoint directory, when the run was checkpointed.
    pub checkpoint_dir: Option<PathBuf>,
    /// Folded observability report, when the run was observed (see
    /// [`AlgorithmRegistry::run_recorded`]).
    pub obs: Option<tlp_obs::ObsReport>,
}

impl RunArtifact {
    /// Assembles the common fields; provenance extras (store/checkpoint
    /// linkage, trial data) start empty and are filled by the producer.
    pub fn new(
        algorithm: impl Into<String>,
        partition: EdgePartition,
        metrics: PartitionMetrics,
        seconds: f64,
    ) -> Self {
        RunArtifact {
            algorithm: algorithm.into(),
            num_partitions: partition.num_partitions(),
            partition,
            metrics,
            trace: None,
            seconds,
            peak_stream_buffer: None,
            trial_rfs: Vec::new(),
            best_trial: None,
            store_dir: None,
            checkpoint_dir: None,
            obs: None,
        }
    }

    /// The headline replication factor.
    pub fn rf(&self) -> f64 {
        self.metrics.replication_factor
    }

    /// The load balance.
    pub fn balance(&self) -> f64 {
        self.metrics.balance
    }

    /// `(min, max)` replication factor over this run's trials (`NaN`
    /// slots are skipped). Falls back to `(rf, rf)` for single runs.
    pub fn rf_spread(&self) -> (f64, f64) {
        if self.trial_rfs.is_empty() {
            return (self.rf(), self.rf());
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &rf in &self.trial_rfs {
            min = min.min(rf);
            max = max.max(rf);
        }
        (min, max)
    }
}

/// A runnable, already-configured partitioning algorithm.
pub trait Algorithm {
    /// Display label (matches the wrapped partitioner's `name()`).
    fn label(&self) -> &str;

    /// Whether this algorithm needs random access or streams.
    fn capability(&self) -> Capability;

    /// Runs the algorithm over `source` and assembles the artifact.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NeedsRandomAccess`] when a random-access algorithm
    /// meets a streaming-only source; otherwise source and partitioner
    /// errors.
    fn run(
        &self,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<RunArtifact, PipelineError>;
}

/// Opens the mandatory `run` span every [`Algorithm::run`] implementation
/// emits (fields: algorithm label and partition count). The span skeleton
/// instrumented runs guarantee is `run` → `trial` → `round`/`pass`.
pub fn run_span(label: &str, num_partitions: usize) -> tlp_obs::SpanGuard {
    tlp_obs::span_with(
        "run",
        vec![
            (
                "algorithm".to_string(),
                tlp_obs::Field::Str(label.to_string()),
            ),
            ("p".to_string(), tlp_obs::Field::U64(num_partitions as u64)),
        ],
    )
}

/// Opens a `trial` span for a single-trial (non-raced) run; multi-trial
/// runs get theirs from the trial runner's replay. `seed` is annotated
/// when the algorithm is seeded.
pub fn trial_span(index: usize, seed: Option<u64>) -> tlp_obs::SpanGuard {
    let mut fields = vec![("index".to_string(), tlp_obs::Field::U64(index as u64))];
    if let Some(seed) = seed {
        fields.push(("seed".to_string(), tlp_obs::Field::U64(seed)));
    }
    tlp_obs::span_with("trial", fields)
}

/// Materializes the source or maps the refusal to the typed capability
/// error.
fn materialize<'s>(
    source: &'s mut dyn EdgeSource,
    algorithm: &str,
) -> Result<tlp_graph::GraphView<'s>, PipelineError> {
    let description = source.describe();
    if !source.supports_random_access() {
        return Err(PipelineError::NeedsRandomAccess {
            algorithm: algorithm.to_string(),
            source: description,
        });
    }
    source.random_access().map_err(PipelineError::Source)
}

/// Adapter: any [`EdgePartitioner`] as a random-access [`Algorithm`].
pub struct MaterializedAlgorithm {
    label: String,
    inner: Box<dyn EdgePartitioner>,
}

impl MaterializedAlgorithm {
    /// Wraps a partitioner; the label is the partitioner's `name()`.
    pub fn new(inner: Box<dyn EdgePartitioner>) -> Self {
        MaterializedAlgorithm {
            label: inner.name().to_string(),
            inner,
        }
    }
}

impl Algorithm for MaterializedAlgorithm {
    fn label(&self) -> &str {
        &self.label
    }

    fn capability(&self) -> Capability {
        Capability::RandomAccess
    }

    fn run(
        &self,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<RunArtifact, PipelineError> {
        let graph = materialize(source, &self.label)?;
        let _run = run_span(&self.label, num_partitions);
        let start = Instant::now();
        let partition = {
            let _trial = trial_span(0, None);
            let _pass = tlp_obs::span("pass");
            self.inner.partition_view(graph, num_partitions)?
        };
        let seconds = start.elapsed().as_secs_f64();
        tlp_obs::counter("run.edges", partition.num_edges() as u64);
        let metrics = PartitionMetrics::compute(graph, &partition);
        Ok(RunArtifact::new(&self.label, partition, metrics, seconds))
    }
}

/// TLP as a pipeline [`Algorithm`]: honors `trials` (racing independently
/// seeded runs, keeping the best RF) and `record_trace` (single trial).
pub struct TlpAlgorithm {
    config: TlpConfig,
}

impl TlpAlgorithm {
    /// Builds TLP from the unified config.
    pub fn new(config: &AlgoConfig) -> Self {
        TlpAlgorithm {
            config: TlpConfig::new()
                .seed(config.seed)
                .trials(config.trials)
                .threads(config.threads)
                .record_trace(config.record_trace),
        }
    }
}

impl Algorithm for TlpAlgorithm {
    fn label(&self) -> &str {
        "TLP"
    }

    fn capability(&self) -> Capability {
        Capability::RandomAccess
    }

    fn run(
        &self,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<RunArtifact, PipelineError> {
        let graph = materialize(source, "TLP")?;
        self.config.validate()?;
        let _run = run_span("TLP", num_partitions);
        let start = Instant::now();
        if self.config.trials_value() > 1 {
            let report = ParallelTrialRunner::new(self.config).run(graph, num_partitions)?;
            let seconds = start.elapsed().as_secs_f64();
            tlp_obs::counter("run.edges", report.partition.num_edges() as u64);
            let metrics = PartitionMetrics::compute(graph, &report.partition);
            let mut artifact = RunArtifact::new("TLP", report.partition, metrics, seconds);
            artifact.trial_rfs = report.trial_rfs;
            artifact.best_trial = Some(report.best_trial);
            return Ok(artifact);
        }
        let (partition, trace) = {
            let _trial = trial_span(0, Some(self.config.seed_value()));
            run_staged(graph, num_partitions, &self.config, ModularitySwitch)?
        };
        let seconds = start.elapsed().as_secs_f64();
        tlp_obs::counter("run.edges", partition.num_edges() as u64);
        let metrics = PartitionMetrics::compute(graph, &partition);
        let mut artifact = RunArtifact::new("TLP", partition, metrics, seconds);
        artifact.trace = trace;
        Ok(artifact)
    }
}

/// Whether (and how) a registered algorithm takes a `name=VALUE` parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamSpec {
    /// Plain `name` only; a parameter is a spec error.
    None,
    /// `name=VALUE` required, with this parameter name for messages.
    Required(&'static str),
}

/// Builder closure: unified config in, runnable algorithm out.
pub type AlgorithmBuilder =
    Box<dyn Fn(&AlgoConfig) -> Result<Box<dyn Algorithm>, PipelineError> + Send + Sync>;

/// One registry row: identity, capability, and the builder.
pub struct AlgorithmEntry {
    /// Lookup name (lowercase, e.g. "hdrf").
    pub name: &'static str,
    /// Display label (e.g. "HDRF").
    pub label: &'static str,
    /// Access pattern the built algorithm declares.
    pub capability: Capability,
    /// Parameter contract of the spec string.
    pub param: ParamSpec,
    /// One-line description for listings.
    pub summary: &'static str,
    builder: AlgorithmBuilder,
}

/// Name → algorithm-builder table: the single place call sites resolve
/// algorithm names, replacing per-binary `match` wiring.
#[derive(Default)]
pub struct AlgorithmRegistry {
    entries: BTreeMap<&'static str, AlgorithmEntry>,
}

impl AlgorithmRegistry {
    /// An empty registry (see `tlp-pipeline`'s `builtin_registry` for the
    /// populated one).
    pub fn new() -> Self {
        AlgorithmRegistry::default()
    }

    /// Registers an algorithm under `name`. Re-registering a name replaces
    /// the previous entry.
    pub fn register(
        &mut self,
        name: &'static str,
        label: &'static str,
        capability: Capability,
        param: ParamSpec,
        summary: &'static str,
        builder: AlgorithmBuilder,
    ) {
        self.entries.insert(
            name,
            AlgorithmEntry {
                name,
                label,
                capability,
                param,
                summary,
                builder,
            },
        );
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// Iterates the registry rows in name order.
    pub fn entries(&self) -> impl Iterator<Item = &AlgorithmEntry> {
        self.entries.values()
    }

    /// Splits a spec string into `(name, parameter)` at the first `=`.
    pub fn parse_spec(spec: &str) -> (&str, Option<&str>) {
        match spec.split_once('=') {
            Some((name, param)) => (name, Some(param)),
            None => (spec, None),
        }
    }

    /// The entry a spec string resolves to, if any.
    pub fn entry_of(&self, spec: &str) -> Option<&AlgorithmEntry> {
        let (name, _) = Self::parse_spec(spec);
        self.entries.get(name)
    }

    /// Builds the algorithm a spec string names, merging its `=VALUE`
    /// parameter into `config`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownAlgorithm`] for an unregistered name,
    /// [`PipelineError::Spec`] for a missing/extra/unparsable parameter,
    /// plus whatever the builder reports.
    pub fn build(
        &self,
        spec: &str,
        config: &AlgoConfig,
    ) -> Result<Box<dyn Algorithm>, PipelineError> {
        let (name, raw_param) = Self::parse_spec(spec);
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| PipelineError::UnknownAlgorithm(name.to_string()))?;
        let mut config = *config;
        match (entry.param, raw_param) {
            (ParamSpec::None, None) => {}
            (ParamSpec::None, Some(_)) => {
                return Err(PipelineError::Spec(format!(
                    "algorithm {name} takes no parameter, got {spec:?}"
                )));
            }
            (ParamSpec::Required(what), None) => {
                return Err(PipelineError::Spec(format!(
                    "algorithm {name} requires a parameter: {name}=<{what}>"
                )));
            }
            (ParamSpec::Required(what), Some(raw)) => {
                let value: f64 = raw.parse().map_err(|_| {
                    PipelineError::Spec(format!("invalid {what} in {spec:?}: {raw:?}"))
                })?;
                config.param = Some(value);
            }
        }
        (entry.builder)(&config)
    }

    /// Builds and runs in one step: the registry's front door.
    ///
    /// # Errors
    ///
    /// Everything [`AlgorithmRegistry::build`] and [`Algorithm::run`]
    /// report.
    pub fn run(
        &self,
        spec: &str,
        config: &AlgoConfig,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<RunArtifact, PipelineError> {
        self.build(spec, config)?.run(source, num_partitions)
    }

    /// [`AlgorithmRegistry::run`] with a recording observer installed: the
    /// returned artifact carries the folded
    /// [`ObsReport`](tlp_obs::ObsReport) and the raw event stream rides
    /// along for callers that re-emit or diff traces.
    ///
    /// The assignment is guaranteed bit-identical to an unobserved
    /// [`run`](AlgorithmRegistry::run) — observers only listen — and the
    /// canonical event stream is a pure function of `(spec, config,
    /// source, num_partitions)`; both properties are pinned by the
    /// workspace's `obs_determinism` suite.
    ///
    /// # Errors
    ///
    /// Exactly those of [`AlgorithmRegistry::run`].
    pub fn run_recorded(
        &self,
        spec: &str,
        config: &AlgoConfig,
        source: &mut dyn EdgeSource,
        num_partitions: usize,
    ) -> Result<(RunArtifact, Vec<tlp_obs::Event>), PipelineError> {
        let (result, events) =
            tlp_obs::with_recording(|| self.run(spec, config, source, num_partitions));
        let mut artifact = result?;
        artifact.obs = Some(tlp_obs::ObsReport::fold(&events));
        Ok((artifact, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStageLocalPartitioner;
    use tlp_graph::generators::chung_lu;
    use tlp_graph::CsrSource;

    fn tiny_registry() -> AlgorithmRegistry {
        let mut registry = AlgorithmRegistry::new();
        registry.register(
            "tlp",
            "TLP",
            Capability::RandomAccess,
            ParamSpec::None,
            "two-stage local partitioner",
            Box::new(|config| Ok(Box::new(TlpAlgorithm::new(config)))),
        );
        registry
    }

    #[test]
    fn registry_runs_tlp_identically_to_the_direct_path() {
        let g = chung_lu(300, 1200, 2.2, 7);
        let registry = tiny_registry();
        let artifact = registry
            .run("tlp", &AlgoConfig::seeded(9), &mut CsrSource::new(&g), 6)
            .unwrap();
        let direct = TwoStageLocalPartitioner::new(TlpConfig::new().seed(9))
            .partition(&g, 6)
            .unwrap();
        assert_eq!(artifact.partition, direct);
        assert_eq!(
            artifact.metrics,
            PartitionMetrics::compute(&g, &direct),
            "artifact metrics must be the canonical computation"
        );
        assert_eq!(artifact.algorithm, "TLP");
        assert_eq!(artifact.num_partitions, 6);
        assert!(artifact.trial_rfs.is_empty());
    }

    #[test]
    fn multi_trial_artifact_matches_the_trial_runner() {
        let g = chung_lu(250, 1000, 2.1, 3);
        let registry = tiny_registry();
        let config = AlgoConfig {
            seed: 11,
            trials: 4,
            ..AlgoConfig::default()
        };
        let artifact = registry
            .run("tlp", &config, &mut CsrSource::new(&g), 5)
            .unwrap();
        let report = ParallelTrialRunner::new(TlpConfig::new().seed(11).trials(4))
            .run(&g, 5)
            .unwrap();
        assert_eq!(artifact.partition, report.partition);
        assert_eq!(artifact.trial_rfs, report.trial_rfs);
        assert_eq!(artifact.best_trial, Some(report.best_trial));
        let (best, _) = artifact.rf_spread();
        assert_eq!(best, report.rf_spread().0);
    }

    #[test]
    fn record_trace_fills_the_artifact() {
        let g = chung_lu(150, 600, 2.2, 1);
        let registry = tiny_registry();
        let config = AlgoConfig {
            record_trace: true,
            ..AlgoConfig::default()
        };
        let artifact = registry
            .run("tlp", &config, &mut CsrSource::new(&g), 4)
            .unwrap();
        assert!(artifact.trace.is_some());
    }

    #[test]
    fn unknown_names_and_bad_params_are_typed() {
        let registry = tiny_registry();
        let g = chung_lu(50, 150, 2.2, 1);
        let err = registry
            .run("nope", &AlgoConfig::default(), &mut CsrSource::new(&g), 2)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnknownAlgorithm(_)));
        let err = registry
            .run(
                "tlp=0.5",
                &AlgoConfig::default(),
                &mut CsrSource::new(&g),
                2,
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::Spec(_)));
    }

    #[test]
    fn spec_parsing_splits_on_first_equals() {
        assert_eq!(AlgorithmRegistry::parse_spec("tlp"), ("tlp", None));
        assert_eq!(
            AlgorithmRegistry::parse_spec("tlp-r=0.5"),
            ("tlp-r", Some("0.5"))
        );
    }
}
