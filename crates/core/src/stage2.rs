//! Stage II selection criterion (Eq. 9-11 of the paper).
//!
//! In Stage II the partition is tight (`M(P_k) >= 1`) and the paper selects
//! the frontier vertex whose admission increases modularity the most:
//!
//! ```text
//! mu_s2(v_i) = 1 - 1 / (1 + ΔM),    ΔM = M'(P_k) - M(P_k)
//! ```
//!
//! `mu_s2` is strictly increasing in `ΔM`, and `M(P_k)` is the same for all
//! candidates at a given step, so ranking candidates by `mu_s2` is the same
//! as ranking them by the *post-admission modularity*
//! `M' = (E + e_in) / (E_out - e_in + e_ext)`, where `e_in` is the number of
//! residual edges from the candidate into the partition and `e_ext` the rest
//! of its residual degree. [`GainRatio`] represents `M'` as an exact integer
//! fraction so candidate comparison never suffers floating-point ties.

use std::cmp::Ordering;

/// Post-admission modularity `M' = num/den` as an exact fraction.
///
/// `den == 0` encodes `+inf` (the candidate absorbs every external edge).
///
/// # Example
///
/// ```
/// use tlp_core::stage2::GainRatio;
///
/// // Paper Fig. 7: E=5, E_out=4. Candidate g: e_in=1, e_ext=1 -> M' = 6/4.
/// // Candidate e: e_in=3, e_ext=1 -> M' = 8/2.
/// let g = GainRatio::new(5, 4, 1, 1);
/// let e = GainRatio::new(5, 4, 3, 1);
/// assert!(e > g);
/// assert_eq!(e.to_f64(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GainRatio {
    num: u64,
    den: u64,
}

impl GainRatio {
    /// Builds the post-admission modularity for a candidate.
    ///
    /// * `internal` — current `|E(P_k)|`
    /// * `external` — current `|E_out(P_k)|`
    /// * `e_in` — candidate's residual edges into `P_k` (all become internal)
    /// * `e_ext` — candidate's residual edges leaving `P_k` (become external)
    ///
    /// `e_in > external` is a caller bug (a candidate cannot absorb more
    /// external edges than exist); the subtraction saturates to zero in
    /// every build mode, with a `debug_assert` to surface the bug in tests.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `e_in > external`.
    pub fn new(internal: usize, external: usize, e_in: usize, e_ext: usize) -> Self {
        debug_assert!(
            e_in <= external,
            "candidate absorbs {e_in} external edges but only {external} exist"
        );
        GainRatio {
            num: (internal + e_in) as u64,
            den: (external.saturating_sub(e_in) + e_ext) as u64,
        }
    }

    /// The ratio as a float (`+inf` when `den == 0`).
    pub fn to_f64(self) -> f64 {
        if self.den == 0 {
            f64::INFINITY
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

impl PartialOrd for GainRatio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GainRatio {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.den, other.den) {
            (0, 0) => self.num.cmp(&other.num),
            (0, _) => Ordering::Greater,
            (_, 0) => Ordering::Less,
            _ => {
                let left = u128::from(self.num) * u128::from(other.den);
                let right = u128::from(other.num) * u128::from(self.den);
                left.cmp(&right)
            }
        }
    }
}

/// The paper's `ΔM` (Eq. 10) for a candidate, as a float.
pub fn delta_m(internal: usize, external: usize, e_in: usize, e_ext: usize) -> f64 {
    let before = if external == 0 {
        if internal == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        internal as f64 / external as f64
    };
    GainRatio::new(internal, external, e_in, e_ext).to_f64() - before
}

/// The paper's `mu_s2 = 1 - 1/(1 + ΔM)` (Eq. 9), as a float.
///
/// Provided for parity with the paper; ranking by [`GainRatio`] is
/// equivalent and exact.
///
/// # Example
///
/// ```
/// use tlp_core::stage2::mu_s2;
///
/// // Paper Fig. 7: ΔM(g) = 0.25, ΔM(e) = 2.75.
/// let g = mu_s2(5, 4, 1, 1);
/// let e = mu_s2(5, 4, 3, 1);
/// assert!((g - 0.2).abs() < 1e-12);      // 1 - 1/1.25
/// assert!((e - (1.0 - 1.0 / 3.75)).abs() < 1e-12);
/// assert!(e > g);
/// ```
pub fn mu_s2(internal: usize, external: usize, e_in: usize, e_ext: usize) -> f64 {
    let dm = delta_m(internal, external, e_in, e_ext);
    if dm.is_infinite() {
        1.0
    } else {
        1.0 - 1.0 / (1.0 + dm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig7_walkthrough() {
        // Before allocation: |E_in| = 5, |E_out| = 4, M = 1.25.
        // Vertex g: one edge into P_k, one out: M' = 6/4 = 1.5, ΔM = 0.25.
        assert!((delta_m(5, 4, 1, 1) - 0.25).abs() < 1e-12);
        // Vertex e: three edges in, one out: M' = 8/2 = 4, ΔM = 2.75.
        assert!((delta_m(5, 4, 3, 1) - 2.75).abs() < 1e-12);
        // e wins.
        assert!(GainRatio::new(5, 4, 3, 1) > GainRatio::new(5, 4, 1, 1));
    }

    #[test]
    fn ordering_matches_float_ratio() {
        let cases = [
            (5, 4, 1, 1),
            (5, 4, 3, 1),
            (10, 2, 2, 5),
            (0, 3, 1, 0),
            (7, 7, 7, 0),
        ];
        for &a in &cases {
            for &b in &cases {
                let ga = GainRatio::new(a.0, a.1, a.2, a.3);
                let gb = GainRatio::new(b.0, b.1, b.2, b.3);
                let fa = ga.to_f64();
                let fb = gb.to_f64();
                if fa != fb {
                    assert_eq!(ga > gb, fa > fb, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn infinite_gain_beats_everything_finite() {
        // Absorbing the last external edges with none added: den = 0.
        let inf = GainRatio::new(3, 2, 2, 0);
        assert_eq!(inf.to_f64(), f64::INFINITY);
        let big = GainRatio::new(1_000_000, 1, 1, 1);
        assert!(inf > big);
        // Two infinite gains compare by numerator.
        let inf2 = GainRatio::new(4, 2, 2, 0);
        assert!(inf2 > inf);
    }

    #[test]
    fn mu_s2_is_monotone_in_delta_m() {
        let low = mu_s2(5, 4, 1, 1);
        let high = mu_s2(5, 4, 3, 1);
        assert!(high > low);
        assert!((0.0..=1.0).contains(&low));
        assert!((0.0..=1.0).contains(&high));
    }

    #[test]
    fn e_in_equal_to_external_is_exact_in_both_build_modes() {
        // The candidate absorbs every external edge: den must be exactly
        // e_ext, and the saturating subtraction must not kick in. This is
        // the boundary right below the debug_assert, so it has to produce
        // identical values in debug and release.
        let boundary = GainRatio::new(6, 3, 3, 2);
        assert_eq!(boundary.to_f64(), 9.0 / 2.0);
        assert_eq!(boundary, GainRatio::new(7, 4, 2, 0));
        // With no new external edges either, the ratio is +inf.
        let absorbed = GainRatio::new(6, 3, 3, 0);
        assert_eq!(absorbed.to_f64(), f64::INFINITY);
    }

    #[test]
    fn no_overflow_at_large_counts() {
        let a = GainRatio::new(usize::MAX / 4, 1_000_000, 999_999, 5);
        let b = GainRatio::new(usize::MAX / 4, 1_000_000, 1, 5);
        assert!(a > b);
    }
}
