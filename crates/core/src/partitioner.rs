//! The `EdgePartitioner` trait implemented by TLP and all comparators.

use crate::{EdgePartition, PartitionError};
use tlp_graph::{CsrGraph, GraphView};

/// A balanced `p`-edge graph partitioner (Definition 5 of the paper).
///
/// Implementors assign every edge of the input graph to one of `p`
/// partitions, aiming to keep partition loads near `|E|/p` while minimizing
/// the replication factor.
///
/// The trait is object-safe, so heterogeneous partitioner line-ups (as in
/// the Fig. 8 experiment) can be stored as `Vec<Box<dyn EdgePartitioner>>`.
///
/// # Example
///
/// ```
/// use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
/// use tlp_graph::generators::erdos_renyi;
///
/// let graph = erdos_renyi(100, 400, 3);
/// let partitioner: Box<dyn EdgePartitioner> =
///     Box::new(TwoStageLocalPartitioner::new(TlpConfig::new()));
/// let partition = partitioner.partition(&graph, 4)?;
/// assert_eq!(partition.num_edges(), 400);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
pub trait EdgePartitioner {
    /// Short human-readable algorithm name ("TLP", "METIS", "DBH", ...).
    fn name(&self) -> &str;

    /// Partitions every edge of the viewed graph into `num_partitions`
    /// parts. This is the required entry point: a [`GraphView`] may borrow
    /// an owned [`CsrGraph`] or a zero-copy `.tlpg` v2 arena — the
    /// partitioner cannot tell the difference, and produces bit-identical
    /// assignments either way.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] when `num_partitions == 0`
    /// and implementation-specific [`PartitionError`]s for invalid
    /// configurations.
    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError>;

    /// Convenience shim over [`partition_view`](Self::partition_view) for
    /// callers holding an owned graph.
    ///
    /// # Errors
    ///
    /// Exactly those of [`partition_view`](Self::partition_view).
    fn partition(
        &self,
        graph: &CsrGraph,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        self.partition_view(graph.view(), num_partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionId;

    /// A trivial round-robin partitioner used to exercise the trait object.
    struct RoundRobin;

    impl EdgePartitioner for RoundRobin {
        fn name(&self) -> &str {
            "RoundRobin"
        }

        fn partition_view(
            &self,
            graph: GraphView<'_>,
            num_partitions: usize,
        ) -> Result<EdgePartition, PartitionError> {
            if num_partitions == 0 {
                return Err(PartitionError::ZeroPartitions);
            }
            let assignment = (0..graph.num_edges())
                .map(|e| (e % num_partitions) as PartitionId)
                .collect();
            EdgePartition::new(num_partitions, assignment)
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let graph = tlp_graph::GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let boxed: Box<dyn EdgePartitioner> = Box::new(RoundRobin);
        assert_eq!(boxed.name(), "RoundRobin");
        let partition = boxed.partition(&graph, 2).unwrap();
        assert_eq!(partition.edge_counts(), vec![2, 1]);
        assert!(boxed.partition(&graph, 0).is_err());
    }
}
