//! Configuration for the local partitioning drivers.

use crate::PartitionError;

/// What to do when the frontier `N(P_k)` empties before the partition is
/// full (Algorithm 1, line 11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReseedPolicy {
    /// Pick a fresh random seed vertex with residual edges and keep filling
    /// the same partition. This is the behaviour consistent with Fig. 3
    /// ("expand until the local partition is full") and is required for
    /// disconnected graphs to produce balanced partitions. **Default.**
    #[default]
    Reseed,
    /// Stop the round immediately, as literally written in Algorithm 1.
    /// Edges left unassigned after the final round are swept into the
    /// least-loaded partitions.
    Break,
}

/// How the optimal vertex is located inside the frontier `N(P_k)`.
///
/// Both strategies compute the **exact same argmax** (including tie-breaks)
/// and therefore produce identical partitions; they differ only in cost.
/// The paper notes (§III-E) that "the selection of the optimal vertex in
/// `N(P_k)` requires traversing all the vertices in `N(P_k)`, which may
/// degrade time performance when `N(P_k)` is very large" — `IndexedHeap`
/// removes that scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// Priority structures over the frontier: a lazy max-heap on the Stage I
    /// score and per-`e_in` lazy min-heaps on `e_ext` for Stage II (only the
    /// Pareto-optimal representative of each `e_in` bucket can win, because
    /// the Stage II objective is increasing in `e_in` and decreasing in
    /// `e_ext`). Selection cost per step: `O(distinct e_in values + stale
    /// entries)` instead of `O(|N(P_k)|)`. **Default.**
    #[default]
    IndexedHeap,
    /// Scan every frontier vertex per step, exactly as Algorithm 1 is
    /// written (`O(|N(P_k)|)` per step, `O(L^2 d^2)` per partition). Kept
    /// for the complexity ablation benches and as the reference the indexed
    /// strategy is tested against.
    LinearScan,
    /// Dirty-marking on top of the `IndexedHeap` structures: candidate
    /// state changes only *mark* the vertex dirty, and all dirty
    /// candidates are flushed into the heaps in one batch at selection
    /// time. Between two selections a candidate contributes at most one
    /// heap entry no matter how many edge events touched it, so hub
    /// candidates (whose `e_in` is bumped once per admitted neighbor)
    /// stop flooding the heaps with stale entries. Same argmax, ties
    /// included.
    Incremental,
}

/// Configuration shared by [`crate::TwoStageLocalPartitioner`] and the
/// TLP_R / single-stage variants.
///
/// `TlpConfig` is a small consuming builder:
///
/// ```
/// use tlp_core::{ReseedPolicy, TlpConfig};
///
/// let config = TlpConfig::new()
///     .seed(42)
///     .capacity_factor(1.05)
///     .reseed_policy(ReseedPolicy::Break)
///     .record_trace(true);
/// assert_eq!(config.seed_value(), 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TlpConfig {
    seed: u64,
    capacity_factor: f64,
    reseed: ReseedPolicy,
    record_trace: bool,
    selection: SelectionStrategy,
    frontier_cap: Option<usize>,
    trials: usize,
    threads: usize,
}

impl Default for TlpConfig {
    fn default() -> Self {
        TlpConfig {
            seed: 0,
            capacity_factor: 1.0,
            reseed: ReseedPolicy::default(),
            record_trace: false,
            selection: SelectionStrategy::default(),
            frontier_cap: None,
            trials: 1,
            threads: 0,
        }
    }
}

impl TlpConfig {
    /// Creates the default configuration (seed 0, capacity `ceil(m/p)`,
    /// reseeding enabled, no trace).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed used for seed-vertex selection.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the per-partition capacity: `C = ceil(factor * m / p)`.
    ///
    /// Values above 1 trade balance for quality; the paper uses exactly
    /// `m / p` (factor 1). The value is validated by the partitioner.
    #[must_use]
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = factor;
        self
    }

    /// Sets the frontier-exhaustion policy.
    #[must_use]
    pub fn reseed_policy(mut self, policy: ReseedPolicy) -> Self {
        self.reseed = policy;
        self
    }

    /// Enables recording of a per-selection [`crate::Trace`] (needed for the
    /// Table VI experiment). Off by default because it allocates per vertex.
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// The configured RNG seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The configured capacity factor.
    pub fn capacity_factor_value(&self) -> f64 {
        self.capacity_factor
    }

    /// The configured reseed policy.
    pub fn reseed_policy_value(&self) -> ReseedPolicy {
        self.reseed
    }

    /// Whether trace recording is enabled.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// Sets the frontier selection strategy (see [`SelectionStrategy`]).
    #[must_use]
    pub fn selection_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.selection = strategy;
        self
    }

    /// The configured selection strategy.
    pub fn selection_strategy_value(&self) -> SelectionStrategy {
        self.selection
    }

    /// Caps the candidate frontier `N(P_k)` at `cap` vertices: once the
    /// frontier is full, vertices touched by new member edges are not
    /// enrolled as candidates until admissions free up space.
    ///
    /// This is the sliding-window mechanism sketched in the paper's future
    /// work (§V): it bounds per-round memory and selection effort at a
    /// quality cost. Unset (no cap) by default; the cap must be at least 1
    /// (validated when partitioning).
    #[must_use]
    pub fn frontier_cap(mut self, cap: usize) -> Self {
        self.frontier_cap = Some(cap);
        self
    }

    /// The configured frontier cap, if any.
    pub fn frontier_cap_value(&self) -> Option<usize> {
        self.frontier_cap
    }

    /// Runs `trials` independently seeded partitioning attempts and keeps
    /// the one with the lowest replication factor (see
    /// [`crate::ParallelTrialRunner`]). Trial 0 uses the configured seed
    /// verbatim, so `trials = 1` (the default) is the plain single run.
    /// Must be at least 1 (validated when partitioning).
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// The configured trial count.
    pub fn trials_value(&self) -> usize {
        self.trials
    }

    /// Caps the worker threads used for multi-trial runs. `0` (the
    /// default) means "use the machine's available parallelism". A single
    /// trial always runs on the calling thread regardless of this value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured thread cap (`0` = auto).
    pub fn threads_value(&self) -> usize {
        self.threads
    }

    /// Validates ranges; called by the partitioners before running.
    pub(crate) fn validate(&self) -> Result<(), PartitionError> {
        if !(self.capacity_factor.is_finite() && self.capacity_factor >= 1.0) {
            return Err(PartitionError::InvalidParameter {
                name: "capacity_factor",
                value: self.capacity_factor,
                constraint: "must be finite and >= 1",
            });
        }
        if self.frontier_cap == Some(0) {
            return Err(PartitionError::InvalidParameter {
                name: "frontier_cap",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if self.trials == 0 {
            return Err(PartitionError::InvalidParameter {
                name: "trials",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }

    /// The per-partition edge capacity `C` for a graph with `m` edges split
    /// `p` ways (at least 1).
    pub(crate) fn capacity(&self, num_edges: usize, num_partitions: usize) -> usize {
        let raw = (self.capacity_factor * num_edges as f64 / num_partitions as f64).ceil();
        (raw as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = TlpConfig::new()
            .seed(9)
            .capacity_factor(1.5)
            .record_trace(true);
        assert_eq!(c.seed_value(), 9);
        assert_eq!(c.capacity_factor_value(), 1.5);
        assert!(c.records_trace());
        assert_eq!(c.reseed_policy_value(), ReseedPolicy::Reseed);
    }

    #[test]
    fn capacity_is_ceiling_and_at_least_one() {
        let c = TlpConfig::new();
        assert_eq!(c.capacity(10, 3), 4);
        assert_eq!(c.capacity(9, 3), 3);
        assert_eq!(c.capacity(0, 5), 1);
        assert_eq!(c.capacity(2, 10), 1);
    }

    #[test]
    fn capacity_factor_scales() {
        let c = TlpConfig::new().capacity_factor(2.0);
        assert_eq!(c.capacity(10, 5), 4);
    }

    #[test]
    fn validation_rejects_bad_factors() {
        assert!(TlpConfig::new().capacity_factor(0.5).validate().is_err());
        assert!(TlpConfig::new()
            .capacity_factor(f64::NAN)
            .validate()
            .is_err());
        assert!(TlpConfig::new().capacity_factor(1.0).validate().is_ok());
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(TlpConfig::new(), TlpConfig::default());
    }

    #[test]
    fn trial_and_thread_knobs_round_trip() {
        let c = TlpConfig::new().trials(8).threads(4);
        assert_eq!(c.trials_value(), 8);
        assert_eq!(c.threads_value(), 4);
        assert_eq!(TlpConfig::new().trials_value(), 1);
        assert_eq!(TlpConfig::new().threads_value(), 0);
    }

    #[test]
    fn zero_trials_rejected() {
        assert!(TlpConfig::new().trials(0).validate().is_err());
        assert!(TlpConfig::new().trials(1).validate().is_ok());
    }
}
