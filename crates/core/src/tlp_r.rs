//! TLP_R: the edge-count-based stage division used in the paper's ablation
//! (Section IV-C, Figs. 9-11).

use crate::engine::{run_staged, EdgeRatioSwitch};
use crate::{EdgePartition, EdgePartitioner, PartitionError, TlpConfig, Trace};
use tlp_graph::GraphView;

/// The TLP_R variant (Table V): Stage I while `|E(P_k)| <= R * C`, Stage II
/// afterwards, with `R` in `[0, 1]`.
///
/// `R = 0` degenerates to a pure Stage II partitioner and `R = 1` to pure
/// Stage I; the paper shows both extremes are the worst configurations,
/// while interior `R` approaches (but needs tuning to match) TLP's
/// modularity-based switch.
///
/// # Example
///
/// ```
/// use tlp_core::{EdgePartitioner, EdgeRatioLocalPartitioner, TlpConfig};
/// use tlp_graph::generators::erdos_renyi;
///
/// let graph = erdos_renyi(200, 800, 1);
/// let tlp_r = EdgeRatioLocalPartitioner::new(TlpConfig::new(), 0.4)?;
/// let partition = tlp_r.partition(&graph, 4)?;
/// assert_eq!(partition.num_edges(), 800);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EdgeRatioLocalPartitioner {
    config: TlpConfig,
    ratio: f64,
    name: &'static str,
}

impl EdgeRatioLocalPartitioner {
    /// Creates a TLP_R partitioner with stage ratio `ratio`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] unless `0 <= ratio <= 1`.
    pub fn new(config: TlpConfig, ratio: f64) -> Result<Self, PartitionError> {
        if !(0.0..=1.0).contains(&ratio) || ratio.is_nan() {
            return Err(PartitionError::InvalidParameter {
                name: "ratio",
                value: ratio,
                constraint: "must be in [0, 1]",
            });
        }
        Ok(EdgeRatioLocalPartitioner {
            config,
            ratio,
            name: "TLP_R",
        })
    }

    /// The configured stage ratio `R`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The configuration this partitioner runs with.
    pub fn config(&self) -> &TlpConfig {
        &self.config
    }

    /// Partitions and returns the per-selection [`Trace`].
    ///
    /// # Errors
    ///
    /// Same as [`EdgePartitioner::partition`].
    pub fn partition_with_trace<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        num_partitions: usize,
    ) -> Result<(EdgePartition, Trace), PartitionError> {
        let config = self.config.record_trace(true);
        let switch = EdgeRatioSwitch { ratio: self.ratio };
        let (partition, trace) = run_staged(graph, num_partitions, &config, switch)?;
        Ok((partition, trace.expect("trace was requested")))
    }

    pub(crate) fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }
}

impl EdgePartitioner for EdgeRatioLocalPartitioner {
    fn name(&self) -> &str {
        self.name
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let switch = EdgeRatioSwitch { ratio: self.ratio };
        run_staged(graph, num_partitions, &self.config, switch).map(|(partition, _)| partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;
    use tlp_graph::generators::chung_lu;

    #[test]
    fn rejects_out_of_range_ratio() {
        assert!(EdgeRatioLocalPartitioner::new(TlpConfig::new(), -0.1).is_err());
        assert!(EdgeRatioLocalPartitioner::new(TlpConfig::new(), 1.1).is_err());
        assert!(EdgeRatioLocalPartitioner::new(TlpConfig::new(), f64::NAN).is_err());
        assert!(EdgeRatioLocalPartitioner::new(TlpConfig::new(), 0.0).is_ok());
        assert!(EdgeRatioLocalPartitioner::new(TlpConfig::new(), 1.0).is_ok());
    }

    #[test]
    fn r_zero_uses_only_stage_two() {
        let g = chung_lu(200, 900, 2.2, 6);
        let p = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(3), 0.0).unwrap();
        let (_, trace) = p.partition_with_trace(&g, 4).unwrap();
        assert!(trace.records().iter().all(|r| r.stage == Stage::Two));
    }

    #[test]
    fn r_one_uses_only_stage_one() {
        let g = chung_lu(200, 900, 2.2, 6);
        let p = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(3), 1.0).unwrap();
        let (_, trace) = p.partition_with_trace(&g, 4).unwrap();
        assert!(trace.records().iter().all(|r| r.stage == Stage::One));
    }

    #[test]
    fn interior_r_uses_both_stages() {
        let g = chung_lu(200, 900, 2.2, 6);
        let p = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(3), 0.5).unwrap();
        let (_, trace) = p.partition_with_trace(&g, 4).unwrap();
        let s = trace.stage_degree_summary();
        assert!(s.stage1_count > 0 && s.stage2_count > 0);
    }

    #[test]
    fn covers_all_edges_for_every_r() {
        let g = chung_lu(150, 600, 2.2, 2);
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            let p = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(4), r).unwrap();
            let part = p.partition(&g, 5).unwrap();
            assert_eq!(
                part.edge_counts().iter().sum::<usize>(),
                g.num_edges(),
                "R = {r}"
            );
        }
    }
}
