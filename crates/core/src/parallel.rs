//! Thread-parallel execution utilities: an order-preserving `parallel_map`
//! built on scoped threads, and the [`ParallelTrialRunner`] that races `t`
//! independently seeded TLP runs and keeps the best-RF partition.
//!
//! Everything here is deterministic given the same inputs: per-trial seeds
//! are derived from the base seed by a fixed mixing function (independent
//! of thread count and scheduling), each trial is itself deterministic, and
//! the winner is chosen by `(replication factor, trial index)` — so a run
//! with 1 thread and a run with 16 produce bit-identical partitions.

use crate::engine::{run_staged, ModularitySwitch};
use crate::metrics::PartitionMetrics;
use crate::partition::EdgePartition;
use crate::{PartitionError, TlpConfig};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tlp_graph::CsrGraph;

/// The number of worker threads a `0 = auto` setting resolves to.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped worker threads and
/// returns the results in item order.
///
/// Items are handed out dynamically (an atomic cursor), so uneven item
/// costs still fill all workers. With `threads <= 1` or a single item the
/// map runs inline on the calling thread. Panics in `f` propagate.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("no poisoned result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned result slot")
                .expect("every slot filled")
        })
        .collect()
}

/// SplitMix64 finalizer — decorrelates sequential trial indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed trial `index` runs with. Trial 0 is the base seed itself, so a
/// single-trial runner is bit-identical to a plain run with `base`.
pub fn trial_seed(base: u64, index: usize) -> u64 {
    if index == 0 {
        base
    } else {
        splitmix64(base ^ (index as u64))
    }
}

/// The outcome of a multi-trial run: the winning partition plus the
/// per-trial replication factors (for spread reporting).
#[derive(Clone, Debug)]
pub struct TrialReport {
    /// The best partition found (lowest replication factor; ties go to the
    /// lowest trial index).
    pub partition: EdgePartition,
    /// Index of the winning trial in `[0, trials)`.
    pub best_trial: usize,
    /// Replication factor of every trial, indexed by trial.
    pub trial_rfs: Vec<f64>,
}

impl TrialReport {
    /// The winning trial's replication factor.
    pub fn best_rf(&self) -> f64 {
        self.trial_rfs[self.best_trial]
    }

    /// `(min, max)` replication factor over all trials.
    pub fn rf_spread(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &rf in &self.trial_rfs {
            min = min.min(rf);
            max = max.max(rf);
        }
        (min, max)
    }
}

/// Runs `config.trials()` independently seeded TLP partitionings across
/// worker threads and keeps the partition with the lowest replication
/// factor.
///
/// Seed growth is cheap but seed-sensitive (the paper reports averages
/// over runs for exactly this reason); racing a handful of seeds and
/// keeping the best is an embarrassingly parallel way to buy quality with
/// cores instead of wall-clock. Trial 0 uses the configured seed verbatim,
/// so `trials = 1` reproduces the plain single run bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelTrialRunner {
    config: TlpConfig,
}

impl ParallelTrialRunner {
    /// Creates a runner; `config.trials()` / `config.threads()` control the
    /// trial count and worker cap.
    pub fn new(config: TlpConfig) -> Self {
        ParallelTrialRunner { config }
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> &TlpConfig {
        &self.config
    }

    /// Runs all trials and returns the best partition plus per-trial RFs.
    ///
    /// # Errors
    ///
    /// Propagates the first failing trial's [`PartitionError`] (in trial
    /// order), or the config/partition-count validation errors of a plain
    /// run.
    pub fn run(
        &self,
        graph: &CsrGraph,
        num_partitions: usize,
    ) -> Result<TrialReport, PartitionError> {
        self.config.validate()?;
        let trials = self.config.trials_value();
        let threads = match self.config.threads_value() {
            0 => available_threads(),
            t => t,
        };
        let seeds: Vec<u64> = (0..trials)
            .map(|i| trial_seed(self.config.seed_value(), i))
            .collect();
        // Trace recording is a single-run concern; trials race plain runs.
        let base = self.config.record_trace(false);
        let outcomes = parallel_map(threads, &seeds, |_, &seed| {
            let config = base.seed(seed);
            run_staged(graph, num_partitions, &config, ModularitySwitch).map(|(partition, _)| {
                let rf = PartitionMetrics::compute(graph, &partition).replication_factor;
                (partition, rf)
            })
        });

        let mut partitions = Vec::with_capacity(trials);
        let mut trial_rfs = Vec::with_capacity(trials);
        for outcome in outcomes {
            let (partition, rf) = outcome?;
            partitions.push(partition);
            trial_rfs.push(rf);
        }
        let best_trial = trial_rfs
            .iter()
            .enumerate()
            .min_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)))
            .map(|(i, _)| i)
            .expect("at least one trial");
        Ok(TrialReport {
            partition: partitions.swap_remove(best_trial),
            best_trial,
            trial_rfs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgePartitioner, TwoStageLocalPartitioner};
    use tlp_graph::generators::chung_lu;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn trial_zero_keeps_the_base_seed() {
        assert_eq!(trial_seed(42, 0), 42);
        assert_ne!(trial_seed(42, 1), 42);
        assert_ne!(trial_seed(42, 1), trial_seed(42, 2));
        assert_ne!(trial_seed(42, 1), trial_seed(43, 1));
    }

    #[test]
    fn single_trial_matches_plain_run() {
        let g = chung_lu(200, 800, 2.2, 3);
        let config = TlpConfig::new().seed(7);
        let plain = TwoStageLocalPartitioner::new(config)
            .partition(&g, 5)
            .unwrap();
        let report = ParallelTrialRunner::new(config.trials(1))
            .run(&g, 5)
            .unwrap();
        assert_eq!(report.partition, plain);
        assert_eq!(report.best_trial, 0);
        assert_eq!(report.trial_rfs.len(), 1);
    }

    #[test]
    fn best_of_n_is_no_worse_than_trial_zero() {
        let g = chung_lu(300, 1200, 2.2, 5);
        let config = TlpConfig::new().seed(11);
        let single = ParallelTrialRunner::new(config.trials(1))
            .run(&g, 8)
            .unwrap();
        let multi = ParallelTrialRunner::new(config.trials(6))
            .run(&g, 8)
            .unwrap();
        assert!(
            multi.best_rf() <= single.best_rf() + 1e-12,
            "best-of-6 RF {} worse than single-trial RF {}",
            multi.best_rf(),
            single.best_rf()
        );
        // Trial 0 of the multi run IS the single run.
        assert_eq!(multi.trial_rfs[0], single.trial_rfs[0]);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let g = chung_lu(250, 1000, 2.1, 9);
        let base = TlpConfig::new().seed(3).trials(5);
        let one = ParallelTrialRunner::new(base.threads(1))
            .run(&g, 6)
            .unwrap();
        let many = ParallelTrialRunner::new(base.threads(4))
            .run(&g, 6)
            .unwrap();
        assert_eq!(one.partition, many.partition);
        assert_eq!(one.best_trial, many.best_trial);
        assert_eq!(one.trial_rfs, many.trial_rfs);
    }

    /// Two runs with identical configs must be bit-identical even when the
    /// trials race across worker threads — scheduling must never leak into
    /// the result.
    #[test]
    fn same_seed_runs_are_bit_identical_with_parallel_trials() {
        let g = chung_lu(250, 1000, 2.1, 4);
        let config = TlpConfig::new().seed(13).trials(4).threads(3);
        let first = ParallelTrialRunner::new(config).run(&g, 6).unwrap();
        let second = ParallelTrialRunner::new(config).run(&g, 6).unwrap();
        assert_eq!(first.partition, second.partition);
        assert_eq!(first.best_trial, second.best_trial);
        assert_eq!(first.trial_rfs, second.trial_rfs);
        // The same holds through the public partitioner facade.
        let a = TwoStageLocalPartitioner::new(config)
            .partition(&g, 6)
            .unwrap();
        let b = TwoStageLocalPartitioner::new(config)
            .partition(&g, 6)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, first.partition);
    }

    #[test]
    fn zero_trials_is_rejected() {
        let g = chung_lu(50, 150, 2.2, 1);
        let err = ParallelTrialRunner::new(TlpConfig::new().trials(0))
            .run(&g, 2)
            .unwrap_err();
        assert!(matches!(
            err,
            PartitionError::InvalidParameter { name: "trials", .. }
        ));
    }
}
