//! Thread-parallel execution utilities: an order-preserving `parallel_map`
//! built on scoped threads, and the [`ParallelTrialRunner`] that races `t`
//! independently seeded TLP runs and keeps the best-RF partition.
//!
//! Everything here is deterministic given the same inputs: per-trial seeds
//! are derived from the base seed by a fixed mixing function (independent
//! of thread count and scheduling), each trial is itself deterministic, and
//! the winner is chosen by `(replication factor, trial index)` — so a run
//! with 1 thread and a run with 16 produce bit-identical partitions.

use crate::engine::{run_staged, ModularitySwitch};
use crate::metrics::PartitionMetrics;
use crate::partition::EdgePartition;
use crate::{PartitionError, TlpConfig};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use tlp_graph::{CsrGraph, GraphView};

/// The number of worker threads a `0 = auto` setting resolves to.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped worker threads and
/// returns the results in item order.
///
/// Items are handed out dynamically (an atomic cursor), so uneven item
/// costs still fill all workers. With `threads <= 1` or a single item the
/// map runs inline on the calling thread. Panics in `f` propagate.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("no poisoned result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned result slot")
                .expect("every slot filled")
        })
        .collect()
}

/// [`parallel_map`] that carries the calling thread's observer across the
/// worker threads: when one is attached, each item records into a
/// worker-local buffer and the parent replays the buffers in item order
/// (tagging events the item did not tag itself with the item index), so
/// the merged event stream is identical no matter how many threads ran
/// the items. Without an observer this is exactly [`parallel_map`].
pub fn observed_parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if !tlp_obs::is_enabled() {
        return parallel_map(threads, items, f);
    }
    let results = parallel_map(threads, items, |i, item| {
        tlp_obs::with_recording(|| f(i, item))
    });
    results
        .into_iter()
        .enumerate()
        .map(|(index, (result, events))| {
            tlp_obs::replay(events, Some(index as u32));
            result
        })
        .collect()
}

/// SplitMix64 finalizer — decorrelates sequential trial indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed trial `index` runs with. Trial 0 is the base seed itself, so a
/// single-trial runner is bit-identical to a plain run with `base`.
pub fn trial_seed(base: u64, index: usize) -> u64 {
    if index == 0 {
        base
    } else {
        splitmix64(base ^ (index as u64))
    }
}

/// Why a trial produced no partition: it panicked or overran its deadline.
/// Failed trials are excluded from winner selection; their slots in
/// [`TrialReport::trial_rfs`] hold `NaN`.
#[derive(Clone, Debug)]
pub struct TrialFailure {
    /// Index of the failed trial in `[0, trials)`.
    pub index: usize,
    /// Panic payload or timeout description.
    pub message: String,
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {}: {}", self.index, self.message)
    }
}

/// The outcome of a multi-trial run: the winning partition plus the
/// per-trial replication factors (for spread reporting).
#[derive(Clone, Debug)]
pub struct TrialReport {
    /// The best partition found (lowest replication factor; ties go to the
    /// lowest trial index).
    pub partition: EdgePartition,
    /// Index of the winning trial in `[0, trials)`.
    pub best_trial: usize,
    /// Replication factor of every trial, indexed by trial; `NaN` for
    /// trials that failed (see [`TrialReport::failures`]).
    pub trial_rfs: Vec<f64>,
    /// Trials that panicked or timed out, in trial order. Empty on a fully
    /// healthy run.
    pub failures: Vec<TrialFailure>,
}

impl TrialReport {
    /// The winning trial's replication factor.
    pub fn best_rf(&self) -> f64 {
        self.trial_rfs[self.best_trial]
    }

    /// `(min, max)` replication factor over all trials. Failed trials
    /// (`NaN` slots) are skipped — `f64::min`/`max` ignore `NaN` operands.
    pub fn rf_spread(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &rf in &self.trial_rfs {
            min = min.min(rf);
            max = max.max(rf);
        }
        (min, max)
    }
}

/// How one isolated trial ended.
enum TrialOutcome {
    /// Completed: partition plus its replication factor.
    Done(EdgePartition, f64),
    /// Returned a typed error (deterministic; propagated to the caller).
    Error(PartitionError),
    /// Panicked or timed out; excluded from winner selection.
    Poisoned(String),
}

/// Renders a panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("trial panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("trial panicked: {s}")
    } else {
        "trial panicked (non-string payload)".to_string()
    }
}

/// Runs `config.trials()` independently seeded TLP partitionings across
/// worker threads and keeps the partition with the lowest replication
/// factor.
///
/// Seed growth is cheap but seed-sensitive (the paper reports averages
/// over runs for exactly this reason); racing a handful of seeds and
/// keeping the best is an embarrassingly parallel way to buy quality with
/// cores instead of wall-clock. Trial 0 uses the configured seed verbatim,
/// so `trials = 1` reproduces the plain single run bit for bit.
///
/// # Fault isolation
///
/// Each trial runs under `catch_unwind`: a panicking trial is recorded in
/// [`TrialReport::failures`] and excluded from winner selection instead of
/// aborting the other `t - 1` trials. With a
/// [`trial_deadline`](ParallelTrialRunner::trial_deadline), trials
/// additionally run on dedicated watchdogged threads; a trial that overruns
/// the deadline is excluded the same way (its thread is detached and left
/// to finish in the background — the engine has no cancellation points).
/// Only if *every* trial fails does `run` return
/// [`PartitionError::AllTrialsFailed`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelTrialRunner {
    config: TlpConfig,
    deadline: Option<Duration>,
    probe: Option<fn(usize)>,
}

impl ParallelTrialRunner {
    /// Creates a runner; `config.trials()` / `config.threads()` control the
    /// trial count and worker cap.
    pub fn new(config: TlpConfig) -> Self {
        ParallelTrialRunner {
            config,
            deadline: None,
            probe: None,
        }
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> &TlpConfig {
        &self.config
    }

    /// Sets a wall-clock budget per trial. Trials that overrun it are
    /// reported in [`TrialReport::failures`] and excluded. Note that a
    /// deadline makes the *set of surviving trials* timing-dependent, so
    /// runs using one are only deterministic while no trial straddles the
    /// limit.
    pub fn trial_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Test hook: called with the trial index at the start of each trial,
    /// inside its isolation boundary (a panicking probe poisons exactly
    /// that trial). A plain `fn` pointer so the runner stays `Copy`.
    pub fn trial_probe(mut self, probe: fn(usize)) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Runs all trials and returns the best partition plus per-trial RFs.
    ///
    /// # Errors
    ///
    /// Propagates the first trial's typed [`PartitionError`] (in trial
    /// order — these are deterministic config errors every trial shares),
    /// the config/partition-count validation errors of a plain run, or
    /// [`PartitionError::AllTrialsFailed`] when every trial panicked or
    /// timed out.
    pub fn run<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        num_partitions: usize,
    ) -> Result<TrialReport, PartitionError> {
        let graph = graph.into();
        self.config.validate()?;
        let trials = self.config.trials_value();
        let threads = match self.config.threads_value() {
            0 => available_threads(),
            t => t,
        };
        let seeds: Vec<u64> = (0..trials)
            .map(|i| trial_seed(self.config.seed_value(), i))
            .collect();
        // Trace recording is a single-run concern; trials race plain runs.
        let base = self.config.record_trace(false);
        let probe = self.probe;
        // A deadline needs detachable ('static) trial threads, so the graph
        // is materialized into an Arc-owned CSR; without one the borrowed
        // view runs on scoped workers.
        let shared: Option<Arc<CsrGraph>> = self.deadline.map(|_| Arc::new(graph.to_csr_graph()));

        // When an observer is active, each trial records its events locally
        // and the parent replays them in trial order below, so the merged
        // stream is independent of the thread count.
        let observing = tlp_obs::is_enabled();

        let outcomes = parallel_map(threads, &seeds, |i, &seed| {
            let config = base.seed(seed);
            let work = || match (self.deadline, &shared) {
                (Some(deadline), Some(shared)) => run_trial_with_deadline(
                    Arc::clone(shared),
                    num_partitions,
                    config,
                    probe,
                    i,
                    deadline,
                ),
                _ => run_trial(graph, num_partitions, config, probe, i),
            };
            if observing {
                tlp_obs::with_recording(|| {
                    let _trial = tlp_obs::span_with(
                        "trial",
                        vec![
                            ("index".to_string(), tlp_obs::Field::U64(i as u64)),
                            ("seed".to_string(), tlp_obs::Field::U64(seed)),
                        ],
                    );
                    work()
                })
            } else {
                (work(), Vec::new())
            }
        });

        let mut partitions: Vec<Option<EdgePartition>> = Vec::with_capacity(trials);
        let mut trial_rfs = Vec::with_capacity(trials);
        let mut failures = Vec::new();
        for (index, (outcome, events)) in outcomes.into_iter().enumerate() {
            if observing {
                tlp_obs::replay(events, Some(index as u32));
            }
            match outcome {
                TrialOutcome::Done(partition, rf) => {
                    partitions.push(Some(partition));
                    trial_rfs.push(rf);
                }
                TrialOutcome::Error(e) => return Err(e),
                TrialOutcome::Poisoned(message) => {
                    tlp_obs::counter("trial.failed", 1);
                    partitions.push(None);
                    trial_rfs.push(f64::NAN);
                    failures.push(TrialFailure { index, message });
                }
            }
        }
        let best_trial = trial_rfs
            .iter()
            .enumerate()
            .filter(|(_, rf)| !rf.is_nan())
            .min_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)))
            .map(|(i, _)| i);
        let Some(best_trial) = best_trial else {
            let summary = failures
                .iter()
                .map(TrialFailure::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(PartitionError::AllTrialsFailed(summary));
        };
        Ok(TrialReport {
            partition: partitions[best_trial]
                .take()
                .expect("winner has a partition"),
            best_trial,
            trial_rfs,
            failures,
        })
    }
}

/// One panic-isolated trial on the calling (scoped worker) thread.
fn run_trial(
    graph: GraphView<'_>,
    num_partitions: usize,
    config: TlpConfig,
    probe: Option<fn(usize)>,
    index: usize,
) -> TrialOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(probe) = probe {
            probe(index);
        }
        run_staged(graph, num_partitions, &config, ModularitySwitch).map(|(partition, _)| {
            let rf = PartitionMetrics::compute(graph, &partition).replication_factor;
            (partition, rf)
        })
    }));
    match result {
        Ok(Ok((partition, rf))) => TrialOutcome::Done(partition, rf),
        Ok(Err(e)) => TrialOutcome::Error(e),
        Err(payload) => TrialOutcome::Poisoned(panic_message(payload)),
    }
}

/// One panic-isolated trial on a dedicated thread, abandoned (detached, not
/// killed) if it outlives `deadline`.
fn run_trial_with_deadline(
    graph: Arc<CsrGraph>,
    num_partitions: usize,
    config: TlpConfig,
    probe: Option<fn(usize)>,
    index: usize,
    deadline: Duration,
) -> TrialOutcome {
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("tlp-trial-{index}"))
        .spawn(move || {
            let outcome = run_trial(graph.view(), num_partitions, config, probe, index);
            // The receiver is gone if the watchdog already timed out.
            let _ = tx.send(outcome);
        });
    if spawned.is_err() {
        return TrialOutcome::Poisoned("could not spawn trial thread".to_string());
    }
    match rx.recv_timeout(deadline) {
        Ok(outcome) => outcome,
        Err(mpsc::RecvTimeoutError::Timeout) => TrialOutcome::Poisoned(format!(
            "trial exceeded its {deadline:?} deadline and was abandoned"
        )),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            TrialOutcome::Poisoned("trial thread exited without reporting".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgePartitioner, TwoStageLocalPartitioner};
    use tlp_graph::generators::chung_lu;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn trial_zero_keeps_the_base_seed() {
        assert_eq!(trial_seed(42, 0), 42);
        assert_ne!(trial_seed(42, 1), 42);
        assert_ne!(trial_seed(42, 1), trial_seed(42, 2));
        assert_ne!(trial_seed(42, 1), trial_seed(43, 1));
    }

    #[test]
    fn single_trial_matches_plain_run() {
        let g = chung_lu(200, 800, 2.2, 3);
        let config = TlpConfig::new().seed(7);
        let plain = TwoStageLocalPartitioner::new(config)
            .partition(&g, 5)
            .unwrap();
        let report = ParallelTrialRunner::new(config.trials(1))
            .run(&g, 5)
            .unwrap();
        assert_eq!(report.partition, plain);
        assert_eq!(report.best_trial, 0);
        assert_eq!(report.trial_rfs.len(), 1);
    }

    #[test]
    fn best_of_n_is_no_worse_than_trial_zero() {
        let g = chung_lu(300, 1200, 2.2, 5);
        let config = TlpConfig::new().seed(11);
        let single = ParallelTrialRunner::new(config.trials(1))
            .run(&g, 8)
            .unwrap();
        let multi = ParallelTrialRunner::new(config.trials(6))
            .run(&g, 8)
            .unwrap();
        assert!(
            multi.best_rf() <= single.best_rf() + 1e-12,
            "best-of-6 RF {} worse than single-trial RF {}",
            multi.best_rf(),
            single.best_rf()
        );
        // Trial 0 of the multi run IS the single run.
        assert_eq!(multi.trial_rfs[0], single.trial_rfs[0]);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let g = chung_lu(250, 1000, 2.1, 9);
        let base = TlpConfig::new().seed(3).trials(5);
        let one = ParallelTrialRunner::new(base.threads(1))
            .run(&g, 6)
            .unwrap();
        let many = ParallelTrialRunner::new(base.threads(4))
            .run(&g, 6)
            .unwrap();
        assert_eq!(one.partition, many.partition);
        assert_eq!(one.best_trial, many.best_trial);
        assert_eq!(one.trial_rfs, many.trial_rfs);
    }

    /// Two runs with identical configs must be bit-identical even when the
    /// trials race across worker threads — scheduling must never leak into
    /// the result.
    #[test]
    fn same_seed_runs_are_bit_identical_with_parallel_trials() {
        let g = chung_lu(250, 1000, 2.1, 4);
        let config = TlpConfig::new().seed(13).trials(4).threads(3);
        let first = ParallelTrialRunner::new(config).run(&g, 6).unwrap();
        let second = ParallelTrialRunner::new(config).run(&g, 6).unwrap();
        assert_eq!(first.partition, second.partition);
        assert_eq!(first.best_trial, second.best_trial);
        assert_eq!(first.trial_rfs, second.trial_rfs);
        // The same holds through the public partitioner facade.
        let a = TwoStageLocalPartitioner::new(config)
            .partition(&g, 6)
            .unwrap();
        let b = TwoStageLocalPartitioner::new(config)
            .partition(&g, 6)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, first.partition);
    }

    fn panic_on_trial_two(index: usize) {
        if index == 2 {
            panic!("injected trial poison");
        }
    }

    #[test]
    fn poisoned_trial_is_excluded_not_fatal() {
        let g = chung_lu(200, 800, 2.2, 7);
        let config = TlpConfig::new().seed(5).trials(4);
        let report = ParallelTrialRunner::new(config)
            .trial_probe(panic_on_trial_two)
            .run(&g, 6)
            .unwrap();
        assert_eq!(report.trial_rfs.len(), 4);
        assert!(report.trial_rfs[2].is_nan(), "poisoned slot must be NaN");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 2);
        assert!(report.failures[0].message.contains("injected trial poison"));
        assert_ne!(report.best_trial, 2);
        report.partition.validate_for(&g).unwrap();
        // The surviving trials are the ones a healthy run would produce.
        let healthy = ParallelTrialRunner::new(config).run(&g, 6).unwrap();
        for i in [0usize, 1, 3] {
            assert_eq!(report.trial_rfs[i], healthy.trial_rfs[i]);
        }
    }

    fn panic_always(_index: usize) {
        panic!("every trial dies");
    }

    #[test]
    fn all_trials_failing_is_a_typed_error() {
        let g = chung_lu(100, 400, 2.2, 1);
        let err = ParallelTrialRunner::new(TlpConfig::new().trials(3))
            .trial_probe(panic_always)
            .run(&g, 4)
            .unwrap_err();
        assert!(matches!(err, PartitionError::AllTrialsFailed(_)));
        assert!(format!("{err}").contains("every trial dies"));
    }

    fn stall_trial_one(index: usize) {
        if index == 1 {
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }

    #[test]
    fn deadline_excludes_overrunning_trial() {
        let g = chung_lu(100, 400, 2.2, 2);
        let report = ParallelTrialRunner::new(TlpConfig::new().seed(3).trials(2).threads(1))
            .trial_deadline(std::time::Duration::from_millis(100))
            .trial_probe(stall_trial_one)
            .run(&g, 4)
            .unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 1);
        assert!(report.failures[0].message.contains("deadline"));
        assert_eq!(report.best_trial, 0);
        report.partition.validate_for(&g).unwrap();
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let g = chung_lu(150, 600, 2.2, 4);
        let config = TlpConfig::new().seed(8).trials(3);
        let plain = ParallelTrialRunner::new(config).run(&g, 5).unwrap();
        let dead = ParallelTrialRunner::new(config)
            .trial_deadline(std::time::Duration::from_secs(120))
            .run(&g, 5)
            .unwrap();
        assert_eq!(plain.partition, dead.partition);
        assert_eq!(plain.best_trial, dead.best_trial);
        assert_eq!(plain.trial_rfs, dead.trial_rfs);
        assert!(dead.failures.is_empty());
    }

    #[test]
    fn zero_trials_is_rejected() {
        let g = chung_lu(50, 150, 2.2, 1);
        let err = ParallelTrialRunner::new(TlpConfig::new().trials(0))
            .run(&g, 2)
            .unwrap_err();
        assert!(matches!(
            err,
            PartitionError::InvalidParameter { name: "trials", .. }
        ));
    }

    #[test]
    fn observed_parallel_map_stream_is_thread_count_invariant() {
        let items: Vec<u64> = (0..6).collect();
        let run = |threads: usize| {
            tlp_obs::with_recording(|| {
                observed_parallel_map(threads, &items, |i, &x| {
                    let _span = tlp_obs::span("item");
                    tlp_obs::counter("item.value", x + 1);
                    i as u64 + x
                })
            })
        };
        let (results_1, events_1) = run(1);
        let (results_4, events_4) = run(4);
        assert_eq!(results_1, results_4);
        assert_eq!(
            tlp_obs::canonical_lines(&events_1),
            tlp_obs::canonical_lines(&events_4)
        );
        // Each item's events carry its index, in item order.
        let trials: Vec<Option<u32>> = events_1
            .iter()
            .filter(|e| matches!(e.kind, tlp_obs::EventKind::Counter { .. }))
            .map(|e| e.trial)
            .collect();
        assert_eq!(trials, (0..6).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn observed_parallel_map_without_observer_is_plain() {
        let items = [1u64, 2, 3];
        let doubled = observed_parallel_map(2, &items, |_, &x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
        assert!(!tlp_obs::is_enabled());
    }
}
