//! Error type shared by all partitioners in the workspace.

use std::error::Error as StdError;
use std::fmt;

/// Errors returned by [`crate::EdgePartitioner::partition`] and partition
/// constructors.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The requested number of partitions was zero.
    ZeroPartitions,
    /// A configuration ratio/factor was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be in [0, 1]"`.
        constraint: &'static str,
    },
    /// An assignment vector did not form a valid partition of the graph.
    InvalidAssignment(String),
    /// A checkpoint could not be applied to (or emitted during) a run:
    /// wrong graph/config fingerprint, inconsistent state, or a sink
    /// failure while persisting.
    Checkpoint(String),
    /// Every trial of a best-of-t run failed (panicked or timed out), so
    /// there is no partition to return. The message lists each failure.
    AllTrialsFailed(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroPartitions => {
                write!(f, "number of partitions must be at least 1")
            }
            PartitionError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            PartitionError::InvalidAssignment(message) => {
                write!(f, "invalid edge assignment: {message}")
            }
            PartitionError::Checkpoint(message) => {
                write!(f, "checkpoint error: {message}")
            }
            PartitionError::AllTrialsFailed(message) => {
                write!(f, "all trials failed: {message}")
            }
        }
    }
}

impl StdError for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            format!("{}", PartitionError::ZeroPartitions),
            "number of partitions must be at least 1"
        );
        let e = PartitionError::InvalidParameter {
            name: "ratio",
            value: 1.5,
            constraint: "must be in [0, 1]",
        };
        assert!(format!("{e}").contains("ratio"));
        assert!(format!("{e}").contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PartitionError>();
    }
}
