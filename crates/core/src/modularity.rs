//! Partition modularity `M(P_k) = |E(P_k)| / |E_out(P_k)|` (Definition 8).

use std::fmt;

/// The modularity of a growing local partition, kept in exact integer form.
///
/// The paper's stage criterion (`M <= 1` vs `M >= 1`, Table II) reduces to
/// an integer comparison of internal vs. external edge counts, so no
/// floating-point boundary cases can misclassify a stage.
///
/// # Example
///
/// ```
/// use tlp_core::Modularity;
///
/// let m = Modularity::new(2, 3); // Fig. 5(a): |E|=2, |E_out|=3
/// assert!(m.is_stage_one());
/// assert!((m.value() - 0.6667).abs() < 1e-3);
///
/// let m = Modularity::new(5, 1); // Fig. 5(b)-style tight partition
/// assert!(!m.is_stage_one());
/// assert_eq!(m.value(), 5.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Modularity {
    internal: usize,
    external: usize,
}

impl Modularity {
    /// Creates a modularity from internal and external edge counts.
    pub fn new(internal: usize, external: usize) -> Self {
        Modularity { internal, external }
    }

    /// `|E(P_k)|`: edges allocated to the partition.
    pub fn internal(&self) -> usize {
        self.internal
    }

    /// `|E_out(P_k)|`: unallocated edges with exactly one endpoint inside.
    pub fn external(&self) -> usize {
        self.external
    }

    /// The ratio `M = internal / external`; `+inf` when `external == 0` and
    /// `internal > 0`, and `0` for the empty partition.
    pub fn value(&self) -> f64 {
        if self.external == 0 {
            if self.internal == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.internal as f64 / self.external as f64
        }
    }

    /// Stage criterion of Table II: Stage I iff `M <= 1`, i.e. iff
    /// `internal <= external` (with the empty partition counted as Stage I).
    pub fn is_stage_one(&self) -> bool {
        self.internal <= self.external && !(self.internal > 0 && self.external == 0)
    }
}

impl Default for Modularity {
    fn default() -> Self {
        Modularity::new(0, 0)
    }
}

impl fmt::Display for Modularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} = {:.4}",
            self.internal,
            self.external,
            self.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_examples() {
        // Fig 5(a): 2 internal, 3 external -> M = 0.67, Stage I.
        let a = Modularity::new(2, 3);
        assert!(a.is_stage_one());
        assert!((a.value() - 2.0 / 3.0).abs() < 1e-12);
        // Fig 5(b): M = 5, Stage II.
        let b = Modularity::new(5, 1);
        assert!(!b.is_stage_one());
        assert_eq!(b.value(), 5.0);
    }

    #[test]
    fn boundary_m_equals_one_is_stage_one() {
        // Table II overlaps at M = 1; we resolve to Stage I, so the switch
        // to Stage II happens strictly after internal edges exceed external.
        let m = Modularity::new(4, 4);
        assert!(m.is_stage_one());
        assert_eq!(m.value(), 1.0);
    }

    #[test]
    fn empty_partition_is_stage_one() {
        let m = Modularity::default();
        assert!(m.is_stage_one());
        assert_eq!(m.value(), 0.0);
    }

    #[test]
    fn zero_external_is_stage_two_with_infinite_value() {
        let m = Modularity::new(3, 0);
        assert!(!m.is_stage_one());
        assert!(m.value().is_infinite());
    }

    #[test]
    fn display_is_informative() {
        let m = Modularity::new(1, 2);
        assert_eq!(format!("{m}"), "1/2 = 0.5000");
    }
}
