//! The output type of every edge partitioner: an `EdgeId -> partition` map.

use crate::PartitionError;
use serde::{Deserialize, Serialize};
use tlp_graph::EdgeId;

/// Identifier of a partition, dense in `0..p`.
pub type PartitionId = u32;

/// A balanced `p`-edge partition (Definition 3 of the paper): every edge of
/// the graph is assigned to exactly one of `p` partitions.
///
/// The assignment is stored as a flat vector indexed by [`EdgeId`], matching
/// the dense edge ids of [`tlp_graph::CsrGraph`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgePartition {
    num_partitions: usize,
    assignment: Vec<PartitionId>,
}

impl EdgePartition {
    /// Wraps a complete assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] if `num_partitions == 0`
    /// and [`PartitionError::InvalidAssignment`] if any entry is `>=
    /// num_partitions`.
    ///
    /// # Example
    ///
    /// ```
    /// use tlp_core::EdgePartition;
    ///
    /// let part = EdgePartition::new(2, vec![0, 1, 0])?;
    /// assert_eq!(part.partition_of(1), 1);
    /// assert_eq!(part.edge_counts(), vec![2, 1]);
    /// # Ok::<(), tlp_core::PartitionError>(())
    /// ```
    pub fn new(
        num_partitions: usize,
        assignment: Vec<PartitionId>,
    ) -> Result<Self, PartitionError> {
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if let Some((e, &pid)) = assignment
            .iter()
            .enumerate()
            .find(|(_, &pid)| pid as usize >= num_partitions)
        {
            return Err(PartitionError::InvalidAssignment(format!(
                "edge {e} assigned to partition {pid}, but only {num_partitions} partitions exist"
            )));
        }
        Ok(EdgePartition {
            num_partitions,
            assignment,
        })
    }

    /// Number of partitions `p`.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of assigned edges (the graph's `m`).
    pub fn num_edges(&self) -> usize {
        self.assignment.len()
    }

    /// Partition of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn partition_of(&self, e: EdgeId) -> PartitionId {
        self.assignment[e as usize]
    }

    /// The raw assignment vector, indexed by [`EdgeId`].
    pub fn assignments(&self) -> &[PartitionId] {
        &self.assignment
    }

    /// Edge count of every partition, indexed by [`PartitionId`].
    pub fn edge_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_partitions];
        for &pid in &self.assignment {
            counts[pid as usize] += 1;
        }
        counts
    }

    /// Checks the partition covers exactly the edges of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidAssignment`] if the edge counts
    /// disagree.
    pub fn validate_for<'a>(&self, graph: impl Into<tlp_graph::GraphView<'a>>) -> Result<(), PartitionError> {
        let graph = graph.into();
        if self.assignment.len() != graph.num_edges() {
            return Err(PartitionError::InvalidAssignment(format!(
                "partition covers {} edges but graph has {}",
                self.assignment.len(),
                graph.num_edges()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn valid_partition_roundtrip() {
        let p = EdgePartition::new(3, vec![0, 2, 1, 0]).unwrap();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.partition_of(2), 1);
        assert_eq!(p.edge_counts(), vec![2, 1, 1]);
        assert_eq!(p.assignments(), &[0, 2, 1, 0]);
    }

    #[test]
    fn zero_partitions_rejected() {
        assert_eq!(
            EdgePartition::new(0, vec![]).unwrap_err(),
            PartitionError::ZeroPartitions
        );
    }

    #[test]
    fn out_of_range_assignment_rejected() {
        let err = EdgePartition::new(2, vec![0, 2]).unwrap_err();
        assert!(matches!(err, PartitionError::InvalidAssignment(_)));
    }

    #[test]
    fn empty_partitions_are_allowed() {
        let p = EdgePartition::new(4, vec![0, 0]).unwrap();
        assert_eq!(p.edge_counts(), vec![2, 0, 0, 0]);
    }

    #[test]
    fn validate_against_graph() {
        let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
        let good = EdgePartition::new(2, vec![0, 1]).unwrap();
        assert!(good.validate_for(&g).is_ok());
        let bad = EdgePartition::new(2, vec![0]).unwrap();
        assert!(bad.validate_for(&g).is_err());
    }
}
