//! Partition quality metrics: replication factor, balance, and per-partition
//! modularity.

use crate::{EdgePartition, Modularity, PartitionId};
use serde::{Deserialize, Serialize};
use tlp_graph::{GraphView, VertexId};

/// Quality metrics of a finished edge partition.
///
/// The headline metric is the **replication factor** (Definition 4):
/// `RF = Σ_k |V(P_k)| / |V|`, where `V(P_k)` is the set of vertices incident
/// to at least one edge of `P_k`. The denominator counts vertices incident
/// to at least one edge — identical to `|V|` on the paper's datasets, and
/// the only sensible choice when synthetic graphs carry isolated vertices
/// (which belong to no partition under edge partitioning).
///
/// # Example
///
/// ```
/// use tlp_core::{EdgePartition, PartitionMetrics};
/// use tlp_graph::GraphBuilder;
///
/// // Path 0-1-2 split between two partitions: vertex 1 is spanned.
/// let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
/// let part = EdgePartition::new(2, vec![0, 1])?;
/// let m = PartitionMetrics::compute(&g, &part);
/// assert_eq!(m.spanned_vertices, 1);
/// assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// Replication factor `RF >= 1` (1 = no vertex is replicated).
    pub replication_factor: f64,
    /// Edges per partition, indexed by partition id.
    pub edge_counts: Vec<usize>,
    /// Distinct vertices per partition, indexed by partition id.
    pub vertex_counts: Vec<usize>,
    /// Load imbalance: `max_k |E(P_k)| / (|E| / p)` (1.0 = perfectly even).
    pub balance: f64,
    /// Final modularity of each partition: `|E(P_k)|` over the number of
    /// edge-endpoint incidences that edges of *other* partitions have inside
    /// `V(P_k)` (the exact form of the quantity in the paper's Claim 1).
    pub modularity: Vec<f64>,
    /// Number of vertices appearing in two or more partitions.
    pub spanned_vertices: usize,
    /// Number of vertices incident to at least one edge (the RF denominator).
    pub covered_vertices: usize,
    /// `Σ_k |V(P_k)|` (the RF numerator).
    pub total_replicas: usize,
}

impl PartitionMetrics {
    /// The canonical replication-factor expression: `total_replicas /
    /// covered_vertices`, with the empty graph defined as `1.0`.
    ///
    /// Every RF reported anywhere in the workspace (live runs, partition
    /// store manifests, streamed recomputation) funnels through this one
    /// function, so all code paths agree bit-for-bit.
    pub fn replication_factor_of(total_replicas: usize, covered_vertices: usize) -> f64 {
        if covered_vertices == 0 {
            1.0
        } else {
            total_replicas as f64 / covered_vertices as f64
        }
    }

    /// The canonical balance expression: `max_edges / (num_edges / p)`,
    /// with the empty graph defined as `1.0`.
    pub fn balance_of(max_edges: usize, num_edges: usize, num_partitions: usize) -> f64 {
        if num_edges == 0 {
            1.0
        } else {
            let ideal = num_edges as f64 / num_partitions as f64;
            max_edges as f64 / ideal
        }
    }

    /// Computes all metrics in one pass over the graph.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover exactly the edges of `graph`
    /// (use [`EdgePartition::validate_for`] to check first when in doubt).
    pub fn compute<'a>(graph: impl Into<GraphView<'a>>, partition: &EdgePartition) -> Self {
        let graph = graph.into();
        assert_eq!(
            partition.num_edges(),
            graph.num_edges(),
            "partition does not match graph"
        );
        let p = partition.num_partitions();
        let mut vertex_counts = vec![0usize; p];
        let mut external = vec![0usize; p];
        let mut total_replicas = 0usize;
        let mut covered_vertices = 0usize;
        let mut spanned_vertices = 0usize;
        let mut scratch: Vec<u32> = Vec::new();

        for v in graph.vertices() {
            scratch.clear();
            scratch.extend(graph.incident(v).map(|(_, e)| partition.partition_of(e)));
            if scratch.is_empty() {
                continue;
            }
            scratch.sort_unstable();
            scratch.dedup();
            covered_vertices += 1;
            total_replicas += scratch.len();
            if scratch.len() > 1 {
                spanned_vertices += 1;
            }
            for &pid in &scratch {
                vertex_counts[pid as usize] += 1;
            }
            // Every incident edge assigned to q contributes one external
            // incidence to each *other* partition v belongs to.
            for (_, e) in graph.incident(v) {
                let q = partition.partition_of(e);
                for &pid in &scratch {
                    if pid != q {
                        external[pid as usize] += 1;
                    }
                }
            }
        }

        let edge_counts = partition.edge_counts();
        let balance = Self::balance_of(
            edge_counts.iter().copied().max().unwrap_or(0),
            graph.num_edges(),
            p,
        );
        let modularity = edge_counts
            .iter()
            .zip(&external)
            .map(|(&internal, &ext)| Modularity::new(internal, ext).value())
            .collect();
        let replication_factor = Self::replication_factor_of(total_replicas, covered_vertices);

        PartitionMetrics {
            replication_factor,
            edge_counts,
            vertex_counts,
            balance,
            modularity,
            spanned_vertices,
            covered_vertices,
            total_replicas,
        }
    }
}

/// Two-pass metrics accumulator for assignments produced by streaming
/// sources, where the graph is never materialized.
///
/// Pass 1 ([`observe_assignment`](Self::observe_assignment)) records each
/// edge's endpoints and partition, building per-vertex partition membership
/// bitsets and per-partition edge counts. Pass 2
/// ([`observe_external`](Self::observe_external)) replays the identical
/// edge/assignment sequence to count external incidences (the denominator
/// of the paper's Claim 1 modularity), which needs the completed membership
/// sets. [`finish`](Self::finish) then produces a [`PartitionMetrics`].
///
/// Every accumulation is an integer add, and the final divisions are the
/// canonical expressions ([`PartitionMetrics::replication_factor_of`] and
/// friends), so the result is **bit-identical** to
/// [`PartitionMetrics::compute`] on the materialized `(graph, partition)`
/// pair whenever the arrival order pairs edges with the same assignments.
#[derive(Clone, Debug)]
pub struct StreamedMetrics {
    num_partitions: usize,
    /// Words per vertex in the membership bitset.
    words: usize,
    /// `num_vertices * words` bitset: vertex v belongs to partition q.
    membership: Vec<u64>,
    edge_counts: Vec<usize>,
    external: Vec<usize>,
}

impl StreamedMetrics {
    /// Creates an accumulator for `num_vertices` vertices and
    /// `num_partitions` partitions. Memory is `O(n * p / 64 + p)`.
    pub fn new(num_vertices: usize, num_partitions: usize) -> Self {
        let words = num_partitions.div_ceil(64).max(1);
        StreamedMetrics {
            num_partitions,
            words,
            membership: vec![0u64; num_vertices * words],
            edge_counts: vec![0usize; num_partitions],
            external: vec![0usize; num_partitions],
        }
    }

    fn set(&mut self, v: VertexId, q: PartitionId) {
        let base = v as usize * self.words;
        self.membership[base + q as usize / 64] |= 1u64 << (q as usize % 64);
    }

    /// Pass 1: edge `(u, v)` was assigned to partition `q`.
    pub fn observe_assignment(&mut self, u: VertexId, v: VertexId, q: PartitionId) {
        self.edge_counts[q as usize] += 1;
        self.set(u, q);
        self.set(v, q);
    }

    /// Pass 2 (after every assignment has been observed): replay edge
    /// `(u, v)` assigned to `q`; each endpoint contributes one external
    /// incidence to every *other* partition it belongs to.
    pub fn observe_external(&mut self, u: VertexId, v: VertexId, q: PartitionId) {
        for w in [u, v] {
            let base = w as usize * self.words;
            for word_idx in 0..self.words {
                let mut word = self.membership[base + word_idx];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let pid = word_idx * 64 + bit;
                    if pid != q as usize {
                        self.external[pid] += 1;
                    }
                }
            }
        }
    }

    /// Finalizes the metrics after both passes.
    pub fn finish(self) -> PartitionMetrics {
        let p = self.num_partitions;
        let mut vertex_counts = vec![0usize; p];
        let mut total_replicas = 0usize;
        let mut covered_vertices = 0usize;
        let mut spanned_vertices = 0usize;
        for vertex in self.membership.chunks_exact(self.words) {
            let mut replicas = 0usize;
            for (word_idx, &word) in vertex.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    vertex_counts[word_idx * 64 + bit] += 1;
                    replicas += 1;
                }
            }
            if replicas > 0 {
                covered_vertices += 1;
                total_replicas += replicas;
                if replicas > 1 {
                    spanned_vertices += 1;
                }
            }
        }
        let num_edges: usize = self.edge_counts.iter().sum();
        let balance = PartitionMetrics::balance_of(
            self.edge_counts.iter().copied().max().unwrap_or(0),
            num_edges,
            p,
        );
        let modularity = self
            .edge_counts
            .iter()
            .zip(&self.external)
            .map(|(&internal, &ext)| Modularity::new(internal, ext).value())
            .collect();
        PartitionMetrics {
            replication_factor: PartitionMetrics::replication_factor_of(
                total_replicas,
                covered_vertices,
            ),
            edge_counts: self.edge_counts,
            vertex_counts,
            balance,
            modularity,
            spanned_vertices,
            covered_vertices,
            total_replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgePartition;
    use tlp_graph::{CsrGraph, GraphBuilder};

    fn triangle_pair() -> CsrGraph {
        // Two triangles sharing vertex 2.
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
            .build()
    }

    #[test]
    fn perfect_split_replicates_only_the_cut_vertex() {
        let g = triangle_pair();
        // Edges (0,1),(0,2),(1,2) -> 0; (2,3),(2,4),(3,4) -> 1.
        // Edge ids are sorted canonical: (0,1),(0,2),(1,2),(2,3),(2,4),(3,4).
        let part = EdgePartition::new(2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.spanned_vertices, 1); // vertex 2
        assert_eq!(m.vertex_counts, vec![3, 3]);
        assert_eq!(m.total_replicas, 6);
        assert_eq!(m.covered_vertices, 5);
        assert!((m.replication_factor - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.edge_counts, vec![3, 3]);
        assert!((m.balance - 1.0).abs() < 1e-12);
        // Each side: 3 internal edges; external incidences = the 2 edges of
        // the other triangle touching shared vertex 2 -> modularity 3/2.
        assert_eq!(m.modularity, vec![1.5, 1.5]);
    }

    #[test]
    fn single_partition_has_rf_one_and_infinite_modularity() {
        let g = triangle_pair();
        let part = EdgePartition::new(1, vec![0; 6]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.replication_factor, 1.0);
        assert_eq!(m.spanned_vertices, 0);
        assert!(m.modularity[0].is_infinite());
    }

    #[test]
    fn worst_case_scatter_maximizes_rf() {
        // A star where every edge goes to a different partition: the center
        // appears in all p partitions.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (0, 2), (0, 3)])
            .build();
        let part = EdgePartition::new(3, vec![0, 1, 2]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.spanned_vertices, 1);
        // center: 3 replicas; leaves: 1 each -> (3 + 3) / 4.
        assert!((m.replication_factor - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_do_not_deflate_rf() {
        let g = GraphBuilder::new()
            .reserve_vertices(100)
            .add_edges([(0, 1), (1, 2)])
            .build();
        let part = EdgePartition::new(2, vec![0, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.covered_vertices, 3);
        assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partition_slots_have_zero_counts() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let part = EdgePartition::new(3, vec![1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.edge_counts, vec![0, 1, 0]);
        assert_eq!(m.vertex_counts, vec![0, 2, 0]);
        assert_eq!(m.modularity[0], 0.0);
    }

    #[test]
    fn streamed_accumulator_is_bit_identical_to_compute() {
        let g = triangle_pair();
        for assignment in [
            vec![0u32, 0, 0, 1, 1, 1],
            vec![0, 1, 2, 0, 1, 2],
            vec![2, 2, 2, 2, 2, 2],
        ] {
            let part = EdgePartition::new(3, assignment.clone()).unwrap();
            let reference = PartitionMetrics::compute(&g, &part);
            let mut acc = StreamedMetrics::new(g.num_vertices(), 3);
            for (eid, edge) in g.edges().iter().enumerate() {
                let (u, v) = edge.endpoints();
                acc.observe_assignment(u, v, assignment[eid]);
            }
            for (eid, edge) in g.edges().iter().enumerate() {
                let (u, v) = edge.endpoints();
                acc.observe_external(u, v, assignment[eid]);
            }
            assert_eq!(acc.finish(), reference);
        }
    }

    #[test]
    fn degree_sum_identity_holds() {
        // Exact bookkeeping check: sum over partitions of
        // 2 * internal + external == sum over vertices of |S_v| * deg(v).
        let g = triangle_pair();
        let part = EdgePartition::new(2, vec![0, 1, 0, 1, 0, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        let lhs: usize = m
            .edge_counts
            .iter()
            .zip(m.modularity.iter())
            .map(|(&internal, &mod_k)| {
                // Reconstruct the external count from modularity = in/ext.
                let external = if mod_k.is_infinite() || internal == 0 {
                    0
                } else {
                    (internal as f64 / mod_k).round() as usize
                };
                2 * internal + external
            })
            .sum();
        let mut rhs = 0usize;
        for v in g.vertices() {
            let mut pids: Vec<u32> = g.incident(v).map(|(_, e)| part.partition_of(e)).collect();
            pids.sort_unstable();
            pids.dedup();
            rhs += pids.len() * g.degree(v);
        }
        // When some external counts were reconstructed from floats the check
        // is still exact because the counts are small integers.
        assert_eq!(lhs, rhs);
    }
}
