//! Partition quality metrics: replication factor, balance, and per-partition
//! modularity.

use crate::{EdgePartition, Modularity};
use serde::{Deserialize, Serialize};
use tlp_graph::CsrGraph;

/// Quality metrics of a finished edge partition.
///
/// The headline metric is the **replication factor** (Definition 4):
/// `RF = Σ_k |V(P_k)| / |V|`, where `V(P_k)` is the set of vertices incident
/// to at least one edge of `P_k`. The denominator counts vertices incident
/// to at least one edge — identical to `|V|` on the paper's datasets, and
/// the only sensible choice when synthetic graphs carry isolated vertices
/// (which belong to no partition under edge partitioning).
///
/// # Example
///
/// ```
/// use tlp_core::{EdgePartition, PartitionMetrics};
/// use tlp_graph::GraphBuilder;
///
/// // Path 0-1-2 split between two partitions: vertex 1 is spanned.
/// let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
/// let part = EdgePartition::new(2, vec![0, 1])?;
/// let m = PartitionMetrics::compute(&g, &part);
/// assert_eq!(m.spanned_vertices, 1);
/// assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// Replication factor `RF >= 1` (1 = no vertex is replicated).
    pub replication_factor: f64,
    /// Edges per partition, indexed by partition id.
    pub edge_counts: Vec<usize>,
    /// Distinct vertices per partition, indexed by partition id.
    pub vertex_counts: Vec<usize>,
    /// Load imbalance: `max_k |E(P_k)| / (|E| / p)` (1.0 = perfectly even).
    pub balance: f64,
    /// Final modularity of each partition: `|E(P_k)|` over the number of
    /// edge-endpoint incidences that edges of *other* partitions have inside
    /// `V(P_k)` (the exact form of the quantity in the paper's Claim 1).
    pub modularity: Vec<f64>,
    /// Number of vertices appearing in two or more partitions.
    pub spanned_vertices: usize,
    /// Number of vertices incident to at least one edge (the RF denominator).
    pub covered_vertices: usize,
    /// `Σ_k |V(P_k)|` (the RF numerator).
    pub total_replicas: usize,
}

impl PartitionMetrics {
    /// Computes all metrics in one pass over the graph.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover exactly the edges of `graph`
    /// (use [`EdgePartition::validate_for`] to check first when in doubt).
    pub fn compute(graph: &CsrGraph, partition: &EdgePartition) -> Self {
        assert_eq!(
            partition.num_edges(),
            graph.num_edges(),
            "partition does not match graph"
        );
        let p = partition.num_partitions();
        let mut vertex_counts = vec![0usize; p];
        let mut external = vec![0usize; p];
        let mut total_replicas = 0usize;
        let mut covered_vertices = 0usize;
        let mut spanned_vertices = 0usize;
        let mut scratch: Vec<u32> = Vec::new();

        for v in graph.vertices() {
            scratch.clear();
            scratch.extend(graph.incident(v).map(|(_, e)| partition.partition_of(e)));
            if scratch.is_empty() {
                continue;
            }
            scratch.sort_unstable();
            scratch.dedup();
            covered_vertices += 1;
            total_replicas += scratch.len();
            if scratch.len() > 1 {
                spanned_vertices += 1;
            }
            for &pid in &scratch {
                vertex_counts[pid as usize] += 1;
            }
            // Every incident edge assigned to q contributes one external
            // incidence to each *other* partition v belongs to.
            for (_, e) in graph.incident(v) {
                let q = partition.partition_of(e);
                for &pid in &scratch {
                    if pid != q {
                        external[pid as usize] += 1;
                    }
                }
            }
        }

        let edge_counts = partition.edge_counts();
        let m = graph.num_edges();
        let balance = if m == 0 {
            1.0
        } else {
            let ideal = m as f64 / p as f64;
            edge_counts.iter().copied().max().unwrap_or(0) as f64 / ideal
        };
        let modularity = edge_counts
            .iter()
            .zip(&external)
            .map(|(&internal, &ext)| Modularity::new(internal, ext).value())
            .collect();
        let replication_factor = if covered_vertices == 0 {
            1.0
        } else {
            total_replicas as f64 / covered_vertices as f64
        };

        PartitionMetrics {
            replication_factor,
            edge_counts,
            vertex_counts,
            balance,
            modularity,
            spanned_vertices,
            covered_vertices,
            total_replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgePartition;
    use tlp_graph::GraphBuilder;

    fn triangle_pair() -> CsrGraph {
        // Two triangles sharing vertex 2.
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
            .build()
    }

    #[test]
    fn perfect_split_replicates_only_the_cut_vertex() {
        let g = triangle_pair();
        // Edges (0,1),(0,2),(1,2) -> 0; (2,3),(2,4),(3,4) -> 1.
        // Edge ids are sorted canonical: (0,1),(0,2),(1,2),(2,3),(2,4),(3,4).
        let part = EdgePartition::new(2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.spanned_vertices, 1); // vertex 2
        assert_eq!(m.vertex_counts, vec![3, 3]);
        assert_eq!(m.total_replicas, 6);
        assert_eq!(m.covered_vertices, 5);
        assert!((m.replication_factor - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.edge_counts, vec![3, 3]);
        assert!((m.balance - 1.0).abs() < 1e-12);
        // Each side: 3 internal edges; external incidences = the 2 edges of
        // the other triangle touching shared vertex 2 -> modularity 3/2.
        assert_eq!(m.modularity, vec![1.5, 1.5]);
    }

    #[test]
    fn single_partition_has_rf_one_and_infinite_modularity() {
        let g = triangle_pair();
        let part = EdgePartition::new(1, vec![0; 6]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.replication_factor, 1.0);
        assert_eq!(m.spanned_vertices, 0);
        assert!(m.modularity[0].is_infinite());
    }

    #[test]
    fn worst_case_scatter_maximizes_rf() {
        // A star where every edge goes to a different partition: the center
        // appears in all p partitions.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (0, 2), (0, 3)])
            .build();
        let part = EdgePartition::new(3, vec![0, 1, 2]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.spanned_vertices, 1);
        // center: 3 replicas; leaves: 1 each -> (3 + 3) / 4.
        assert!((m.replication_factor - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_do_not_deflate_rf() {
        let g = GraphBuilder::new()
            .reserve_vertices(100)
            .add_edges([(0, 1), (1, 2)])
            .build();
        let part = EdgePartition::new(2, vec![0, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.covered_vertices, 3);
        assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partition_slots_have_zero_counts() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let part = EdgePartition::new(3, vec![1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        assert_eq!(m.edge_counts, vec![0, 1, 0]);
        assert_eq!(m.vertex_counts, vec![0, 2, 0]);
        assert_eq!(m.modularity[0], 0.0);
    }

    #[test]
    fn degree_sum_identity_holds() {
        // Exact bookkeeping check: sum over partitions of
        // 2 * internal + external == sum over vertices of |S_v| * deg(v).
        let g = triangle_pair();
        let part = EdgePartition::new(2, vec![0, 1, 0, 1, 0, 1]).unwrap();
        let m = PartitionMetrics::compute(&g, &part);
        let lhs: usize = m
            .edge_counts
            .iter()
            .zip(m.modularity.iter())
            .map(|(&internal, &mod_k)| {
                // Reconstruct the external count from modularity = in/ext.
                let external = if mod_k.is_infinite() || internal == 0 {
                    0
                } else {
                    (internal as f64 / mod_k).round() as usize
                };
                2 * internal + external
            })
            .sum();
        let mut rhs = 0usize;
        for v in g.vertices() {
            let mut pids: Vec<u32> = g.incident(v).map(|(_, e)| part.partition_of(e)).collect();
            pids.sort_unstable();
            pids.dedup();
            rhs += pids.len() * g.degree(v);
        }
        // When some external counts were reconstructed from floats the check
        // is still exact because the counts are small integers.
        assert_eq!(lhs, rhs);
    }
}
