//! Mid-run snapshots of the expansion engine, for kill-and-resume runs.
//!
//! The TLP engine grows one partition per round from a single seeded RNG.
//! Everything a round consumes is either (a) derived deterministically from
//! the residual graph and the assignment so far, or (b) the RNG stream.
//! A checkpoint therefore only needs the assignment, the allocated-edge
//! bitmap (partition id 0 is a valid assignment, so "assigned" must be
//! tracked separately), the RNG's internal state, and the index of the
//! next round — the per-round workspace is rebuilt from scratch and is
//! bit-identical because all of its state is round-stamped.
//!
//! Persistence (the on-disk `checkpoint.tlpc` format) lives in `tlp-store`;
//! this module owns the in-memory snapshot and its validation against the
//! run it is resumed into.

use crate::partition::PartitionId;
use crate::PartitionError;

/// A consistent engine snapshot taken after a completed round.
///
/// Resuming a run from a checkpoint taken at round boundary `next_round`
/// produces the exact partition the uninterrupted run would have produced,
/// bit for bit — the engine's contract, enforced by the resume tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineCheckpoint {
    /// Seed the run was started with (resume must match).
    pub seed: u64,
    /// Total number of partitions `p` of the run.
    pub num_partitions: usize,
    /// Index of the first round that has NOT run yet (`k+1` after round
    /// `k` completes); `num_partitions` means all rounds are done.
    pub next_round: u32,
    /// Internal RNG state at the round boundary.
    pub rng_state: [u64; 4],
    /// Edge → partition assignment so far (meaningful only where
    /// `allocated` is set).
    pub assignment: Vec<PartitionId>,
    /// `allocated[e]` = edge `e` has been assigned in a completed round.
    pub allocated: Vec<bool>,
    /// Vertex count of the graph the snapshot belongs to.
    pub num_vertices: usize,
    /// Edge count of the graph the snapshot belongs to.
    pub num_edges: usize,
}

impl EngineCheckpoint {
    /// Validates the snapshot against the run it is about to resume.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] if the checkpoint belongs to a
    /// different graph, seed, or partition count, or is internally
    /// inconsistent.
    pub fn validate_for(
        &self,
        num_vertices: usize,
        num_edges: usize,
        num_partitions: usize,
        seed: u64,
    ) -> Result<(), PartitionError> {
        let mismatch = |what: &str, have: String, want: String| {
            PartitionError::Checkpoint(format!("checkpoint {what} is {have}, run expects {want}"))
        };
        if self.num_vertices != num_vertices || self.num_edges != num_edges {
            return Err(mismatch(
                "graph shape",
                format!("{} vertices / {} edges", self.num_vertices, self.num_edges),
                format!("{num_vertices} vertices / {num_edges} edges"),
            ));
        }
        if self.num_partitions != num_partitions {
            return Err(mismatch(
                "partition count",
                self.num_partitions.to_string(),
                num_partitions.to_string(),
            ));
        }
        if self.seed != seed {
            return Err(mismatch("seed", self.seed.to_string(), seed.to_string()));
        }
        if self.assignment.len() != num_edges || self.allocated.len() != num_edges {
            return Err(PartitionError::Checkpoint(format!(
                "checkpoint arrays cover {} / {} edges, graph has {num_edges}",
                self.assignment.len(),
                self.allocated.len()
            )));
        }
        if self.next_round as usize > num_partitions {
            return Err(PartitionError::Checkpoint(format!(
                "checkpoint next_round {} exceeds partition count {num_partitions}",
                self.next_round
            )));
        }
        for (e, (&pid, &alloc)) in self.assignment.iter().zip(&self.allocated).enumerate() {
            if alloc && pid as usize >= num_partitions {
                return Err(PartitionError::Checkpoint(format!(
                    "edge {e} assigned to partition {pid}, run has only {num_partitions}"
                )));
            }
            if alloc && pid >= self.next_round {
                return Err(PartitionError::Checkpoint(format!(
                    "edge {e} assigned to partition {pid} but only rounds < {} completed",
                    self.next_round
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> EngineCheckpoint {
        EngineCheckpoint {
            seed: 7,
            num_partitions: 4,
            next_round: 2,
            rng_state: [1, 2, 3, 4],
            assignment: vec![0, 1, 0, 0],
            allocated: vec![true, true, false, false],
            num_vertices: 5,
            num_edges: 4,
        }
    }

    #[test]
    fn valid_snapshot_passes() {
        snapshot().validate_for(5, 4, 4, 7).unwrap();
    }

    #[test]
    fn wrong_graph_seed_or_p_is_rejected() {
        let s = snapshot();
        assert!(s.validate_for(6, 4, 4, 7).is_err());
        assert!(s.validate_for(5, 3, 4, 7).is_err());
        assert!(s.validate_for(5, 4, 3, 7).is_err());
        assert!(s.validate_for(5, 4, 4, 8).is_err());
    }

    #[test]
    fn inconsistent_rounds_are_rejected() {
        let mut s = snapshot();
        s.assignment[1] = 3; // allocated in a round that has not run
        assert!(matches!(
            s.validate_for(5, 4, 4, 7),
            Err(PartitionError::Checkpoint(_))
        ));
        let mut s = snapshot();
        s.next_round = 9;
        assert!(s.validate_for(5, 4, 4, 7).is_err());
    }
}
