//! The paper's TLP algorithm: modularity-switched two-stage local
//! partitioning.

use crate::engine::{run_staged, run_staged_with_checkpoints, CheckpointSink, ModularitySwitch};
use crate::{
    EdgePartition, EdgePartitioner, EngineCheckpoint, ParallelTrialRunner, PartitionError,
    TlpConfig, Trace,
};
use tlp_graph::GraphView;

/// The two-stage local partitioner (TLP, Algorithm 1 of the paper).
///
/// Each partition is grown from a random seed vertex. While its modularity
/// `M(P_k) <= 1` the Stage I criterion (closeness x degree, Eq. 7) selects
/// vertices; once `M(P_k) > 1` the Stage II criterion (modularity gain,
/// Eq. 9) takes over.
///
/// # Example
///
/// ```
/// use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
/// use tlp_graph::generators::chung_lu;
///
/// let graph = chung_lu(300, 1_200, 2.2, 5);
/// let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
/// let partition = tlp.partition(&graph, 6)?;
/// assert_eq!(partition.num_edges(), graph.num_edges());
/// # Ok::<(), tlp_core::PartitionError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoStageLocalPartitioner {
    config: TlpConfig,
}

impl TwoStageLocalPartitioner {
    /// Creates a TLP partitioner with the given configuration.
    pub fn new(config: TlpConfig) -> Self {
        TwoStageLocalPartitioner { config }
    }

    /// The configuration this partitioner runs with.
    pub fn config(&self) -> &TlpConfig {
        &self.config
    }

    /// Partitions and returns the per-selection [`Trace`] (used by the
    /// Table VI experiment), regardless of the configured trace flag.
    /// Always a single run with the configured seed — the multi-trial
    /// racing of [`EdgePartitioner::partition`] does not apply here.
    ///
    /// # Errors
    ///
    /// Same as [`EdgePartitioner::partition`].
    pub fn partition_with_trace<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        num_partitions: usize,
    ) -> Result<(EdgePartition, Trace), PartitionError> {
        let config = self.config.record_trace(true);
        let (partition, trace) = run_staged(graph, num_partitions, &config, ModularitySwitch)?;
        Ok((partition, trace.expect("trace was requested")))
    }

    /// Single-trial partitioning with kill-and-resume support.
    ///
    /// When `resume` is given, the run continues from that round-boundary
    /// snapshot; when `sink` is given, it receives an [`EngineCheckpoint`]
    /// after each completed round. A resumed run produces the exact
    /// partition the uninterrupted run with the same seed would have (the
    /// resume bit-identity tests pin this). Multi-trial racing
    /// (`config.trials() > 1`) is a different execution model and is not
    /// checkpointable; this method always runs one trial with the
    /// configured seed.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] if `resume` does not match this
    /// graph/config, plus everything [`EdgePartitioner::partition`] returns.
    pub fn partition_with_checkpoints<'g>(
        &self,
        graph: impl Into<GraphView<'g>>,
        num_partitions: usize,
        resume: Option<&EngineCheckpoint>,
        sink: Option<CheckpointSink<'_>>,
    ) -> Result<EdgePartition, PartitionError> {
        run_staged_with_checkpoints(
            graph,
            num_partitions,
            &self.config,
            ModularitySwitch,
            resume,
            sink,
        )
        .map(|(partition, _)| partition)
    }
}

impl EdgePartitioner for TwoStageLocalPartitioner {
    fn name(&self) -> &str {
        "TLP"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        if self.config.trials_value() > 1 {
            return ParallelTrialRunner::new(self.config)
                .run(graph, num_partitions)
                .map(|report| report.partition);
        }
        run_staged(graph, num_partitions, &self.config, ModularitySwitch)
            .map(|(partition, _)| partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionMetrics;
    use tlp_graph::generators::{chung_lu, erdos_renyi};

    #[test]
    fn partitions_cover_all_edges() {
        let g = chung_lu(400, 1600, 2.2, 3);
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(9));
        let part = tlp.partition(&g, 8).unwrap();
        part.validate_for(&g).unwrap();
        assert_eq!(part.edge_counts().iter().sum::<usize>(), g.num_edges());
    }

    #[test]
    fn trace_spans_both_stages_on_dense_community_graph() {
        let g = chung_lu(400, 2400, 2.1, 4);
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(2));
        let (_, trace) = tlp.partition_with_trace(&g, 4).unwrap();
        let summary = trace.stage_degree_summary();
        assert!(summary.stage1_count > 0, "stage I never used");
        assert!(summary.stage2_count > 0, "stage II never used");
    }

    #[test]
    fn beats_random_assignment_on_clustered_graph() {
        // TLP exploits locality; on a graph with actual structure it must
        // produce a far lower replication factor than random hashing.
        let g = erdos_renyi(500, 3000, 8);
        let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1));
        let part = tlp.partition(&g, 10).unwrap();
        let rf = PartitionMetrics::compute(&g, &part).replication_factor;

        // Random baseline computed inline to avoid a dependency cycle.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        let random: Vec<u32> = (0..g.num_edges()).map(|_| rng.gen_range(0..10)).collect();
        let rpart = EdgePartition::new(10, random).unwrap();
        let rrf = PartitionMetrics::compute(&g, &rpart).replication_factor;

        assert!(
            rf < rrf,
            "TLP rf {rf} should beat random rf {rrf} on a structured graph"
        );
    }

    #[test]
    fn name_is_tlp() {
        assert_eq!(TwoStageLocalPartitioner::default().name(), "TLP");
    }
}
