//! The shared local-partitioning engine behind TLP, TLP_R, and the
//! single-stage ablations (Algorithm 1 of the paper, generalized over the
//! stage-selection policy).
//!
//! One partition is grown per round. The engine maintains:
//!
//! * a [`ResidualGraph`] of not-yet-allocated edges (rounds consume edges);
//! * the member set of the current partition (stamped per round);
//! * the frontier `N(P_k)`: non-members with at least one residual edge into
//!   the partition, each carrying
//!   - `e_in`: residual edges into the partition (Stage II input), and
//!   - `mu1`: the running maximum of Eq. 7's closeness term (Stage I input),
//!     updated incrementally as members join;
//! * exact integer counts of internal and external edges (the modularity).
//!
//! # Selection strategies
//!
//! Two implementations of "pick the optimal frontier vertex" exist, chosen
//! by [`SelectionStrategy`]; both compute the identical argmax (ties
//! included) and thus identical partitions:
//!
//! * **LinearScan** — scan the whole frontier per step, exactly as written
//!   in Algorithm 1 (`O(|N(P_k)|)` per step).
//! * **IndexedHeap** — a lazy max-heap over the Stage I key, plus one lazy
//!   min-heap on `e_ext` per `e_in` value for Stage II. The latter is sound
//!   because a frontier candidate's residual degree never changes while it
//!   waits (its edges are only consumed when it joins), so `e_in` grows
//!   monotonically, `e_ext = residual_degree - e_in` shrinks monotonically,
//!   and the Stage II objective is increasing in `e_in` / decreasing in
//!   `e_ext` — the bucket minimum is the only candidate of its `e_in` class
//!   that can win.
//!
//! All ties are broken by explicit deterministic keys, so results are
//! reproducible across runs and platforms under either strategy.

use crate::config::{ReseedPolicy, SelectionStrategy, TlpConfig};
use crate::modularity::Modularity;
use crate::partition::{EdgePartition, PartitionId};
use crate::stage1::closeness_term;
use crate::stage2::GainRatio;
use crate::trace::{SelectionRecord, Stage, Trace};
use crate::PartitionError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tlp_graph::{CsrGraph, ResidualGraph, VertexId};

/// Decides which stage's criterion selects the next vertex.
pub(crate) trait StagePolicy {
    /// Chooses the stage given the partition's current state.
    fn choose(&self, modularity: Modularity, internal: usize, capacity: usize) -> Stage;
}

/// The paper's TLP policy (Table II): Stage I while `M(P_k) <= 1`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ModularityPolicy;

impl StagePolicy for ModularityPolicy {
    fn choose(&self, modularity: Modularity, _internal: usize, _capacity: usize) -> Stage {
        if modularity.is_stage_one() {
            Stage::One
        } else {
            Stage::Two
        }
    }
}

/// The TLP_R policy (Table V): Stage I while `|E(P_k)| <= R * C`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeRatioPolicy {
    pub ratio: f64,
}

impl StagePolicy for EdgeRatioPolicy {
    fn choose(&self, _modularity: Modularity, internal: usize, capacity: usize) -> Stage {
        if self.ratio > 0.0 && (internal as f64) <= self.ratio * capacity as f64 {
            Stage::One
        } else {
            Stage::Two
        }
    }
}

/// Heap entry for Stage I: ordered by `(mu1, e_in, residual_degree, -id)`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Stage1Entry {
    mu1: f64,
    e_in: u32,
    res_deg: u32,
    vertex: VertexId,
}

impl Eq for Stage1Entry {}

impl Ord for Stage1Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mu1
            .total_cmp(&other.mu1)
            .then(self.e_in.cmp(&other.e_in))
            .then(self.res_deg.cmp(&other.res_deg))
            .then(other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for Stage1Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-graph scratch reused across rounds (one allocation per run).
struct Workspace {
    /// Round id if the vertex is a member of the partition currently being
    /// grown; `u32::MAX` when never selected in the current round. Stamped
    /// with the round index so it never needs clearing between rounds.
    member_round: Vec<u32>,
    /// Whether the vertex is currently in the frontier.
    in_frontier: Vec<bool>,
    /// Residual edges from the vertex into the current partition.
    e_in: Vec<u32>,
    /// Running maximum of the Stage I closeness term (Eq. 7).
    mu1: Vec<f64>,
    /// The frontier as a dense list (deterministic iteration order).
    frontier: Vec<VertexId>,
    /// Position of each frontier vertex in `frontier` (for swap-removal).
    frontier_pos: Vec<u32>,
    /// Scratch for collecting a vertex's residual incidence.
    incident_scratch: Vec<(VertexId, tlp_graph::EdgeId)>,
    /// Stage I priority queue (lazy; entries validated against `mu1`/`e_in`).
    stage1_heap: BinaryHeap<Stage1Entry>,
    /// Stage II buckets: `stage2_buckets[e_in]` is a lazy min-heap of
    /// `(e_ext, vertex)`.
    stage2_buckets: Vec<BinaryHeap<Reverse<(u32, VertexId)>>>,
    /// Bucket indices touched in the current round (for iteration/clearing).
    active_buckets: Vec<u32>,
    /// Round stamp marking a bucket as listed in `active_buckets`.
    bucket_stamp: Vec<u32>,
    /// Which strategy the selection functions use.
    strategy: SelectionStrategy,
    /// Maximum candidates held in the frontier (sliding-window mode).
    frontier_cap: usize,
}

impl Workspace {
    fn new(n: usize, strategy: SelectionStrategy, frontier_cap: usize) -> Self {
        Workspace {
            member_round: vec![u32::MAX; n],
            in_frontier: vec![false; n],
            e_in: vec![0; n],
            mu1: vec![0.0; n],
            frontier: Vec::new(),
            frontier_pos: vec![0; n],
            incident_scratch: Vec::new(),
            stage1_heap: BinaryHeap::new(),
            stage2_buckets: Vec::new(),
            active_buckets: Vec::new(),
            bucket_stamp: Vec::new(),
            strategy,
            frontier_cap,
        }
    }

    fn frontier_remove(&mut self, v: VertexId) {
        debug_assert!(self.in_frontier[v as usize]);
        let pos = self.frontier_pos[v as usize] as usize;
        let last = *self.frontier.last().expect("non-empty frontier");
        self.frontier.swap_remove(pos);
        if last != v {
            self.frontier_pos[last as usize] = pos as u32;
        }
        self.in_frontier[v as usize] = false;
        self.e_in[v as usize] = 0;
        self.mu1[v as usize] = 0.0;
    }

    fn frontier_clear(&mut self) {
        for i in 0..self.frontier.len() {
            let v = self.frontier[i] as usize;
            self.in_frontier[v] = false;
            self.e_in[v] = 0;
            self.mu1[v] = 0.0;
        }
        self.frontier.clear();
        self.stage1_heap.clear();
        for &b in &self.active_buckets {
            self.stage2_buckets[b as usize].clear();
        }
        self.active_buckets.clear();
    }

    /// Pushes the candidate's current state into both priority structures.
    fn push_candidate_state(&mut self, residual: &ResidualGraph<'_>, v: VertexId, round: u32) {
        if self.strategy != SelectionStrategy::IndexedHeap {
            return;
        }
        let vi = v as usize;
        let e_in = self.e_in[vi];
        let res_deg = residual.residual_degree(v) as u32;
        self.stage1_heap.push(Stage1Entry {
            mu1: self.mu1[vi],
            e_in,
            res_deg,
            vertex: v,
        });
        let bucket = e_in as usize;
        if bucket >= self.stage2_buckets.len() {
            self.stage2_buckets.resize_with(bucket + 1, BinaryHeap::new);
            self.bucket_stamp.resize(bucket + 1, u32::MAX);
        }
        if self.bucket_stamp[bucket] != round {
            self.bucket_stamp[bucket] = round;
            self.active_buckets.push(bucket as u32);
        }
        self.stage2_buckets[bucket].push(Reverse((res_deg - e_in, v)));
    }
}

/// Runs the full local partitioning (all `p` rounds) under `policy`.
///
/// Returns the edge partition and, when `config.record_trace()` holds, the
/// per-selection trace.
pub(crate) fn run<P: StagePolicy>(
    graph: &CsrGraph,
    num_partitions: usize,
    config: &TlpConfig,
    policy: &P,
) -> Result<(EdgePartition, Option<Trace>), PartitionError> {
    if num_partitions == 0 {
        return Err(PartitionError::ZeroPartitions);
    }
    config.validate()?;

    let m = graph.num_edges();
    let n = graph.num_vertices();
    let mut assignment: Vec<PartitionId> = vec![0; m];
    let mut trace = config.records_trace().then(Trace::new);
    if m == 0 {
        return Ok((EdgePartition::new(num_partitions, assignment)?, trace));
    }

    let capacity = config.capacity(m, num_partitions);
    let mut residual = ResidualGraph::new(graph);
    let mut ws = Workspace::new(
        n,
        config.selection_strategy_value(),
        config.frontier_cap_value().unwrap_or(usize::MAX),
    );
    let mut rng = StdRng::seed_from_u64(config.seed_value());

    for k in 0..num_partitions as u32 {
        if residual.is_exhausted() {
            break;
        }
        run_round(
            graph,
            &mut residual,
            &mut ws,
            &mut assignment,
            &mut rng,
            k,
            capacity,
            config.reseed_policy_value(),
            policy,
            trace.as_mut(),
        );
    }

    // Sweep any leftovers (possible only under `ReseedPolicy::Break`):
    // distribute remaining edges to the least-loaded partitions so the
    // partition is total.
    if !residual.is_exhausted() {
        let mut counts = vec![0usize; num_partitions];
        for &pid in &assignment {
            counts[pid as usize] += 1;
        }
        for e in 0..m as tlp_graph::EdgeId {
            if residual.is_free(e) {
                let (target, _) = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &c)| (c, i))
                    .expect("at least one partition");
                assignment[e as usize] = target as PartitionId;
                counts[target] += 1;
                residual.allocate(e);
            }
        }
    }

    Ok((EdgePartition::new(num_partitions, assignment)?, trace))
}

/// Grows partition `k` until capacity is exceeded or edges run out
/// (Algorithm 1).
#[allow(clippy::too_many_arguments)]
fn run_round<P: StagePolicy>(
    graph: &CsrGraph,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    assignment: &mut [PartitionId],
    rng: &mut StdRng,
    k: u32,
    capacity: usize,
    reseed_policy: ReseedPolicy,
    policy: &P,
    mut trace: Option<&mut Trace>,
) {
    let mut internal = 0usize;
    let mut external = 0usize;
    let mut step = 0u32;

    // Line 1-3: random seed vertex; its neighbors form the frontier.
    seed_vertex(graph, residual, ws, rng, assignment, k, &mut internal, &mut external);

    // Line 4: while |E(P_k)| <= C.
    while internal <= capacity {
        if ws.frontier.is_empty() {
            // Line 11-13: frontier exhausted.
            if residual.is_exhausted() || reseed_policy == ReseedPolicy::Break {
                break;
            }
            seed_vertex(graph, residual, ws, rng, assignment, k, &mut internal, &mut external);
            continue;
        }

        // Lines 5-9: pick the stage, then the optimal vertex.
        let stage = policy.choose(Modularity::new(internal, external), internal, capacity);
        let v = match (stage, ws.strategy) {
            (Stage::One, SelectionStrategy::LinearScan) => select_stage_one_scan(ws, residual),
            (Stage::One, SelectionStrategy::IndexedHeap) => select_stage_one_heap(ws, residual),
            (Stage::Two, SelectionStrategy::LinearScan) => {
                select_stage_two_scan(ws, residual, internal, external)
            }
            (Stage::Two, SelectionStrategy::IndexedHeap) => {
                select_stage_two_heap(ws, residual, internal, external)
            }
        };

        // Line 10: allocate the edges between v and P_k.
        admit_vertex(
            graph,
            residual,
            ws,
            assignment,
            k,
            v,
            &mut internal,
            &mut external,
        );

        if let Some(t) = trace.as_deref_mut() {
            t.push(SelectionRecord {
                partition: k,
                step,
                vertex: v,
                degree: graph.degree(v) as u32,
                stage,
            });
        }
        step += 1;

        if residual.is_exhausted() {
            break;
        }
    }

    ws.frontier_clear();
}

/// Adds a fresh random seed vertex as a member. Admission handles any
/// residual edges the seed already has towards existing members (possible
/// under a frontier cap, where a vertex adjacent to the partition may never
/// have been enrolled as a candidate).
#[allow(clippy::too_many_arguments)]
fn seed_vertex(
    graph: &CsrGraph,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    rng: &mut StdRng,
    assignment: &mut [PartitionId],
    k: u32,
    internal: &mut usize,
    external: &mut usize,
) {
    let n = graph.num_vertices() as u32;
    let hint: VertexId = rng.gen_range(0..n);
    let Some(seed) = residual.any_active_vertex_from(hint) else {
        return;
    };
    admit_vertex(graph, residual, ws, assignment, k, seed, internal, external);
}

/// Registers one new residual edge from frontier candidate `u` into the
/// partition: bumps `e_in`, inserting `u` (and computing its initial Stage I
/// score against all current member neighbors) if it was not yet a
/// candidate. Pushes the refreshed state into the priority structures.
fn enroll_frontier_edge(
    graph: &CsrGraph,
    residual: &ResidualGraph<'_>,
    ws: &mut Workspace,
    k: u32,
    u: VertexId,
) {
    let ui = u as usize;
    debug_assert_ne!(ws.member_round[ui], k, "members cannot be candidates");
    if ws.in_frontier[ui] {
        ws.e_in[ui] += 1;
    } else {
        // Sliding-window mode: once the frontier is at its cap, further
        // vertices are not enrolled as candidates. Their edges still count
        // as external, and they are picked up by later edge events (or
        // later rounds) once space frees up — coverage is unaffected, only
        // candidate quality.
        if ws.frontier.len() >= ws.frontier_cap {
            return;
        }
        ws.in_frontier[ui] = true;
        ws.frontier_pos[ui] = ws.frontier.len() as u32;
        ws.frontier.push(u);
        ws.e_in[ui] = 1;
        // Initial mu_s1: max closeness term against members already adjacent
        // (static adjacency — including edges consumed by earlier rounds).
        let mut best = 0.0f64;
        for &w in graph.neighbors(u) {
            if ws.member_round[w as usize] == k {
                let term = closeness_term(graph, u, w);
                if term > best {
                    best = term;
                }
            }
        }
        ws.mu1[ui] = best;
    }
    ws.push_candidate_state(residual, u, k);
}

type StageOneKey = (f64, u32, usize);

fn stage_one_key(ws: &Workspace, residual: &ResidualGraph<'_>, v: VertexId) -> StageOneKey {
    (
        ws.mu1[v as usize],
        ws.e_in[v as usize],
        residual.residual_degree(v),
    )
}

/// Stage I selection, reference implementation: scan the whole frontier.
/// Argmax `mu_s1`, ties broken by attachment (`e_in`), then residual degree,
/// then lowest vertex id. The tie-break chain also serves as the fallback
/// when every candidate scores 0 (no shared neighbors — e.g. in trees).
fn select_stage_one_scan(ws: &Workspace, residual: &ResidualGraph<'_>) -> VertexId {
    let mut best = ws.frontier[0];
    let mut best_key = stage_one_key(ws, residual, best);
    for &v in &ws.frontier[1..] {
        let key = stage_one_key(ws, residual, v);
        if key > best_key || (key == best_key && v < best) {
            best = v;
            best_key = key;
        }
    }
    best
}

/// Stage I selection via the lazy max-heap: pop until the top entry matches
/// the candidate's current `(mu1, e_in)` state.
fn select_stage_one_heap(ws: &mut Workspace, residual: &ResidualGraph<'_>) -> VertexId {
    while let Some(entry) = ws.stage1_heap.pop() {
        let vi = entry.vertex as usize;
        if ws.in_frontier[vi]
            && ws.e_in[vi] == entry.e_in
            && ws.mu1[vi].total_cmp(&entry.mu1).is_eq()
        {
            debug_assert_eq!(residual.residual_degree(entry.vertex) as u32, entry.res_deg);
            return entry.vertex;
        }
    }
    unreachable!("frontier non-empty but stage-1 heap exhausted");
}

type StageTwoKey = (GainRatio, u32, Reverse<usize>);

fn stage_two_key(
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
    v: VertexId,
) -> StageTwoKey {
    let e_in = ws.e_in[v as usize] as usize;
    let e_ext = residual.residual_degree(v) - e_in;
    (
        GainRatio::new(internal, external, e_in, e_ext),
        e_in as u32,
        Reverse(e_ext),
    )
}

/// Stage II selection, reference implementation: scan the whole frontier.
/// Argmax post-admission modularity (exact fraction), ties broken by
/// attachment, then fewest new external edges, then lowest vertex id.
fn select_stage_two_scan(
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
) -> VertexId {
    let mut best = ws.frontier[0];
    let mut best_key = stage_two_key(ws, residual, internal, external, best);
    for &v in &ws.frontier[1..] {
        let key = stage_two_key(ws, residual, internal, external, v);
        if key > best_key || (key == best_key && v < best) {
            best = v;
            best_key = key;
        }
    }
    best
}

/// Stage II selection via the `e_in` buckets: only each bucket's minimum
/// `(e_ext, id)` candidate can be the argmax within its `e_in` class, so it
/// suffices to compare one representative per active bucket.
fn select_stage_two_heap(
    ws: &mut Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
) -> VertexId {
    let mut best: Option<(StageTwoKey, VertexId)> = None;
    for bi in 0..ws.active_buckets.len() {
        let bucket = ws.active_buckets[bi] as usize;
        // Drop stale tops: an entry is valid iff the vertex is still a
        // candidate with exactly this e_in (then its e_ext is implied by its
        // constant residual degree).
        let rep = loop {
            match ws.stage2_buckets[bucket].peek() {
                None => break None,
                Some(&Reverse((_, v))) => {
                    let vi = v as usize;
                    if ws.in_frontier[vi] && ws.e_in[vi] as usize == bucket {
                        break Some(v);
                    }
                    ws.stage2_buckets[bucket].pop();
                }
            }
        };
        let Some(v) = rep else { continue };
        let key = stage_two_key(ws, residual, internal, external, v);
        let better = match &best {
            None => true,
            Some((bk, bv)) => key > *bk || (key == *bk && v < *bv),
        };
        if better {
            best = Some((key, v));
        }
    }
    best.expect("frontier non-empty but no stage-2 candidate").1
}

/// Moves `v` from the frontier into the partition: allocates all residual
/// edges between `v` and members, updates the modularity counters, enrolls
/// `v`'s remaining residual neighbors, and refreshes Stage I scores of
/// frontier candidates adjacent to `v`.
#[allow(clippy::too_many_arguments)]
fn admit_vertex(
    graph: &CsrGraph,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    assignment: &mut [PartitionId],
    k: u32,
    v: VertexId,
    internal: &mut usize,
    external: &mut usize,
) {
    // Seed vertices (and, under a frontier cap, reseeds of never-enrolled
    // vertices) are admitted without having been candidates.
    if ws.in_frontier[v as usize] {
        ws.frontier_remove(v);
    }
    ws.member_round[v as usize] = k;

    // Allocate edges v -> members (they were external; now internal).
    ws.incident_scratch.clear();
    ws.incident_scratch.extend(residual.residual_incident(v));
    let mut absorbed = 0usize;
    for i in 0..ws.incident_scratch.len() {
        let (u, eid) = ws.incident_scratch[i];
        if ws.member_round[u as usize] == k {
            residual.allocate(eid);
            assignment[eid as usize] = k;
            absorbed += 1;
        }
    }
    *internal += absorbed;
    *external -= absorbed;

    // Remaining residual edges of v become external; their far endpoints
    // join (or strengthen) the frontier.
    ws.incident_scratch.clear();
    ws.incident_scratch.extend(residual.residual_incident(v));
    *external += ws.incident_scratch.len();
    for i in 0..ws.incident_scratch.len() {
        let (u, _) = ws.incident_scratch[i];
        enroll_frontier_edge(graph, residual, ws, k, u);
    }

    // Incremental Stage I refresh: v is a new member, so every frontier
    // candidate statically adjacent to v gains a candidate term.
    for &u in graph.neighbors(v) {
        if ws.in_frontier[u as usize] {
            let term = closeness_term(graph, u, v);
            if term > ws.mu1[u as usize] {
                ws.mu1[u as usize] = term;
                ws.push_candidate_state(residual, u, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    fn small_graph() -> CsrGraph {
        // Two triangles joined by a bridge.
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build()
    }

    fn run_tlp(graph: &CsrGraph, p: usize, seed: u64) -> EdgePartition {
        let config = TlpConfig::new().seed(seed);
        run(graph, p, &config, &ModularityPolicy).unwrap().0
    }

    #[test]
    fn every_edge_is_assigned_exactly_once() {
        let g = small_graph();
        for p in 1..=4 {
            let part = run_tlp(&g, p, 1);
            assert_eq!(part.num_edges(), g.num_edges());
            assert_eq!(part.edge_counts().iter().sum::<usize>(), g.num_edges());
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = small_graph();
        let part = run_tlp(&g, 1, 3);
        assert_eq!(part.edge_counts(), vec![g.num_edges()]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = small_graph();
        assert_eq!(run_tlp(&g, 3, 7), run_tlp(&g, 3, 7));
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = small_graph();
        let config = TlpConfig::new();
        assert_eq!(
            run(&g, 0, &config, &ModularityPolicy).unwrap_err(),
            PartitionError::ZeroPartitions
        );
    }

    #[test]
    fn empty_graph_produces_empty_partition() {
        let g = GraphBuilder::new().build();
        let config = TlpConfig::new();
        let (part, _) = run(&g, 4, &config, &ModularityPolicy).unwrap();
        assert_eq!(part.num_edges(), 0);
        assert_eq!(part.edge_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn disconnected_graph_is_fully_covered_with_reseed() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)])
            .build();
        let part = run_tlp(&g, 2, 5);
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn break_policy_sweeps_leftovers() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)])
            .build();
        let config = TlpConfig::new().reseed_policy(ReseedPolicy::Break).seed(2);
        let (part, _) = run(&g, 2, &config, &ModularityPolicy).unwrap();
        // All 5 edges must still be assigned even though each round's
        // frontier dies immediately in this perfect matching.
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn capacity_overshoot_is_bounded_by_last_vertex_degree() {
        let g = tlp_graph::generators::erdos_renyi(60, 240, 9);
        let p = 4;
        let part = run_tlp(&g, p, 11);
        let capacity = TlpConfig::new().capacity(g.num_edges(), p);
        let max_degree = (0..60).map(|v| g.degree(v)).max().unwrap();
        for (pid, &count) in part.edge_counts().iter().enumerate() {
            assert!(
                count <= capacity + max_degree,
                "partition {pid} holds {count} edges, capacity {capacity}"
            );
        }
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let g = small_graph();
        let config = TlpConfig::new().record_trace(true).seed(1);
        let (_, trace) = run(&g, 2, &config, &ModularityPolicy).unwrap();
        let trace = trace.expect("trace requested");
        assert!(!trace.is_empty());
        // Selections must name real vertices with their true degrees.
        for r in trace.records() {
            assert_eq!(r.degree as usize, g.degree(r.vertex));
            assert!((r.partition as usize) < 2);
        }
    }

    #[test]
    fn no_trace_by_default() {
        let g = small_graph();
        let config = TlpConfig::new();
        let (_, trace) = run(&g, 2, &config, &ModularityPolicy).unwrap();
        assert!(trace.is_none());
    }

    #[test]
    fn edge_ratio_policy_boundaries() {
        let policy_all_one = EdgeRatioPolicy { ratio: 1.0 };
        let policy_all_two = EdgeRatioPolicy { ratio: 0.0 };
        let m = Modularity::new(5, 1);
        assert_eq!(policy_all_one.choose(m, 5, 10), Stage::One);
        assert_eq!(policy_all_two.choose(m, 0, 10), Stage::Two);
        let half = EdgeRatioPolicy { ratio: 0.5 };
        assert_eq!(half.choose(m, 4, 10), Stage::One);
        assert_eq!(half.choose(m, 6, 10), Stage::Two);
    }

    #[test]
    fn modularity_policy_switches_at_one() {
        assert_eq!(
            ModularityPolicy.choose(Modularity::new(3, 4), 3, 100),
            Stage::One
        );
        assert_eq!(
            ModularityPolicy.choose(Modularity::new(5, 4), 5, 100),
            Stage::Two
        );
    }

    #[test]
    fn more_partitions_than_edges_leaves_empties() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let part = run_tlp(&g, 5, 1);
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 1);
        assert_eq!(part.num_partitions(), 5);
    }

    /// The heap-indexed selection must reproduce the linear scan exactly —
    /// same argmax, same ties, same partitions — across graph families,
    /// partition counts, and policies.
    #[test]
    fn indexed_selection_equals_linear_scan() {
        let graphs = [
            tlp_graph::generators::chung_lu(300, 1500, 2.1, 5),
            tlp_graph::generators::erdos_renyi(200, 600, 6),
            tlp_graph::generators::genealogy(400, 650, 7),
            tlp_graph::generators::barabasi_albert(250, 3, 8),
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for p in [2, 5, 9] {
                for seed in [0u64, 1, 2] {
                    let scan = run(
                        g,
                        p,
                        &TlpConfig::new()
                            .seed(seed)
                            .selection_strategy(SelectionStrategy::LinearScan),
                        &ModularityPolicy,
                    )
                    .unwrap()
                    .0;
                    let heap = run(
                        g,
                        p,
                        &TlpConfig::new()
                            .seed(seed)
                            .selection_strategy(SelectionStrategy::IndexedHeap),
                        &ModularityPolicy,
                    )
                    .unwrap()
                    .0;
                    assert_eq!(scan, heap, "graph {gi}, p={p}, seed={seed}");
                }
            }
        }
    }

    /// A frontier cap (the paper's §V sliding-window idea) must never break
    /// coverage or determinism, only bound the candidate set.
    #[test]
    fn frontier_cap_keeps_coverage() {
        let g = tlp_graph::generators::chung_lu(400, 2000, 2.1, 3);
        for cap in [1usize, 4, 64, 100_000] {
            let config = TlpConfig::new().seed(5).frontier_cap(cap);
            let (part, _) = run(&g, 6, &config, &ModularityPolicy).unwrap();
            assert_eq!(
                part.edge_counts().iter().sum::<usize>(),
                g.num_edges(),
                "cap {cap} lost edges"
            );
            let (part2, _) = run(&g, 6, &config, &ModularityPolicy).unwrap();
            assert_eq!(part, part2, "cap {cap} nondeterministic");
        }
    }

    #[test]
    fn zero_frontier_cap_is_rejected() {
        let g = small_graph();
        let config = TlpConfig::new().frontier_cap(0);
        assert!(matches!(
            run(&g, 2, &config, &ModularityPolicy).unwrap_err(),
            PartitionError::InvalidParameter { name: "frontier_cap", .. }
        ));
    }

    /// An uncapped run and a cap larger than any frontier are identical.
    #[test]
    fn huge_cap_equals_uncapped() {
        let g = tlp_graph::generators::erdos_renyi(150, 600, 8);
        let base = TlpConfig::new().seed(2);
        let capped = base.frontier_cap(1_000_000);
        let a = run(&g, 5, &base, &ModularityPolicy).unwrap().0;
        let b = run(&g, 5, &capped, &ModularityPolicy).unwrap().0;
        assert_eq!(a, b);
    }

    /// Same equivalence for the TLP_R stage policy across the R sweep.
    #[test]
    fn indexed_selection_equals_linear_scan_for_tlp_r() {
        let g = tlp_graph::generators::chung_lu(250, 1200, 2.2, 9);
        for r in [0.0, 0.3, 0.7, 1.0] {
            let policy = EdgeRatioPolicy { ratio: r };
            let scan = run(
                &g,
                6,
                &TlpConfig::new()
                    .seed(4)
                    .selection_strategy(SelectionStrategy::LinearScan),
                &policy,
            )
            .unwrap()
            .0;
            let heap = run(
                &g,
                6,
                &TlpConfig::new()
                    .seed(4)
                    .selection_strategy(SelectionStrategy::IndexedHeap),
                &policy,
            )
            .unwrap()
            .0;
            assert_eq!(scan, heap, "R = {r}");
        }
    }
}
