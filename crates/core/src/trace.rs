//! Selection traces for the Table VI stage-degree analysis.

use serde::{Deserialize, Serialize};

/// Which of the two heuristic stages selected a vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Stage I: closeness x degree criterion (`mu_s1`, Eq. 7).
    One,
    /// Stage II: modularity-gain criterion (`mu_s2`, Eq. 9).
    Two,
}

/// One vertex selection made by a local partitioning round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionRecord {
    /// Partition being grown (`0..p`).
    pub partition: u32,
    /// Step index within the round (0 = first selection after the seed).
    pub step: u32,
    /// The selected vertex.
    pub vertex: tlp_graph::VertexId,
    /// Static degree of the vertex in the input graph.
    pub degree: u32,
    /// Stage whose criterion made the selection.
    pub stage: Stage,
}

/// Average selected-vertex degree per stage (Table VI row).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageDegreeSummary {
    /// Number of Stage I selections.
    pub stage1_count: usize,
    /// Mean static degree of Stage I selections (`NaN`-free: 0 when empty).
    pub stage1_avg_degree: f64,
    /// Number of Stage II selections.
    pub stage2_count: usize,
    /// Mean static degree of Stage II selections (0 when empty).
    pub stage2_avg_degree: f64,
}

/// Per-round frontier-scoring effort: how much closeness work the
/// incremental Stage I maintenance actually did versus pruned away.
///
/// One record per partition round. `rescored + skipped + cache_hits` is
/// the number of closeness terms the naive engine would have computed
/// with a full intersection each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundScoring {
    /// Partition grown in this round (`0..p`).
    pub partition: u32,
    /// Closeness terms computed with a real neighborhood intersection.
    pub rescored: u64,
    /// Closeness terms pruned by the degree upper bound (the term could
    /// not have beaten the candidate's running maximum).
    pub skipped: u64,
    /// Closeness terms answered from the admitted-member intersection
    /// cache without recomputing.
    pub cache_hits: u64,
}

/// The complete selection log of one partitioning run.
///
/// Produced when [`crate::TlpConfig::record_trace`] is enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<SelectionRecord>,
    round_scoring: Vec<RoundScoring>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one selection.
    pub fn push(&mut self, record: SelectionRecord) {
        self.records.push(record);
    }

    /// All selections in order.
    pub fn records(&self) -> &[SelectionRecord] {
        &self.records
    }

    /// Appends one round's scoring counters.
    pub fn push_round_scoring(&mut self, scoring: RoundScoring) {
        self.round_scoring.push(scoring);
    }

    /// Per-round frontier-scoring effort, in round order.
    pub fn round_scoring(&self) -> &[RoundScoring] {
        &self.round_scoring
    }

    /// Number of selections recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no selection was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Computes the Table VI statistic: average selected-vertex degree per
    /// stage.
    ///
    /// # Example
    ///
    /// ```
    /// use tlp_core::{SelectionRecord, Stage, Trace};
    ///
    /// let mut trace = Trace::new();
    /// trace.push(SelectionRecord { partition: 0, step: 0, vertex: 1, degree: 40, stage: Stage::One });
    /// trace.push(SelectionRecord { partition: 0, step: 1, vertex: 2, degree: 4, stage: Stage::Two });
    /// trace.push(SelectionRecord { partition: 0, step: 2, vertex: 3, degree: 6, stage: Stage::Two });
    /// let s = trace.stage_degree_summary();
    /// assert_eq!(s.stage1_count, 1);
    /// assert_eq!(s.stage1_avg_degree, 40.0);
    /// assert_eq!(s.stage2_avg_degree, 5.0);
    /// ```
    pub fn stage_degree_summary(&self) -> StageDegreeSummary {
        let mut c1 = 0usize;
        let mut d1 = 0u64;
        let mut c2 = 0usize;
        let mut d2 = 0u64;
        for r in &self.records {
            match r.stage {
                Stage::One => {
                    c1 += 1;
                    d1 += u64::from(r.degree);
                }
                Stage::Two => {
                    c2 += 1;
                    d2 += u64::from(r.degree);
                }
            }
        }
        StageDegreeSummary {
            stage1_count: c1,
            stage1_avg_degree: if c1 == 0 { 0.0 } else { d1 as f64 / c1 as f64 },
            stage2_count: c2,
            stage2_avg_degree: if c2 == 0 { 0.0 } else { d2 as f64 / c2 as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stage: Stage, degree: u32) -> SelectionRecord {
        SelectionRecord {
            partition: 0,
            step: 0,
            vertex: 0,
            degree,
            stage,
        }
    }

    #[test]
    fn empty_trace_summary_has_zeroes() {
        let t = Trace::new();
        assert!(t.is_empty());
        let s = t.stage_degree_summary();
        assert_eq!(s.stage1_count, 0);
        assert_eq!(s.stage1_avg_degree, 0.0);
        assert_eq!(s.stage2_count, 0);
    }

    #[test]
    fn summary_averages_by_stage() {
        let mut t = Trace::new();
        t.push(rec(Stage::One, 10));
        t.push(rec(Stage::One, 30));
        t.push(rec(Stage::Two, 2));
        assert_eq!(t.len(), 3);
        let s = t.stage_degree_summary();
        assert_eq!(s.stage1_count, 2);
        assert_eq!(s.stage1_avg_degree, 20.0);
        assert_eq!(s.stage2_count, 1);
        assert_eq!(s.stage2_avg_degree, 2.0);
    }
}
