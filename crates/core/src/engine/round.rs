//! The seed -> grow -> allocate loop (Algorithm 1 of the paper), generic
//! over the [`SelectionPolicy`] that scores and picks frontier vertices.

use super::frontier::{enroll_eager, enroll_frontier_edge};
use super::policy::{AdmissionMode, GrowthState, Selection, SelectionPolicy};
use super::workspace::{ScoringCounters, Workspace};
use crate::checkpoint::EngineCheckpoint;
use crate::config::{ReseedPolicy, TlpConfig};
use crate::partition::{EdgePartition, PartitionId};
use crate::trace::{RoundScoring, SelectionRecord, Trace};
use crate::PartitionError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlp_graph::{GraphView, ResidualGraph, VertexId};

/// Callback invoked with the engine snapshot after each completed round.
/// Returning an error aborts the run (persisting a checkpoint failed).
pub type CheckpointSink<'a> = &'a mut dyn FnMut(&EngineCheckpoint) -> Result<(), PartitionError>;

/// Runs the full local partitioning (all `p` rounds) under `policy`.
///
/// Returns the edge partition and, when `config.record_trace()` holds, the
/// per-selection trace. The RNG is seeded once from `config.seed()` and
/// consumed only by seed/reseed draws, so the stream a policy observes is a
/// function of the seed alone.
pub fn run<'g, P: SelectionPolicy + ?Sized>(
    graph: impl Into<GraphView<'g>>,
    num_partitions: usize,
    config: &TlpConfig,
    policy: &mut P,
) -> Result<(EdgePartition, Option<Trace>), PartitionError> {
    run_with_checkpoints(graph, num_partitions, config, policy, None, None)
}

/// [`run`] with kill-and-resume support.
///
/// When `resume` is given, the run starts from that snapshot instead of
/// round 0: the assignment and residual graph are restored from the
/// checkpoint's arrays and the RNG continues from its saved state, so the
/// final partition is bit-identical to the uninterrupted run's. When
/// `sink` is given, it receives a consistent [`EngineCheckpoint`] after
/// each completed round (and policies may not carry cross-round state of
/// their own — true of every policy in this workspace, whose state is
/// per-round and cleared by `end_round`).
///
/// A resumed run with `config.record_trace()` only records the rounds it
/// actually executes; the assignment is still exact.
///
/// # Errors
///
/// [`PartitionError::Checkpoint`] if `resume` does not match this
/// graph/config, plus everything [`run`] can return.
pub fn run_with_checkpoints<'g, P: SelectionPolicy + ?Sized>(
    graph: impl Into<GraphView<'g>>,
    num_partitions: usize,
    config: &TlpConfig,
    policy: &mut P,
    resume: Option<&EngineCheckpoint>,
    mut sink: Option<CheckpointSink<'_>>,
) -> Result<(EdgePartition, Option<Trace>), PartitionError> {
    let graph = graph.into();
    if num_partitions == 0 {
        return Err(PartitionError::ZeroPartitions);
    }
    config.validate()?;

    let m = graph.num_edges();
    let n = graph.num_vertices();
    let trace = config.records_trace().then(Trace::new);
    if m == 0 {
        return Ok((EdgePartition::new(num_partitions, vec![])?, trace));
    }
    let mut trace = trace;

    let capacity = config.capacity(m, num_partitions);
    let mut residual = ResidualGraph::new(graph);
    let mut ws = Workspace::new(n, config.frontier_cap_value().unwrap_or(usize::MAX));

    let (mut assignment, mut rng, start_round) = match resume {
        None => {
            let assignment: Vec<PartitionId> = vec![0; m];
            (assignment, StdRng::seed_from_u64(config.seed_value()), 0u32)
        }
        Some(ckpt) => {
            ckpt.validate_for(n, m, num_partitions, config.seed_value())?;
            for (e, &alloc) in ckpt.allocated.iter().enumerate() {
                if alloc {
                    residual.allocate(e as tlp_graph::EdgeId);
                }
            }
            (
                ckpt.assignment.clone(),
                StdRng::from_state(ckpt.rng_state),
                ckpt.next_round,
            )
        }
    };

    for k in start_round..num_partitions as u32 {
        if residual.is_exhausted() {
            break;
        }
        run_round(
            graph,
            &mut residual,
            &mut ws,
            &mut assignment,
            &mut rng,
            k,
            capacity,
            config.reseed_policy_value(),
            policy,
            trace.as_mut(),
        );
        if let Some(sink) = sink.as_mut() {
            let _checkpoint_span = tlp_obs::span("checkpoint");
            let snapshot = EngineCheckpoint {
                seed: config.seed_value(),
                num_partitions,
                next_round: k + 1,
                rng_state: rng.state(),
                assignment: assignment.clone(),
                allocated: (0..m as tlp_graph::EdgeId)
                    .map(|e| !residual.is_free(e))
                    .collect(),
                num_vertices: n,
                num_edges: m,
            };
            sink(&snapshot)?;
        }
    }

    // Sweep any leftovers (possible only under `ReseedPolicy::Break`):
    // distribute remaining edges to the least-loaded partitions so the
    // partition is total.
    if !residual.is_exhausted() {
        let mut counts = vec![0usize; num_partitions];
        for &pid in &assignment {
            counts[pid as usize] += 1;
        }
        for e in 0..m as tlp_graph::EdgeId {
            if residual.is_free(e) {
                let (target, _) = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &c)| (c, i))
                    .expect("at least one partition");
                assignment[e as usize] = target as PartitionId;
                counts[target] += 1;
                residual.allocate(e);
            }
        }
    }

    Ok((EdgePartition::new(num_partitions, assignment)?, trace))
}

/// Grows partition `k` until capacity is exceeded or edges run out
/// (Algorithm 1).
#[allow(clippy::too_many_arguments)]
fn run_round<P: SelectionPolicy + ?Sized>(
    graph: GraphView<'_>,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    assignment: &mut [PartitionId],
    rng: &mut StdRng,
    k: u32,
    capacity: usize,
    reseed_policy: ReseedPolicy,
    policy: &mut P,
    mut trace: Option<&mut Trace>,
) {
    let _round_span = tlp_obs::span_with(
        "round",
        vec![("k".to_string(), tlp_obs::Field::U64(u64::from(k)))],
    );
    let mut internal = 0usize;
    let mut external = 0usize;
    let mut step = 0u32;
    ws.scoring = ScoringCounters::default();
    // Drop tallies accumulated outside any round (none today, but cheap
    // insurance) so per-round kernel counters attribute exactly.
    ws.kernel.take_counters();

    // Line 1-3: random seed vertex; its neighbors form the frontier.
    seed_vertex(
        graph,
        residual,
        ws,
        rng,
        assignment,
        k,
        policy,
        &mut internal,
        &mut external,
    );

    // Line 4: while |E(P_k)| <= C.
    while internal <= capacity {
        if ws.frontier.is_empty() {
            // Line 11-13: frontier exhausted.
            if residual.is_exhausted() || reseed_policy == ReseedPolicy::Break {
                break;
            }
            seed_vertex(
                graph,
                residual,
                ws,
                rng,
                assignment,
                k,
                policy,
                &mut internal,
                &mut external,
            );
            continue;
        }

        // Lines 5-9: the policy picks the stage and the optimal vertex.
        let Selection { vertex: v, stage } = policy.select(
            ws,
            residual,
            GrowthState {
                internal,
                external,
                capacity,
            },
        );

        // Line 10: allocate the edges between v and P_k.
        admit_vertex(
            graph,
            residual,
            ws,
            assignment,
            k,
            v,
            policy,
            &mut internal,
            &mut external,
        );

        if let Some(t) = trace.as_deref_mut() {
            t.push(SelectionRecord {
                partition: k,
                step,
                vertex: v,
                degree: graph.degree(v) as u32,
                stage,
            });
        }
        step += 1;

        if residual.is_exhausted() {
            break;
        }
    }

    if let Some(t) = trace {
        t.push_round_scoring(RoundScoring {
            partition: k,
            rescored: ws.scoring.rescored,
            skipped: ws.scoring.skipped,
            cache_hits: ws.scoring.cache_hits,
        });
    }
    if tlp_obs::is_enabled() {
        // Round-granularity flush: the per-selection hot path never emits.
        tlp_obs::counter("round.select", u64::from(step));
        tlp_obs::counter("round.edges", internal as u64);
        tlp_obs::counter("scoring.rescored", ws.scoring.rescored);
        tlp_obs::counter("scoring.skipped", ws.scoring.skipped);
        tlp_obs::counter("scoring.cache_hits", ws.scoring.cache_hits);
        let kernel = ws.kernel.take_counters();
        tlp_obs::counter("kernel.load", kernel.loads);
        tlp_obs::counter("kernel.cache_hit", kernel.cache_hits);
        tlp_obs::counter("kernel.count.mark", kernel.mark_counts);
        tlp_obs::counter("kernel.count.gallop", kernel.gallop_counts);
        tlp_obs::counter("kernel.count.bitset", kernel.bitset_counts);
        tlp_obs::counter("kernel.probes", kernel.probes);
    }
    ws.frontier_clear();
    policy.end_round();
}

/// Adds a fresh random seed vertex. Under lazy admission the seed becomes a
/// member immediately (admission handles any residual edges it already has
/// towards existing members, possible under a frontier cap). Under eager
/// admission the seed joins the *frontier* — NE's boundary set — and moves
/// to the member core when selected.
#[allow(clippy::too_many_arguments)]
fn seed_vertex<P: SelectionPolicy + ?Sized>(
    graph: GraphView<'_>,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    rng: &mut StdRng,
    assignment: &mut [PartitionId],
    k: u32,
    policy: &mut P,
    internal: &mut usize,
    external: &mut usize,
) {
    let n = graph.num_vertices() as u32;
    let hint: VertexId = rng.gen_range(0..n);
    let Some(seed) = residual.any_active_vertex_from(hint) else {
        return;
    };
    match policy.admission() {
        AdmissionMode::Lazy => {
            admit_vertex(
                graph, residual, ws, assignment, k, seed, policy, internal, external,
            );
        }
        AdmissionMode::Eager => {
            enroll_eager(residual, ws, policy, assignment, k, seed, internal);
        }
    }
}

/// Moves `v` from the frontier into the partition.
///
/// Lazy admission: allocates all residual edges between `v` and members,
/// updates the modularity counters, enrolls `v`'s remaining residual
/// neighbors, and refreshes Stage I scores of frontier candidates adjacent
/// to `v`.
///
/// Eager admission: `v`'s edges into the boundary set were already
/// allocated when each endpoint joined; admission only promotes `v` to
/// member and eagerly enrolls its remaining residual neighbors.
#[allow(clippy::too_many_arguments)]
fn admit_vertex<P: SelectionPolicy + ?Sized>(
    graph: GraphView<'_>,
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    assignment: &mut [PartitionId],
    k: u32,
    v: VertexId,
    policy: &mut P,
    internal: &mut usize,
    external: &mut usize,
) {
    // Seed vertices (and, under a frontier cap, reseeds of never-enrolled
    // vertices) are admitted without having been candidates.
    if ws.in_frontier[v as usize] {
        ws.frontier_remove(v);
    }
    ws.member_round[v as usize] = k;

    if policy.admission() == AdmissionMode::Eager {
        // The selected vertex's residual edges all point outside the
        // boundary set; each far endpoint now joins it (allocating its own
        // edges into the set as it enters).
        let neighbors: Vec<VertexId> = residual.residual_incident(v).map(|(u, _)| u).collect();
        for u in neighbors {
            enroll_eager(residual, ws, policy, assignment, k, u, internal);
        }
        return;
    }

    // Load the new member's neighborhood into the intersection kernel: the
    // enrollments and Stage I refreshes below all intersect against N(v),
    // sharing one marked scratch and one count per (candidate, v) pair.
    ws.kernel.load(graph, v);

    // Allocate edges v -> members (they were external; now internal).
    ws.incident_scratch.clear();
    ws.incident_scratch.extend(residual.residual_incident(v));
    let mut absorbed = 0usize;
    for i in 0..ws.incident_scratch.len() {
        let (u, eid) = ws.incident_scratch[i];
        if ws.member_round[u as usize] == k {
            residual.allocate(eid);
            assignment[eid as usize] = k;
            absorbed += 1;
        }
    }
    *internal += absorbed;
    *external -= absorbed;

    // Remaining residual edges of v become external; their far endpoints
    // join (or strengthen) the frontier.
    ws.incident_scratch.clear();
    ws.incident_scratch.extend(residual.residual_incident(v));
    *external += ws.incident_scratch.len();
    for i in 0..ws.incident_scratch.len() {
        let (u, _) = ws.incident_scratch[i];
        enroll_frontier_edge(graph, residual, ws, policy, k, u);
    }

    // Incremental Stage I refresh: v is a new member, so every frontier
    // candidate statically adjacent to v gains a candidate term. Candidates
    // enrolled moments ago already folded this term in (their scan hit the
    // kernel cache), so only previously existing candidates can improve.
    for &u in graph.neighbors(v) {
        if ws.in_frontier[u as usize] && ws.refresh_mu1(graph, u, v) {
            policy.on_candidate(ws, residual, u, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{run_staged, EdgeRatioSwitch, ModularitySwitch};
    use super::*;
    use crate::config::SelectionStrategy;
    use crate::trace::Stage;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use tlp_graph::{CsrGraph, GraphBuilder};

    fn small_graph() -> CsrGraph {
        // Two triangles joined by a bridge.
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build()
    }

    fn run_tlp(graph: &CsrGraph, p: usize, seed: u64) -> EdgePartition {
        let config = TlpConfig::new().seed(seed);
        run_staged(graph, p, &config, ModularitySwitch).unwrap().0
    }

    #[test]
    fn every_edge_is_assigned_exactly_once() {
        let g = small_graph();
        for p in 1..=4 {
            let part = run_tlp(&g, p, 1);
            assert_eq!(part.num_edges(), g.num_edges());
            assert_eq!(part.edge_counts().iter().sum::<usize>(), g.num_edges());
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = small_graph();
        let part = run_tlp(&g, 1, 3);
        assert_eq!(part.edge_counts(), vec![g.num_edges()]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = small_graph();
        assert_eq!(run_tlp(&g, 3, 7), run_tlp(&g, 3, 7));
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = small_graph();
        let config = TlpConfig::new();
        assert_eq!(
            run_staged(&g, 0, &config, ModularitySwitch).unwrap_err(),
            PartitionError::ZeroPartitions
        );
    }

    #[test]
    fn empty_graph_produces_empty_partition() {
        let g = GraphBuilder::new().build();
        let config = TlpConfig::new();
        let (part, _) = run_staged(&g, 4, &config, ModularitySwitch).unwrap();
        assert_eq!(part.num_edges(), 0);
        assert_eq!(part.edge_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn disconnected_graph_is_fully_covered_with_reseed() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)])
            .build();
        let part = run_tlp(&g, 2, 5);
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn break_policy_sweeps_leftovers() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)])
            .build();
        let config = TlpConfig::new().reseed_policy(ReseedPolicy::Break).seed(2);
        let (part, _) = run_staged(&g, 2, &config, ModularitySwitch).unwrap();
        // All 5 edges must still be assigned even though each round's
        // frontier dies immediately in this perfect matching.
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn capacity_overshoot_is_bounded_by_last_vertex_degree() {
        let g = tlp_graph::generators::erdos_renyi(60, 240, 9);
        let p = 4;
        let part = run_tlp(&g, p, 11);
        let capacity = TlpConfig::new().capacity(g.num_edges(), p);
        let max_degree = (0..60).map(|v| g.degree(v)).max().unwrap();
        for (pid, &count) in part.edge_counts().iter().enumerate() {
            assert!(
                count <= capacity + max_degree,
                "partition {pid} holds {count} edges, capacity {capacity}"
            );
        }
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let g = small_graph();
        let config = TlpConfig::new().record_trace(true).seed(1);
        let (_, trace) = run_staged(&g, 2, &config, ModularitySwitch).unwrap();
        let trace = trace.expect("trace requested");
        assert!(!trace.is_empty());
        // Selections must name real vertices with their true degrees.
        for r in trace.records() {
            assert_eq!(r.degree as usize, g.degree(r.vertex));
            assert!((r.partition as usize) < 2);
        }
    }

    #[test]
    fn no_trace_by_default() {
        let g = small_graph();
        let config = TlpConfig::new();
        let (_, trace) = run_staged(&g, 2, &config, ModularitySwitch).unwrap();
        assert!(trace.is_none());
    }

    #[test]
    fn more_partitions_than_edges_leaves_empties() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let part = run_tlp(&g, 5, 1);
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 1);
        assert_eq!(part.num_partitions(), 5);
    }

    /// The heap-indexed selection must reproduce the linear scan exactly —
    /// same argmax, same ties, same partitions — across every generator
    /// family, both reseed policies, partition counts, and seeds.
    #[test]
    fn indexed_selection_equals_linear_scan() {
        use tlp_graph::generators as g;
        let graphs = [
            g::chung_lu(300, 1500, 2.1, 5),
            g::erdos_renyi(200, 600, 6),
            g::genealogy(400, 650, 7),
            g::barabasi_albert(250, 3, 8),
            g::rmat(8, 900, g::RmatProbabilities::default(), 9),
            g::power_law_community(300, 1200, 2.1, 6, 0.25, 10),
        ];
        for (gi, graph) in graphs.iter().enumerate() {
            for reseed in [ReseedPolicy::Reseed, ReseedPolicy::Break] {
                for p in [2, 5, 9] {
                    for seed in [0u64, 1, 2] {
                        let base = TlpConfig::new().seed(seed).reseed_policy(reseed);
                        let scan = run_staged(
                            graph,
                            p,
                            &base.selection_strategy(SelectionStrategy::LinearScan),
                            ModularitySwitch,
                        )
                        .unwrap()
                        .0;
                        let heap = run_staged(
                            graph,
                            p,
                            &base.selection_strategy(SelectionStrategy::IndexedHeap),
                            ModularitySwitch,
                        )
                        .unwrap()
                        .0;
                        assert_eq!(
                            scan, heap,
                            "graph {gi}, reseed {reseed:?}, p={p}, seed={seed}"
                        );
                    }
                }
            }
        }
    }

    /// A frontier cap (the paper's §V sliding-window idea) must never break
    /// coverage or determinism, only bound the candidate set.
    #[test]
    fn frontier_cap_keeps_coverage() {
        let g = tlp_graph::generators::chung_lu(400, 2000, 2.1, 3);
        for cap in [1usize, 4, 64, 100_000] {
            let config = TlpConfig::new().seed(5).frontier_cap(cap);
            let (part, _) = run_staged(&g, 6, &config, ModularitySwitch).unwrap();
            assert_eq!(
                part.edge_counts().iter().sum::<usize>(),
                g.num_edges(),
                "cap {cap} lost edges"
            );
            let (part2, _) = run_staged(&g, 6, &config, ModularitySwitch).unwrap();
            assert_eq!(part, part2, "cap {cap} nondeterministic");
        }
    }

    #[test]
    fn zero_frontier_cap_is_rejected() {
        let g = small_graph();
        let config = TlpConfig::new().frontier_cap(0);
        assert!(matches!(
            run_staged(&g, 2, &config, ModularitySwitch).unwrap_err(),
            PartitionError::InvalidParameter {
                name: "frontier_cap",
                ..
            }
        ));
    }

    /// An uncapped run and a cap larger than any frontier are identical.
    #[test]
    fn huge_cap_equals_uncapped() {
        let g = tlp_graph::generators::erdos_renyi(150, 600, 8);
        let base = TlpConfig::new().seed(2);
        let capped = base.frontier_cap(1_000_000);
        let a = run_staged(&g, 5, &base, ModularitySwitch).unwrap().0;
        let b = run_staged(&g, 5, &capped, ModularitySwitch).unwrap().0;
        assert_eq!(a, b);
    }

    /// Same equivalence for the TLP_R stage policy across the R sweep,
    /// for both indexed strategies.
    #[test]
    fn indexed_selection_equals_linear_scan_for_tlp_r() {
        let g = tlp_graph::generators::chung_lu(250, 1200, 2.2, 9);
        for r in [0.0, 0.3, 0.7, 1.0] {
            let switch = EdgeRatioSwitch { ratio: r };
            let scan = run_staged(
                &g,
                6,
                &TlpConfig::new()
                    .seed(4)
                    .selection_strategy(SelectionStrategy::LinearScan),
                switch,
            )
            .unwrap()
            .0;
            for strategy in [
                SelectionStrategy::IndexedHeap,
                SelectionStrategy::Incremental,
            ] {
                let indexed = run_staged(
                    &g,
                    6,
                    &TlpConfig::new().seed(4).selection_strategy(strategy),
                    switch,
                )
                .unwrap()
                .0;
                assert_eq!(scan, indexed, "R = {r}, strategy {strategy:?}");
            }
        }
    }

    /// A minimal eager-admission policy (NE's selection rule, inlined):
    /// exercises the eager path without depending on the baselines crate.
    struct MinResidualDegree {
        heap: BinaryHeap<Reverse<(u32, VertexId)>>,
    }

    impl SelectionPolicy for MinResidualDegree {
        fn admission(&self) -> AdmissionMode {
            AdmissionMode::Eager
        }

        fn on_candidate(
            &mut self,
            _ws: &Workspace,
            residual: &ResidualGraph<'_>,
            v: VertexId,
            _round: u32,
        ) {
            self.heap
                .push(Reverse((residual.residual_degree(v) as u32, v)));
        }

        fn select(
            &mut self,
            ws: &Workspace,
            residual: &ResidualGraph<'_>,
            _state: GrowthState,
        ) -> Selection {
            loop {
                let Reverse((c, v)) = self
                    .heap
                    .pop()
                    .expect("frontier non-empty but heap exhausted");
                if ws.is_candidate(v) && residual.residual_degree(v) as u32 == c {
                    return Selection {
                        vertex: v,
                        stage: Stage::One,
                    };
                }
            }
        }

        fn end_round(&mut self) {
            self.heap.clear();
        }
    }

    #[test]
    fn eager_admission_covers_all_edges_deterministically() {
        for g in [
            small_graph(),
            tlp_graph::generators::chung_lu(200, 900, 2.2, 4),
            GraphBuilder::new()
                .add_edges([(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)])
                .build(),
        ] {
            for p in [1, 3, 6] {
                let mut policy = MinResidualDegree {
                    heap: BinaryHeap::new(),
                };
                let config = TlpConfig::new().seed(9);
                let (part, _) = run(&g, p, &config, &mut policy).unwrap();
                assert_eq!(
                    part.edge_counts().iter().sum::<usize>(),
                    g.num_edges(),
                    "eager run lost edges at p={p}"
                );
                let mut policy2 = MinResidualDegree {
                    heap: BinaryHeap::new(),
                };
                let (part2, _) = run(&g, p, &config, &mut policy2).unwrap();
                assert_eq!(part, part2, "eager run nondeterministic at p={p}");
            }
        }
    }
}
