//! Per-run scratch state shared by every selection policy: round-stamped
//! membership, the frontier dense list, per-candidate scores, and the
//! staged priority structures (heaps) used by the indexed TLP policies.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tlp_graph::intersect::{sorted_intersection_size, IntersectionKernel};
use tlp_graph::{EdgeId, GraphView, ResidualGraph, VertexId};

/// Frontier-scoring effort counters, accumulated per round (see
/// [`RoundScoring`](crate::trace::RoundScoring) for field semantics).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ScoringCounters {
    /// Closeness terms computed with a real intersection.
    pub(crate) rescored: u64,
    /// Closeness terms pruned by the degree upper bound.
    pub(crate) skipped: u64,
    /// Closeness terms served from the admitted-member cache.
    pub(crate) cache_hits: u64,
}

/// Per-graph scratch reused across rounds (one allocation per run).
///
/// The workspace tracks *who* is a member and *who* is a candidate; *how*
/// candidates are ranked lives in the
/// [`SelectionPolicy`](super::SelectionPolicy) driving the run. Vertex
/// membership is stamped with the round index, so it never needs clearing
/// between rounds.
pub struct Workspace {
    /// Round id if the vertex is a member of the partition currently being
    /// grown; `u32::MAX` when never selected in the current round.
    pub(crate) member_round: Vec<u32>,
    /// Whether the vertex is currently in the frontier.
    pub(crate) in_frontier: Vec<bool>,
    /// Residual edges from the vertex into the current partition (Stage II
    /// input; unused by eager-admission policies).
    pub(crate) e_in: Vec<u32>,
    /// Running maximum of the Stage I closeness term (Eq. 7).
    pub(crate) mu1: Vec<f64>,
    /// The frontier as a dense list (deterministic iteration order).
    pub(crate) frontier: Vec<VertexId>,
    /// Position of each frontier vertex in `frontier` (for swap-removal).
    pub(crate) frontier_pos: Vec<u32>,
    /// Scratch for collecting a vertex's residual incidence.
    pub(crate) incident_scratch: Vec<(VertexId, EdgeId)>,
    /// Maximum candidates held in the frontier (sliding-window mode).
    pub(crate) frontier_cap: usize,
    /// Intersection kernel holding the most recently admitted member's
    /// neighborhood (lazy admission only).
    pub(crate) kernel: IntersectionKernel,
    /// Scoring-effort counters for the current round.
    pub(crate) scoring: ScoringCounters,
}

impl Workspace {
    /// Allocates a workspace for an `n`-vertex graph.
    pub fn new(n: usize, frontier_cap: usize) -> Self {
        Workspace {
            member_round: vec![u32::MAX; n],
            in_frontier: vec![false; n],
            e_in: vec![0; n],
            mu1: vec![0.0; n],
            frontier: Vec::new(),
            frontier_pos: vec![0; n],
            incident_scratch: Vec::new(),
            frontier_cap,
            kernel: IntersectionKernel::new(n),
            scoring: ScoringCounters::default(),
        }
    }

    /// Folds the closeness term of candidate `u` against member `w` into
    /// `mu1[u]`, returning whether the running maximum improved.
    ///
    /// This is the engine's single entry point for Stage I scoring work,
    /// and where all three cost savers live — each provably changing no
    /// term value, so selection stays bit-identical to a from-scratch
    /// `closeness_term` evaluation:
    ///
    /// * **Degree pruning.** `u` and `w` are adjacent in a simple graph,
    ///   so `|N(u) ∩ N(w)| <= min(deg u, deg w) - 1` (`w ∈ N(u)` but
    ///   `w ∉ N(w)`, and vice versa). If even that bound over `|N(w)|`
    ///   cannot beat the current maximum, the term is skipped — the
    ///   maximum provably would not change.
    /// * **Admitted-member cache.** When `w` is the kernel-loaded member,
    ///   the count is served from (or stored into) the kernel's per-load
    ///   cache, so enrolling and refreshing against the same admission
    ///   computes each pair's intersection once.
    /// * **Kernel dispatch.** Counts against the loaded member use the
    ///   marked-neighborhood scratch (or galloping for very high-degree
    ///   candidates); all kernels return the same exact integer count.
    pub(crate) fn refresh_mu1(&mut self, graph: GraphView<'_>, u: VertexId, w: VertexId) -> bool {
        let ui = u as usize;
        let dw = graph.degree(w);
        if dw == 0 {
            return false;
        }
        let du = graph.degree(u);
        let bound = (du.min(dw) - 1) as f64 / dw as f64;
        if bound <= self.mu1[ui] {
            self.scoring.skipped += 1;
            return false;
        }
        let count = if self.kernel.loaded() == Some(w) {
            if self.kernel.cached_with_loaded(u).is_some() {
                self.scoring.cache_hits += 1;
            } else {
                self.scoring.rescored += 1;
            }
            self.kernel.count_with_loaded(graph, u)
        } else {
            self.scoring.rescored += 1;
            sorted_intersection_size(graph.neighbors(u), graph.neighbors(w))
        };
        let term = count as f64 / dw as f64;
        if term > self.mu1[ui] {
            self.mu1[ui] = term;
            true
        } else {
            false
        }
    }

    /// Whether `v` is currently a frontier candidate.
    pub fn is_candidate(&self, v: VertexId) -> bool {
        self.in_frontier[v as usize]
    }

    /// Whether `v` is a member of the partition grown in `round`.
    pub fn is_member(&self, v: VertexId, round: u32) -> bool {
        self.member_round[v as usize] == round
    }

    /// The current frontier candidates, in enrollment (dense-list) order.
    pub fn frontier(&self) -> &[VertexId] {
        &self.frontier
    }

    /// Residual edges from candidate `v` into the current partition.
    pub fn e_in(&self, v: VertexId) -> u32 {
        self.e_in[v as usize]
    }

    /// Candidate `v`'s running maximum Stage I closeness term.
    pub fn mu1(&self, v: VertexId) -> f64 {
        self.mu1[v as usize]
    }

    /// Removes `v` from the frontier, resetting its candidate state.
    pub(crate) fn frontier_remove(&mut self, v: VertexId) {
        debug_assert!(self.in_frontier[v as usize]);
        let pos = self.frontier_pos[v as usize] as usize;
        let last = *self.frontier.last().expect("non-empty frontier");
        self.frontier.swap_remove(pos);
        if last != v {
            self.frontier_pos[last as usize] = pos as u32;
        }
        self.in_frontier[v as usize] = false;
        self.e_in[v as usize] = 0;
        self.mu1[v as usize] = 0.0;
    }

    /// Clears the frontier at the end of a round.
    pub(crate) fn frontier_clear(&mut self) {
        for i in 0..self.frontier.len() {
            let v = self.frontier[i] as usize;
            self.in_frontier[v] = false;
            self.e_in[v] = 0;
            self.mu1[v] = 0.0;
        }
        self.frontier.clear();
    }
}

/// Heap entry for Stage I: ordered by `(mu1, e_in, residual_degree, -id)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Stage1Entry {
    pub(crate) mu1: f64,
    pub(crate) e_in: u32,
    pub(crate) res_deg: u32,
    pub(crate) vertex: VertexId,
}

impl Eq for Stage1Entry {}

impl Ord for Stage1Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mu1
            .total_cmp(&other.mu1)
            .then(self.e_in.cmp(&other.e_in))
            .then(self.res_deg.cmp(&other.res_deg))
            .then(other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for Stage1Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The staged policies' priority structures: a lazy max-heap over the
/// Stage I key plus per-`e_in` lazy min-heap buckets on `e_ext` for
/// Stage II. Owned by [`StagedPolicy`](super::StagedPolicy), not the
/// workspace, so non-staged policies pay nothing for it.
#[derive(Default)]
pub(crate) struct StagedIndex {
    /// Stage I priority queue (lazy; entries validated against `mu1`/`e_in`).
    pub(crate) stage1_heap: BinaryHeap<Stage1Entry>,
    /// Stage II buckets: `stage2_buckets[e_in]` is a lazy min-heap of
    /// `(e_ext, vertex)`.
    pub(crate) stage2_buckets: Vec<BinaryHeap<Reverse<(u32, VertexId)>>>,
    /// Bucket indices touched in the current round (for iteration/clearing).
    pub(crate) active_buckets: Vec<u32>,
    /// Round stamp marking a bucket as listed in `active_buckets`.
    pub(crate) bucket_stamp: Vec<u32>,
    /// Dirty flag per vertex (`Incremental` strategy): state changed since
    /// the candidate's last heap push.
    pub(crate) dirty: Vec<bool>,
    /// Dirty vertices awaiting a flush, deduplicated via `dirty`.
    pub(crate) dirty_list: Vec<VertexId>,
    /// Round the pending dirty marks belong to (for the flushed pushes).
    pub(crate) dirty_round: u32,
}

impl StagedIndex {
    /// Pushes the candidate's current state into both priority structures.
    pub(crate) fn push_candidate_state(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        v: VertexId,
        round: u32,
    ) {
        let vi = v as usize;
        let e_in = ws.e_in[vi];
        let res_deg = residual.residual_degree(v) as u32;
        self.stage1_heap.push(Stage1Entry {
            mu1: ws.mu1[vi],
            e_in,
            res_deg,
            vertex: v,
        });
        let bucket = e_in as usize;
        if bucket >= self.stage2_buckets.len() {
            self.stage2_buckets.resize_with(bucket + 1, BinaryHeap::new);
            self.bucket_stamp.resize(bucket + 1, u32::MAX);
        }
        if self.bucket_stamp[bucket] != round {
            self.bucket_stamp[bucket] = round;
            self.active_buckets.push(bucket as u32);
        }
        self.stage2_buckets[bucket].push(Reverse((res_deg - e_in, v)));
    }

    /// Records that candidate `v`'s state changed (`Incremental` strategy):
    /// instead of pushing a heap entry per event, the vertex is queued once
    /// and its *final* state is pushed by [`flush_dirty`](Self::flush_dirty)
    /// at selection time. Hub candidates touched by many edge events between
    /// two selections thus cost one entry, not one per event.
    pub(crate) fn mark_dirty(&mut self, v: VertexId, round: u32) {
        let vi = v as usize;
        if vi >= self.dirty.len() {
            self.dirty.resize(vi + 1, false);
        }
        if !self.dirty[vi] {
            self.dirty[vi] = true;
            self.dirty_list.push(v);
        }
        self.dirty_round = round;
    }

    /// Pushes the current state of every pending dirty candidate into the
    /// priority structures and clears the marks. After a flush the heaps
    /// hold a valid (current-state) entry for every frontier candidate
    /// whose state changed, so the lazy-heap selectors see exactly what
    /// they would under `IndexedHeap`.
    pub(crate) fn flush_dirty(&mut self, ws: &Workspace, residual: &ResidualGraph<'_>) {
        let mut list = std::mem::take(&mut self.dirty_list);
        for &v in &list {
            self.dirty[v as usize] = false;
            // Admitted while dirty: no longer a candidate, nothing to push.
            if ws.in_frontier[v as usize] {
                self.push_candidate_state(ws, residual, v, self.dirty_round);
            }
        }
        list.clear();
        self.dirty_list = list;
    }

    /// Clears all per-round entries (bucket stamps persist; they are
    /// compared against the round index, which never repeats in a run).
    pub(crate) fn clear(&mut self) {
        self.stage1_heap.clear();
        for &b in &self.active_buckets {
            self.stage2_buckets[b as usize].clear();
        }
        self.active_buckets.clear();
        for &v in &self.dirty_list {
            self.dirty[v as usize] = false;
        }
        self.dirty_list.clear();
    }
}
