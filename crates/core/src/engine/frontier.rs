//! Candidate admission and removal, plus the staged selection functions
//! (linear-scan reference and lazy-heap indexed, for both stages).
//!
//! Two admission disciplines exist (see
//! [`AdmissionMode`](super::AdmissionMode)):
//!
//! * **Lazy** ([`enroll_frontier_edge`]): a candidate accumulates `e_in`
//!   per edge event; its residual edges are allocated only when it is
//!   selected. This is TLP's discipline.
//! * **Eager** ([`enroll_eager`]): joining the frontier allocates every
//!   residual edge into the member-or-frontier set on the spot, so the
//!   frontier candidate's residual degree *is* its external degree. This
//!   is NE's discipline (Zhang et al., KDD'17).

use super::policy::SelectionPolicy;
use super::workspace::{StagedIndex, Workspace};
use crate::partition::PartitionId;
use crate::stage2::GainRatio;
use std::cmp::Reverse;
use tlp_graph::{GraphView, ResidualGraph, VertexId};

/// Registers one new residual edge from frontier candidate `u` into the
/// partition: bumps `e_in`, inserting `u` (and computing its initial Stage I
/// score against all current member neighbors) if it was not yet a
/// candidate. Notifies the policy of the refreshed state.
pub(super) fn enroll_frontier_edge<P: SelectionPolicy + ?Sized>(
    graph: GraphView<'_>,
    residual: &ResidualGraph<'_>,
    ws: &mut Workspace,
    policy: &mut P,
    k: u32,
    u: VertexId,
) {
    let ui = u as usize;
    debug_assert_ne!(ws.member_round[ui], k, "members cannot be candidates");
    if ws.in_frontier[ui] {
        ws.e_in[ui] += 1;
    } else {
        // Sliding-window mode: once the frontier is at its cap, further
        // vertices are not enrolled as candidates. Their edges still count
        // as external, and they are picked up by later edge events (or
        // later rounds) once space frees up — coverage is unaffected, only
        // candidate quality.
        if ws.frontier.len() >= ws.frontier_cap {
            return;
        }
        ws.in_frontier[ui] = true;
        ws.frontier_pos[ui] = ws.frontier.len() as u32;
        ws.frontier.push(u);
        ws.e_in[ui] = 1;
        // Initial mu_s1: max closeness term against members already adjacent
        // (static adjacency — including edges consumed by earlier rounds).
        // `refresh_mu1` folds each term into the running maximum, pruning
        // and caching where provably value-neutral; the term against the
        // member being admitted right now is served by the loaded kernel
        // and memoized for the admission's refresh pass.
        ws.mu1[ui] = 0.0;
        for &w in graph.neighbors(u) {
            if ws.member_round[w as usize] == k {
                ws.refresh_mu1(graph, u, w);
            }
        }
    }
    policy.on_candidate(ws, residual, u, k);
}

/// Moves `v` into the frontier under eager admission, allocating all of its
/// residual edges whose far endpoint is already a member or a frontier
/// candidate (NE's "add to S"). No-op if `v` is already in the set. The
/// frontier cap does not apply: eager policies need the full boundary, and
/// skipping enrollment here would silently drop allocations.
pub(super) fn enroll_eager<P: SelectionPolicy + ?Sized>(
    residual: &mut ResidualGraph<'_>,
    ws: &mut Workspace,
    policy: &mut P,
    assignment: &mut [PartitionId],
    k: u32,
    v: VertexId,
    internal: &mut usize,
) {
    let vi = v as usize;
    if ws.member_round[vi] == k || ws.in_frontier[vi] {
        return;
    }
    ws.in_frontier[vi] = true;
    ws.frontier_pos[vi] = ws.frontier.len() as u32;
    ws.frontier.push(v);

    ws.incident_scratch.clear();
    ws.incident_scratch.extend(residual.residual_incident(v));
    for i in 0..ws.incident_scratch.len() {
        let (u, eid) = ws.incident_scratch[i];
        let ui = u as usize;
        if ws.member_round[ui] == k || ws.in_frontier[ui] {
            residual.allocate(eid);
            assignment[eid as usize] = k;
            *internal += 1;
            // A frontier far-endpoint just lost a residual edge; refresh its
            // key. Members need no refresh — their edges are all allocated.
            if ws.member_round[ui] != k {
                policy.on_candidate(ws, residual, u, k);
            }
        }
    }
    policy.on_candidate(ws, residual, v, k);
}

type StageOneKey = (f64, u32, usize);

fn stage_one_key(ws: &Workspace, residual: &ResidualGraph<'_>, v: VertexId) -> StageOneKey {
    (
        ws.mu1[v as usize],
        ws.e_in[v as usize],
        residual.residual_degree(v),
    )
}

/// Stage I selection, reference implementation: scan the whole frontier.
/// Argmax `mu_s1`, ties broken by attachment (`e_in`), then residual degree,
/// then lowest vertex id. The tie-break chain also serves as the fallback
/// when every candidate scores 0 (no shared neighbors — e.g. in trees).
pub(super) fn select_stage_one_scan(ws: &Workspace, residual: &ResidualGraph<'_>) -> VertexId {
    let mut best = ws.frontier[0];
    let mut best_key = stage_one_key(ws, residual, best);
    for &v in &ws.frontier[1..] {
        let key = stage_one_key(ws, residual, v);
        if key > best_key || (key == best_key && v < best) {
            best = v;
            best_key = key;
        }
    }
    best
}

/// Stage I selection via the lazy max-heap: pop until the top entry matches
/// the candidate's current `(mu1, e_in)` state.
pub(super) fn select_stage_one_heap(
    index: &mut StagedIndex,
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
) -> VertexId {
    while let Some(entry) = index.stage1_heap.pop() {
        let vi = entry.vertex as usize;
        if ws.in_frontier[vi]
            && ws.e_in[vi] == entry.e_in
            && ws.mu1[vi].total_cmp(&entry.mu1).is_eq()
        {
            debug_assert_eq!(residual.residual_degree(entry.vertex) as u32, entry.res_deg);
            return entry.vertex;
        }
    }
    unreachable!("frontier non-empty but stage-1 heap exhausted");
}

type StageTwoKey = (GainRatio, u32, Reverse<usize>);

fn stage_two_key(
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
    v: VertexId,
) -> StageTwoKey {
    let e_in = ws.e_in[v as usize] as usize;
    let e_ext = residual.residual_degree(v) - e_in;
    (
        GainRatio::new(internal, external, e_in, e_ext),
        e_in as u32,
        Reverse(e_ext),
    )
}

/// Stage II selection, reference implementation: scan the whole frontier.
/// Argmax post-admission modularity (exact fraction), ties broken by
/// attachment, then fewest new external edges, then lowest vertex id.
pub(super) fn select_stage_two_scan(
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
) -> VertexId {
    let mut best = ws.frontier[0];
    let mut best_key = stage_two_key(ws, residual, internal, external, best);
    for &v in &ws.frontier[1..] {
        let key = stage_two_key(ws, residual, internal, external, v);
        if key > best_key || (key == best_key && v < best) {
            best = v;
            best_key = key;
        }
    }
    best
}

/// Stage II selection via the `e_in` buckets: only each bucket's minimum
/// `(e_ext, id)` candidate can be the argmax within its `e_in` class, so it
/// suffices to compare one representative per active bucket.
pub(super) fn select_stage_two_heap(
    index: &mut StagedIndex,
    ws: &Workspace,
    residual: &ResidualGraph<'_>,
    internal: usize,
    external: usize,
) -> VertexId {
    let mut best: Option<(StageTwoKey, VertexId)> = None;
    for bi in 0..index.active_buckets.len() {
        let bucket = index.active_buckets[bi] as usize;
        // Drop stale tops: an entry is valid iff the vertex is still a
        // candidate with exactly this e_in (then its e_ext is implied by its
        // constant residual degree).
        let rep = loop {
            match index.stage2_buckets[bucket].peek() {
                None => break None,
                Some(&Reverse((_, v))) => {
                    let vi = v as usize;
                    if ws.in_frontier[vi] && ws.e_in[vi] as usize == bucket {
                        break Some(v);
                    }
                    index.stage2_buckets[bucket].pop();
                }
            }
        };
        let Some(v) = rep else { continue };
        let key = stage_two_key(ws, residual, internal, external, v);
        let better = match &best {
            None => true,
            Some((bk, bv)) => key > *bk || (key == *bk && v < *bv),
        };
        if better {
            best = Some((key, v));
        }
    }
    best.expect("frontier non-empty but no stage-2 candidate").1
}
