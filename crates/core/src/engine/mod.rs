//! The reusable local-expansion engine behind TLP, TLP_R, the single-stage
//! ablations, and the NE baseline (Algorithm 1 of the paper, generalized
//! over the vertex-selection policy).
//!
//! One partition is grown per round. The engine maintains:
//!
//! * a [`ResidualGraph`](tlp_graph::ResidualGraph) of not-yet-allocated
//!   edges (rounds consume edges);
//! * the member set of the current partition (stamped per round);
//! * the frontier `N(P_k)`: non-members with at least one residual edge
//!   into the partition, each carrying
//!   - `e_in`: residual edges into the partition (Stage II input), and
//!   - `mu1`: the running maximum of Eq. 7's closeness term (Stage I
//!     input), updated incrementally as members join;
//! * exact integer counts of internal and external edges (the modularity).
//!
//! What distinguishes the algorithms built on top is only *which frontier
//! vertex joins next* and *when edges are allocated*; both live in the
//! [`SelectionPolicy`] a caller passes to [`run`]:
//!
//! * [`StagedPolicy`] over a [`StageSwitch`] gives the TLP family
//!   (two-stage, TLP_R, single-stage ablations) with lazy admission;
//! * an eager-admission policy keyed on residual degree gives NE
//!   (implemented as `NePolicy` in the `tlp-baselines` crate).
//!
//! # Selection strategies
//!
//! Three implementations of "pick the optimal frontier vertex" exist for
//! the staged policies, chosen by [`SelectionStrategy`]; all compute the
//! identical argmax (ties included) and thus identical partitions:
//!
//! * **LinearScan** — scan the whole frontier per step, exactly as written
//!   in Algorithm 1 (`O(|N(P_k)|)` per step).
//! * **IndexedHeap** — a lazy max-heap over the Stage I key, plus one lazy
//!   min-heap on `e_ext` per `e_in` value for Stage II. The latter is sound
//!   because a frontier candidate's residual degree never changes while it
//!   waits (its edges are only consumed when it joins), so `e_in` grows
//!   monotonically, `e_ext = residual_degree - e_in` shrinks monotonically,
//!   and the Stage II objective is increasing in `e_in` / decreasing in
//!   `e_ext` — the bucket minimum is the only candidate of its `e_in` class
//!   that can win.
//! * **Incremental** — the same heaps, fed by dirty-marking: candidate
//!   state changes between two selections only mark the vertex, and every
//!   pending mark is flushed as one current-state entry at selection time.
//!   A hub touched by `d` edge events costs one heap entry instead of `d`
//!   stale ones. The pop-time validation is unchanged, so stale entries
//!   from earlier flushes are discarded exactly as under `IndexedHeap`.
//!
//! Independent of the strategy, Stage I scores (`mu1`) are maintained
//! incrementally by `Workspace::refresh_mu1`: when a member is admitted,
//! only frontier vertices adjacent to it are rescored, each term is pruned
//! by a degree upper bound when it provably cannot raise the candidate's
//! running maximum, and intersections against the admitted member run on
//! the loaded [`IntersectionKernel`](tlp_graph::intersect::IntersectionKernel)
//! with per-admission memoization. All of these are value-neutral, so
//! every strategy still sees the exact Eq. 7 scores.
//!
//! All ties are broken by explicit deterministic keys, so results are
//! reproducible across runs and platforms under any strategy.
//!
//! [`SelectionStrategy`]: crate::SelectionStrategy

mod frontier;
mod policy;
mod round;
mod workspace;

pub use policy::{
    AdmissionMode, EdgeRatioSwitch, GrowthState, ModularitySwitch, Selection, SelectionPolicy,
    StageSwitch, StagedPolicy,
};
pub use round::{run, run_with_checkpoints, CheckpointSink};
pub use workspace::Workspace;

use crate::checkpoint::EngineCheckpoint;
use crate::config::TlpConfig;
use crate::partition::EdgePartition;
use crate::trace::Trace;
use crate::PartitionError;
use tlp_graph::GraphView;

/// Convenience: runs the staged (TLP-family) policy under `switch` with the
/// configured selection strategy.
pub(crate) fn run_staged<'g, S: StageSwitch>(
    graph: impl Into<GraphView<'g>>,
    num_partitions: usize,
    config: &TlpConfig,
    switch: S,
) -> Result<(EdgePartition, Option<Trace>), PartitionError> {
    let mut policy = StagedPolicy::new(switch, config.selection_strategy_value());
    run(graph, num_partitions, config, &mut policy)
}

/// [`run_staged`] with kill-and-resume support (see
/// [`run_with_checkpoints`]).
pub(crate) fn run_staged_with_checkpoints<'g, S: StageSwitch>(
    graph: impl Into<GraphView<'g>>,
    num_partitions: usize,
    config: &TlpConfig,
    switch: S,
    resume: Option<&EngineCheckpoint>,
    sink: Option<CheckpointSink<'_>>,
) -> Result<(EdgePartition, Option<Trace>), PartitionError> {
    let mut policy = StagedPolicy::new(switch, config.selection_strategy_value());
    run_with_checkpoints(graph, num_partitions, config, &mut policy, resume, sink)
}
