//! The [`SelectionPolicy`] trait — the pluggable "which frontier vertex
//! joins next" brain of the expansion engine — and the staged (TLP-family)
//! implementation generic over a [`StageSwitch`].

use super::frontier;
use super::workspace::{StagedIndex, Workspace};
use crate::config::SelectionStrategy;
use crate::modularity::Modularity;
use crate::trace::Stage;
use tlp_graph::{ResidualGraph, VertexId};

/// How the engine turns a selected vertex's residual edges into allocations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionMode {
    /// TLP-style: an edge is allocated when its *second* endpoint becomes a
    /// member; frontier candidates keep their residual edges until selected.
    Lazy,
    /// NE-style (neighborhood expansion): when a vertex enters the boundary
    /// set, all of its residual edges into the boundary are allocated
    /// immediately, so boundary-internal residual edges never exist and a
    /// candidate's residual degree equals its external degree.
    Eager,
}

/// The partition's growth counters at selection time.
#[derive(Clone, Copy, Debug)]
pub struct GrowthState {
    /// Edges allocated to the partition so far (`|E(P_k)|`).
    pub internal: usize,
    /// Residual edges crossing the partition boundary (`|E_out(P_k)|`;
    /// zero under eager admission, which never leaves crossing edges
    /// unallocated towards the boundary set).
    pub external: usize,
    /// The capacity bound `C` for this run.
    pub capacity: usize,
}

/// A selection decision: the vertex to admit and the stage label recorded
/// in traces.
#[derive(Clone, Copy, Debug)]
pub struct Selection {
    /// The frontier vertex to admit next.
    pub vertex: VertexId,
    /// Which stage's criterion picked it (trace bookkeeping only).
    pub stage: Stage,
}

/// Scores frontier candidates and picks the next vertex to admit.
///
/// The engine ([`run`](super::run)) owns the mechanics — membership,
/// frontier bookkeeping, edge allocation, reseeding — and calls back into
/// the policy at two points: when a candidate's state changes
/// ([`on_candidate`](SelectionPolicy::on_candidate)) and when a vertex must
/// be chosen ([`select`](SelectionPolicy::select)). Policies own whatever
/// priority structures they need, so a policy that ranks by a single scalar
/// (e.g. NE's external degree) pays nothing for the staged machinery.
pub trait SelectionPolicy {
    /// The edge-allocation discipline this policy requires.
    fn admission(&self) -> AdmissionMode {
        AdmissionMode::Lazy
    }

    /// Observes that `v` is a (new or refreshed) frontier candidate; the
    /// workspace already holds its up-to-date `e_in`/`mu1` state. Called
    /// once per state change, so lazy-heap policies can push an entry per
    /// call and invalidate stale ones at pop time.
    fn on_candidate(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        v: VertexId,
        round: u32,
    );

    /// Picks the next vertex from a non-empty frontier.
    fn select(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        state: GrowthState,
    ) -> Selection;

    /// Hook run after each round; policies drop per-round entries here.
    fn end_round(&mut self) {}
}

/// Decides which stage's criterion selects the next vertex (the staged
/// policies' switching rule).
pub trait StageSwitch {
    /// Chooses the stage given the partition's current state.
    fn choose(&self, modularity: Modularity, internal: usize, capacity: usize) -> Stage;
}

/// The paper's TLP switch (Table II): Stage I while `M(P_k) <= 1`.
#[derive(Clone, Copy, Debug)]
pub struct ModularitySwitch;

impl StageSwitch for ModularitySwitch {
    fn choose(&self, modularity: Modularity, _internal: usize, _capacity: usize) -> Stage {
        if modularity.is_stage_one() {
            Stage::One
        } else {
            Stage::Two
        }
    }
}

/// The TLP_R switch (Table V): Stage I while `|E(P_k)| <= R * C`.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRatioSwitch {
    /// The stage-switch ratio `R` in `[0, 1]`.
    pub ratio: f64,
}

impl StageSwitch for EdgeRatioSwitch {
    fn choose(&self, _modularity: Modularity, internal: usize, capacity: usize) -> Stage {
        if self.ratio > 0.0 && (internal as f64) <= self.ratio * capacity as f64 {
            Stage::One
        } else {
            Stage::Two
        }
    }
}

/// The TLP-family selection policy: a [`StageSwitch`] decides the stage,
/// then either the reference linear scan or the indexed lazy heaps pick the
/// stage's argmax (both produce the identical vertex, ties included).
pub struct StagedPolicy<S> {
    switch: S,
    strategy: SelectionStrategy,
    index: StagedIndex,
}

impl<S: StageSwitch> StagedPolicy<S> {
    /// Creates the policy with the given switching rule and strategy.
    pub fn new(switch: S, strategy: SelectionStrategy) -> Self {
        StagedPolicy {
            switch,
            strategy,
            index: StagedIndex::default(),
        }
    }
}

impl<S: StageSwitch> SelectionPolicy for StagedPolicy<S> {
    fn on_candidate(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        v: VertexId,
        round: u32,
    ) {
        match self.strategy {
            SelectionStrategy::IndexedHeap => {
                self.index.push_candidate_state(ws, residual, v, round);
            }
            SelectionStrategy::Incremental => self.index.mark_dirty(v, round),
            SelectionStrategy::LinearScan => {}
        }
    }

    fn select(
        &mut self,
        ws: &Workspace,
        residual: &ResidualGraph<'_>,
        state: GrowthState,
    ) -> Selection {
        let stage = self.switch.choose(
            Modularity::new(state.internal, state.external),
            state.internal,
            state.capacity,
        );
        // Incremental: all candidate-state changes since the last selection
        // were only *marked*; materialize each pending candidate's current
        // state as one heap entry, then select exactly as `IndexedHeap`.
        if self.strategy == SelectionStrategy::Incremental {
            self.index.flush_dirty(ws, residual);
        }
        let vertex = match (stage, self.strategy) {
            (Stage::One, SelectionStrategy::LinearScan) => {
                frontier::select_stage_one_scan(ws, residual)
            }
            (Stage::One, SelectionStrategy::IndexedHeap | SelectionStrategy::Incremental) => {
                frontier::select_stage_one_heap(&mut self.index, ws, residual)
            }
            (Stage::Two, SelectionStrategy::LinearScan) => {
                frontier::select_stage_two_scan(ws, residual, state.internal, state.external)
            }
            (Stage::Two, SelectionStrategy::IndexedHeap | SelectionStrategy::Incremental) => {
                frontier::select_stage_two_heap(
                    &mut self.index,
                    ws,
                    residual,
                    state.internal,
                    state.external,
                )
            }
        };
        Selection { vertex, stage }
    }

    fn end_round(&mut self) {
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ratio_switch_boundaries() {
        let policy_all_one = EdgeRatioSwitch { ratio: 1.0 };
        let policy_all_two = EdgeRatioSwitch { ratio: 0.0 };
        let m = Modularity::new(5, 1);
        assert_eq!(policy_all_one.choose(m, 5, 10), Stage::One);
        assert_eq!(policy_all_two.choose(m, 0, 10), Stage::Two);
        let half = EdgeRatioSwitch { ratio: 0.5 };
        assert_eq!(half.choose(m, 4, 10), Stage::One);
        assert_eq!(half.choose(m, 6, 10), Stage::Two);
    }

    #[test]
    fn modularity_switch_switches_at_one() {
        assert_eq!(
            ModularitySwitch.choose(Modularity::new(3, 4), 3, 100),
            Stage::One
        );
        assert_eq!(
            ModularitySwitch.choose(Modularity::new(5, 4), 5, 100),
            Stage::Two
        );
    }
}
