//! Two-stage local graph edge partitioning (TLP).
//!
//! This crate implements the core contribution of *"Local Graph Edge
//! Partitioning with a Two-Stage Heuristic Method"* (Ji, Bu, Li, Wu — ICDCS
//! 2019): a **local** edge partitioner that grows one partition at a time
//! from a random seed vertex, holding only the current partition and its
//! frontier in memory, and switching between two vertex-selection heuristics
//! based on the partition's *modularity* `M(P_k) = |E(P_k)| / |E_out(P_k)|`:
//!
//! * **Stage I** (`M <= 1`, loose partition): select the frontier vertex
//!   closest to the partition with the highest degree
//!   ([`stage1::mu_s1`], Eq. 7 of the paper).
//! * **Stage II** (`M > 1`, tight partition): select the frontier vertex
//!   with the largest modularity gain ([`stage2`], Eq. 9-11).
//!
//! # Quick start
//!
//! ```
//! use tlp_core::{EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner};
//! use tlp_graph::generators::chung_lu;
//!
//! let graph = chung_lu(500, 2_000, 2.2, 42);
//! let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(7));
//! let partition = tlp.partition(&graph, 8)?;
//! let metrics = PartitionMetrics::compute(&graph, &partition);
//! assert!(metrics.replication_factor >= 1.0);
//! # Ok::<(), tlp_core::PartitionError>(())
//! ```
//!
//! The companion crates provide baselines (`tlp-baselines`), a METIS-style
//! multilevel comparator (`tlp-metis`), and the experiment harness that
//! regenerates every table and figure of the paper (`tlp-harness`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod error;
mod metrics;
mod modularity;
mod parallel;
mod partition;
mod partitioner;
mod pipeline;
mod single_stage;
mod tlp;
mod tlp_r;
mod trace;

pub mod engine;
pub mod stage1;
pub mod stage2;

pub use checkpoint::EngineCheckpoint;
pub use config::{ReseedPolicy, SelectionStrategy, TlpConfig};
pub use error::PartitionError;
pub use metrics::{PartitionMetrics, StreamedMetrics};
pub use modularity::Modularity;
pub use parallel::{
    available_threads, observed_parallel_map, parallel_map, trial_seed, ParallelTrialRunner,
    TrialFailure, TrialReport,
};
pub use partition::{EdgePartition, PartitionId};
pub use partitioner::EdgePartitioner;
pub use pipeline::{
    run_span, trial_span, AlgoConfig, Algorithm, AlgorithmBuilder, AlgorithmEntry,
    AlgorithmRegistry, Capability, MaterializedAlgorithm, ParamSpec, PipelineError, RunArtifact,
    TlpAlgorithm,
};
pub use single_stage::{StageOneOnlyPartitioner, StageTwoOnlyPartitioner};
pub use tlp::TwoStageLocalPartitioner;
pub use tlp_r::EdgeRatioLocalPartitioner;
pub use trace::{RoundScoring, SelectionRecord, Stage, StageDegreeSummary, Trace};
