//! Resume bit-identity: a run resumed from any round-boundary checkpoint
//! must produce the exact partition (same assignment, same RF) the
//! uninterrupted run with the same seed produces, across generator
//! families and partition counts.

#![allow(clippy::unwrap_used)]

use tlp_core::{
    EdgePartitioner, EngineCheckpoint, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner,
};
use tlp_graph::generators::{
    barabasi_albert, chung_lu, erdos_renyi, genealogy, power_law_community, rmat, RmatProbabilities,
};
use tlp_graph::CsrGraph;

/// One small instance per generator family.
fn family_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chung_lu", chung_lu(300, 1_200, 2.2, 5)),
        ("erdos_renyi", erdos_renyi(300, 1_200, 6)),
        ("barabasi_albert", barabasi_albert(300, 4, 7)),
        ("rmat", rmat(8, 1_200, RmatProbabilities::default(), 8)),
        (
            "power_law_community",
            power_law_community(300, 1_200, 2.1, 6, 0.2, 9),
        ),
        ("genealogy", genealogy(400, 700, 10)),
    ]
}

fn check_family(name: &str, graph: &CsrGraph, p: usize) {
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(21));

    // Uninterrupted run, capturing every round-boundary checkpoint.
    let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
    let mut sink = |ckpt: &EngineCheckpoint| {
        checkpoints.push(ckpt.clone());
        Ok(())
    };
    let base = tlp
        .partition_with_checkpoints(graph, p, None, Some(&mut sink))
        .unwrap();
    // One checkpoint per *executed* round: the engine stops early once the
    // residual is exhausted, so high p on a small graph yields fewer.
    assert!(
        !checkpoints.is_empty() && checkpoints.len() <= p,
        "{name} p={p}: {} checkpoints for {p} rounds",
        checkpoints.len()
    );

    // The checkpoint plumbing itself must not perturb the result.
    let plain = tlp.partition(graph, p).unwrap();
    assert_eq!(base, plain, "{name} p={p}: sink presence changed the run");

    let base_rf = PartitionMetrics::compute(graph, &base).replication_factor;

    // Resume from the first, a middle, and the last checkpoint (the last
    // is the degenerate nothing-left-to-do case).
    let rounds = checkpoints.len();
    let picks = [0, rounds / 2, rounds.saturating_sub(2), rounds - 1];
    for &j in &picks {
        let resumed = tlp
            .partition_with_checkpoints(graph, p, Some(&checkpoints[j]), None)
            .unwrap();
        assert_eq!(
            resumed,
            base,
            "{name} p={p}: resume from round {} diverged",
            j + 1
        );
        let rf = PartitionMetrics::compute(graph, &resumed).replication_factor;
        assert!(
            rf == base_rf,
            "{name} p={p}: resumed RF {rf} != uninterrupted RF {base_rf}"
        );
    }
}

#[test]
fn resume_is_bit_identical_at_p4() {
    for (name, graph) in family_graphs() {
        check_family(name, &graph, 4);
    }
}

#[test]
fn resume_is_bit_identical_at_p8() {
    for (name, graph) in family_graphs() {
        check_family(name, &graph, 8);
    }
}

#[test]
fn resume_is_bit_identical_at_p32() {
    for (name, graph) in family_graphs() {
        check_family(name, &graph, 32);
    }
}

#[test]
fn mismatched_checkpoint_is_rejected() {
    let graph = chung_lu(300, 1_200, 2.2, 5);
    let other = chung_lu(200, 800, 2.2, 5);
    let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(21));

    let mut checkpoints: Vec<EngineCheckpoint> = Vec::new();
    let mut sink = |ckpt: &EngineCheckpoint| {
        checkpoints.push(ckpt.clone());
        Ok(())
    };
    tlp.partition_with_checkpoints(&graph, 4, None, Some(&mut sink))
        .unwrap();

    // Wrong graph shape.
    let err = tlp
        .partition_with_checkpoints(&other, 4, Some(&checkpoints[0]), None)
        .unwrap_err();
    assert!(matches!(err, tlp_core::PartitionError::Checkpoint(_)));

    // Wrong partition count.
    let err = tlp
        .partition_with_checkpoints(&graph, 8, Some(&checkpoints[0]), None)
        .unwrap_err();
    assert!(matches!(err, tlp_core::PartitionError::Checkpoint(_)));
}
