//! Graph contraction along a matching.

use crate::matching::heavy_edge_matching;
use crate::{MetisConfig, WeightedGraph};
use std::collections::HashMap;

/// One coarsening step: the coarse graph plus the fine-to-coarse vertex map.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: WeightedGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<u32>,
}

/// Contracts `graph` along `match_of` (as produced by
/// [`heavy_edge_matching`]): each matched pair becomes one coarse vertex
/// whose weight is the pair's total, parallel edges merge by weight, and
/// intra-pair edges vanish.
pub fn contract(graph: &WeightedGraph, match_of: &[u32]) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut map = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let w = match_of[v as usize];
        map[v as usize] = coarse_count;
        map[w as usize] = coarse_count; // w == v for unmatched vertices
        coarse_count += 1;
    }

    let cn = coarse_count as usize;
    let mut vertex_weight = vec![0u64; cn];
    for v in 0..n as u32 {
        vertex_weight[map[v as usize] as usize] += graph.vertex_weight(v);
    }

    let mut adjacency: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cn];
    let mut merge: HashMap<u32, u64> = HashMap::new();
    // Bucket fine vertices by coarse id, then merge each bucket's adjacency.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cn];
    for v in 0..n as u32 {
        members[map[v as usize] as usize].push(v);
    }
    for (c, fine) in members.iter().enumerate() {
        merge.clear();
        for &v in fine {
            for &(w, wt) in graph.neighbors(v) {
                let cw = map[w as usize];
                if cw as usize == c {
                    continue; // contracted away
                }
                *merge.entry(cw).or_insert(0) += wt;
            }
        }
        let mut list: Vec<(u32, u64)> = merge.iter().map(|(&w, &wt)| (w, wt)).collect();
        list.sort_unstable();
        adjacency[c] = list;
    }

    CoarseLevel {
        graph: WeightedGraph::from_adjacency(vertex_weight, adjacency),
        map,
    }
}

/// Runs the full coarsening phase: repeated HEM + contraction until the
/// graph has at most `config.coarsen_target` vertices or stops shrinking.
///
/// Returns the levels from finest to coarsest (empty when the input is
/// already small enough).
pub fn coarsen_all(graph: &WeightedGraph, config: &MetisConfig) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut round = 0u64;
    loop {
        let current = levels.last().map(|l| &l.graph).unwrap_or(graph);
        if current.num_vertices() <= config.coarsen_target {
            break;
        }
        let matching = heavy_edge_matching(current, config.seed.wrapping_add(round));
        let level = contract(current, &matching);
        // Guard against coarsening stalls (e.g. star graphs where matching
        // shrinks slowly): require at least 8% shrink per level.
        if level.graph.num_vertices() as f64 > 0.92 * current.num_vertices() as f64 {
            break;
        }
        levels.push(level);
        round += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn contract_merges_weights_and_removes_internal_edges() {
        // Path 0-1-2-3, match (0,1) and (2,3): coarse graph is one edge.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let wg = WeightedGraph::from_csr(&g);
        let level = contract(&wg, &[1, 0, 3, 2]);
        assert_eq!(level.graph.num_vertices(), 2);
        assert_eq!(level.graph.total_edge_weight(), 1);
        assert_eq!(level.graph.vertex_weight(0), 2);
        assert_eq!(level.graph.vertex_weight(1), 2);
        assert_eq!(level.map, vec![0, 0, 1, 1]);
    }

    #[test]
    fn parallel_coarse_edges_accumulate_weight() {
        // Square 0-1-2-3-0, match (0,1) and (2,3): two parallel edges merge
        // into one of weight 2.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let wg = WeightedGraph::from_csr(&g);
        let level = contract(&wg, &[1, 0, 3, 2]);
        assert_eq!(level.graph.num_vertices(), 2);
        assert_eq!(level.graph.total_edge_weight(), 2);
        assert_eq!(level.graph.neighbors(0), &[(1, 2)]);
    }

    #[test]
    fn total_vertex_weight_is_preserved() {
        let g = tlp_graph::generators::erdos_renyi(200, 800, 4);
        let wg = WeightedGraph::from_csr(&g);
        let m = heavy_edge_matching(&wg, 1);
        let level = contract(&wg, &m);
        assert_eq!(level.graph.total_vertex_weight(), 200);
    }

    #[test]
    fn cut_is_preserved_under_projection() {
        let g = tlp_graph::generators::erdos_renyi(100, 400, 2);
        let wg = WeightedGraph::from_csr(&g);
        let m = heavy_edge_matching(&wg, 9);
        let level = contract(&wg, &m);
        // Any coarse bisection's cut equals the projected fine cut.
        let coarse_side: Vec<u8> = (0..level.graph.num_vertices())
            .map(|c| (c % 2) as u8)
            .collect();
        let fine_side: Vec<u8> = (0..100)
            .map(|v| coarse_side[level.map[v] as usize])
            .collect();
        assert_eq!(level.graph.cut(&coarse_side), wg.cut(&fine_side));
    }

    #[test]
    fn coarsen_all_reaches_target() {
        let g = tlp_graph::generators::chung_lu(2000, 8000, 2.2, 6);
        let wg = WeightedGraph::from_csr(&g);
        let config = MetisConfig::default();
        let levels = coarsen_all(&wg, &config);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        // Either hit the target or stalled above it (acceptable fallback).
        assert!(coarsest.num_vertices() < 2000);
        assert_eq!(coarsest.total_vertex_weight(), 2000);
    }
}
