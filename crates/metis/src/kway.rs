//! Multilevel bisection and recursive k-way partitioning.

use crate::coarsen::coarsen_all;
use crate::initial::greedy_graph_growing;
use crate::refine::fm_refine;
use crate::{MetisConfig, WeightedGraph};

/// Multilevel bisection: coarsen, initial-partition, uncoarsen-and-refine.
///
/// `target0` is the vertex weight side 0 should receive. Returns `side[v]`
/// in `{0, 1}`.
pub fn multilevel_bisect(graph: &WeightedGraph, target0: u64, config: &MetisConfig) -> Vec<u8> {
    let levels = coarsen_all(graph, config);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(graph);

    let mut side = greedy_graph_growing(coarsest, target0, config);
    fm_refine(coarsest, &mut side, target0, config);

    // Project back through the levels, refining at each.
    for i in (0..levels.len()).rev() {
        let finer = if i == 0 { graph } else { &levels[i - 1].graph };
        let map = &levels[i].map;
        let mut fine_side = vec![0u8; finer.num_vertices()];
        for v in 0..finer.num_vertices() {
            fine_side[v] = side[map[v] as usize];
        }
        fm_refine(finer, &mut fine_side, target0, config);
        side = fine_side;
    }
    side
}

/// Recursive bisection into `p` parts with weight-proportional targets.
///
/// Returns the vertex assignment (`0..p`) for every vertex of `graph`.
pub fn recursive_bisection(graph: &WeightedGraph, p: usize, config: &MetisConfig) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut assignment = vec![0u32; n];
    if p <= 1 || n == 0 {
        return assignment;
    }
    let vertices: Vec<u32> = (0..n as u32).collect();
    split(graph, &vertices, 0, p, config, &mut assignment, 0);
    assignment
}

/// Recursively splits `vertices` (a subset of the original graph) into parts
/// `[first_part, first_part + parts)`.
fn split(
    original: &WeightedGraph,
    vertices: &[u32],
    first_part: u32,
    parts: usize,
    config: &MetisConfig,
    assignment: &mut [u32],
    depth: u64,
) {
    if parts <= 1 {
        for &v in vertices {
            assignment[v as usize] = first_part;
        }
        return;
    }
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;

    // Build the induced subgraph.
    let (sub, back) = induced_subgraph(original, vertices);
    let total = sub.total_vertex_weight();
    let target0 = total * left_parts as u64 / parts as u64;

    // Vary the seed per recursion node so sibling splits decorrelate.
    let mut local = *config;
    local.seed = config.seed.wrapping_mul(0x9E37).wrapping_add(depth);
    let side = multilevel_bisect(&sub, target0, &local);

    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for (local_id, &orig) in back.iter().enumerate() {
        if side[local_id] == 0 {
            left.push(orig);
        } else {
            right.push(orig);
        }
    }
    // Degenerate guard: a side must never be empty when parts remain.
    if left.is_empty() || right.is_empty() {
        let all = if left.is_empty() {
            &mut right
        } else {
            &mut left
        };
        let take = all.len() / 2;
        let moved: Vec<u32> = all.drain(..take).collect();
        if left.is_empty() {
            left = moved;
        } else {
            right = moved;
        }
    }

    split(
        original,
        &left,
        first_part,
        left_parts,
        config,
        assignment,
        2 * depth + 1,
    );
    split(
        original,
        &right,
        first_part + left_parts as u32,
        right_parts,
        config,
        assignment,
        2 * depth + 2,
    );
}

/// Extracts the subgraph induced by `vertices`; returns it plus the
/// local-to-original id map.
fn induced_subgraph(graph: &WeightedGraph, vertices: &[u32]) -> (WeightedGraph, Vec<u32>) {
    let mut local_of = vec![u32::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        local_of[v as usize] = i as u32;
    }
    let vertex_weight: Vec<u64> = vertices.iter().map(|&v| graph.vertex_weight(v)).collect();
    let adjacency: Vec<Vec<(u32, u64)>> = vertices
        .iter()
        .map(|&v| {
            graph
                .neighbors(v)
                .iter()
                .filter_map(|&(w, wt)| {
                    let lw = local_of[w as usize];
                    (lw != u32::MAX).then_some((lw, wt))
                })
                .collect()
        })
        .collect();
    (
        WeightedGraph::from_adjacency(vertex_weight, adjacency),
        vertices.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let wg = WeightedGraph::from_csr(&g);
        let (sub, back) = induced_subgraph(&wg, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.total_edge_weight(), 2); // (0,1) and (1,2)
        assert_eq!(back, vec![0, 1, 2]);
    }

    #[test]
    fn bisect_four_cliques_into_four_parts() {
        let mut b = GraphBuilder::new();
        for group in 0..4u32 {
            let base = group * 5;
            for a in 0..5 {
                for c in (a + 1)..5 {
                    b.push_edge(base + a, base + c);
                }
            }
        }
        // Ring of bridges.
        b.push_edge(0, 5);
        b.push_edge(5, 10);
        b.push_edge(10, 15);
        b.push_edge(15, 0);
        let g = b.build();
        let wg = WeightedGraph::from_csr(&g);
        let assign = recursive_bisection(&wg, 4, &MetisConfig::default());
        // Every clique should be monochromatic.
        for group in 0..4u32 {
            let base = (group * 5) as usize;
            let color = assign[base];
            for i in 0..5 {
                assert_eq!(assign[base + i], color, "clique {group} split");
            }
        }
        // And all four parts used.
        let mut used: Vec<u32> = assign.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
        let wg = WeightedGraph::from_csr(&g);
        assert_eq!(
            recursive_bisection(&wg, 1, &MetisConfig::default()),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn odd_part_counts_get_proportional_weights() {
        let g = tlp_graph::generators::erdos_renyi(300, 900, 3);
        let wg = WeightedGraph::from_csr(&g);
        let assign = recursive_bisection(&wg, 3, &MetisConfig::default());
        let mut counts = [0usize; 3];
        for &a in &assign {
            counts[a as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (60..=140).contains(&c),
                "part sizes far from 100: {counts:?}"
            );
        }
    }
}
