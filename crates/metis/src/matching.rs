//! Heavy-edge matching (the coarsening matchmaker of Karypis & Kumar).

use crate::WeightedGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Computes a heavy-edge matching: vertices are visited in random order and
/// each unmatched vertex grabs its unmatched neighbor along the heaviest
/// edge (ties: lighter vertex weight, then lower id — merging light vertices
/// keeps coarse weights even).
///
/// Returns `match_of[v]`, where unmatched vertices map to themselves.
///
/// # Example
///
/// ```
/// use tlp_graph::GraphBuilder;
/// use tlp_metis::{matching::heavy_edge_matching, WeightedGraph};
///
/// let g = GraphBuilder::new().add_edges([(0, 1), (2, 3)]).build();
/// let wg = WeightedGraph::from_csr(&g);
/// let m = heavy_edge_matching(&wg, 7);
/// assert_eq!(m[0], 1);
/// assert_eq!(m[1], 0);
/// assert_eq!(m[2], 3);
/// ```
pub fn heavy_edge_matching(graph: &WeightedGraph, seed: u64) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    for &v in &order {
        if matched[v as usize] {
            continue;
        }
        let mut best: Option<(u64, std::cmp::Reverse<u64>, std::cmp::Reverse<u32>, u32)> = None;
        for &(w, wt) in graph.neighbors(v) {
            if w == v || matched[w as usize] {
                continue;
            }
            let key = (
                wt,
                std::cmp::Reverse(graph.vertex_weight(w)),
                std::cmp::Reverse(w),
                w,
            );
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        if let Some((_, _, _, w)) = best {
            matched[v as usize] = true;
            matched[w as usize] = true;
            match_of[v as usize] = w;
            match_of[w as usize] = v;
        }
    }
    match_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn matching_is_symmetric_and_disjoint() {
        let g = tlp_graph::generators::erdos_renyi(100, 300, 5);
        let wg = WeightedGraph::from_csr(&g);
        let m = heavy_edge_matching(&wg, 3);
        for v in 0..100u32 {
            let w = m[v as usize];
            assert_eq!(m[w as usize], v, "matching not symmetric at {v}");
        }
    }

    #[test]
    fn heavier_edges_are_preferred() {
        // Path 0 -(1)- 1 -(5)- 2: vertex 1 should match vertex 2.
        let wg = WeightedGraph::from_adjacency(
            vec![1, 1, 1],
            vec![vec![(1, 1)], vec![(0, 1), (2, 5)], vec![(1, 5)]],
        );
        // Whatever visit order, the heavy edge (1,2) is chosen when either
        // endpoint is visited first; 0 can only match 1.
        for seed in 0..8 {
            let m = heavy_edge_matching(&wg, seed);
            assert!(
                (m[1] == 2 && m[2] == 1) || (m[0] == 1 && m[1] == 0),
                "seed {seed}: {m:?}"
            );
        }
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let g = GraphBuilder::new()
            .reserve_vertices(3)
            .add_edge(0, 1)
            .build();
        let wg = WeightedGraph::from_csr(&g);
        let m = heavy_edge_matching(&wg, 1);
        assert_eq!(m[2], 2);
    }

    #[test]
    fn matching_halves_most_vertices_on_dense_graphs() {
        let g = tlp_graph::generators::erdos_renyi(200, 2000, 8);
        let wg = WeightedGraph::from_csr(&g);
        let m = heavy_edge_matching(&wg, 2);
        let matched = (0..200u32).filter(|&v| m[v as usize] != v).count();
        assert!(matched >= 150, "only {matched} matched");
    }
}
