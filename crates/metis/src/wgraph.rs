//! Weighted graph representation used throughout the multilevel scheme.

use tlp_graph::GraphView;

/// An undirected graph with vertex and edge weights in CSR form.
///
/// Coarsening contracts matched vertex pairs: the contracted vertex's weight
/// is the sum of its constituents, and parallel edges merge by adding their
/// weights, so the edge cut of a coarse partition equals the edge cut of its
/// projection to the original graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    adj: Vec<(u32, u64)>,
    vertex_weight: Vec<u64>,
    total_edge_weight: u64,
}

impl WeightedGraph {
    /// Builds a unit-weight graph from any CSR-backed graph view.
    pub fn from_csr<'a>(graph: impl Into<GraphView<'a>>) -> Self {
        let graph = graph.into();
        let n = graph.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adj = Vec::with_capacity(2 * graph.num_edges());
        for v in graph.vertices() {
            for &w in graph.neighbors(v) {
                adj.push((w, 1u64));
            }
            offsets.push(adj.len());
        }
        WeightedGraph {
            offsets,
            adj,
            vertex_weight: vec![1; n],
            total_edge_weight: graph.num_edges() as u64,
        }
    }

    /// Builds a weighted graph from per-vertex adjacency lists.
    ///
    /// Each undirected edge must appear in both endpoints' lists with the
    /// same weight; `total_edge_weight` is half the sum of list weights.
    pub(crate) fn from_adjacency(vertex_weight: Vec<u64>, adjacency: Vec<Vec<(u32, u64)>>) -> Self {
        let n = adjacency.len();
        assert_eq!(vertex_weight.len(), n);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adj = Vec::new();
        let mut twice_weight = 0u64;
        for list in &adjacency {
            for &(w, wt) in list {
                adj.push((w, wt));
                twice_weight += wt;
            }
            offsets.push(adj.len());
        }
        WeightedGraph {
            offsets,
            adj,
            vertex_weight,
            total_edge_weight: twice_weight / 2,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Weighted number of edges.
    pub fn total_edge_weight(&self) -> u64 {
        self.total_edge_weight
    }

    /// Weight of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vertex_weight[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weight.iter().sum()
    }

    /// `(neighbor, edge_weight)` pairs of `v`.
    pub fn neighbors(&self, v: u32) -> &[(u32, u64)] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weighted degree (sum of incident edge weights) of `v`.
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.neighbors(v).iter().map(|&(_, w)| w).sum()
    }

    /// The weighted cut of a two-sided assignment (`side[v]` in `{0, 1}`).
    pub fn cut(&self, side: &[u8]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as u32 {
            for &(w, wt) in self.neighbors(v) {
                if side[v as usize] != side[w as usize] {
                    cut += wt;
                }
            }
        }
        cut / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn from_csr_has_unit_weights() {
        let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
        let wg = WeightedGraph::from_csr(&g);
        assert_eq!(wg.num_vertices(), 3);
        assert_eq!(wg.total_edge_weight(), 2);
        assert_eq!(wg.vertex_weight(1), 1);
        assert_eq!(wg.weighted_degree(1), 2);
        assert_eq!(wg.total_vertex_weight(), 3);
    }

    #[test]
    fn cut_counts_weighted_cross_edges() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (0, 2)])
            .build();
        let wg = WeightedGraph::from_csr(&g);
        assert_eq!(wg.cut(&[0, 0, 1]), 2);
        assert_eq!(wg.cut(&[0, 0, 0]), 0);
    }

    #[test]
    fn from_adjacency_merges_weights() {
        // Two vertices joined by a weight-3 edge.
        let wg = WeightedGraph::from_adjacency(vec![2, 5], vec![vec![(1, 3)], vec![(0, 3)]]);
        assert_eq!(wg.total_edge_weight(), 3);
        assert_eq!(wg.vertex_weight(1), 5);
        assert_eq!(wg.cut(&[0, 1]), 3);
    }
}
