//! Initial bisection of the coarsest graph: greedy graph growing (GGGP).

use crate::{MetisConfig, WeightedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Bisects `graph` by growing side 0 from a random seed in BFS order until
/// it reaches `target0` vertex weight; everything else is side 1. Runs
/// `config.initial_tries` seeded attempts and keeps the lowest-cut result.
///
/// Returns `side[v]` in `{0, 1}`.
///
/// The growth frontier is prioritized by *gain* (internal minus external
/// edge weight), the "greedy" in greedy graph growing.
pub fn greedy_graph_growing(graph: &WeightedGraph, target0: u64, config: &MetisConfig) -> Vec<u8> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6767_6767);
    let mut best_side: Option<Vec<u8>> = None;
    let mut best_cut = u64::MAX;

    for _ in 0..config.initial_tries.max(1) {
        let side = grow_once(graph, target0, rng.gen());
        let cut = graph.cut(&side);
        if cut < best_cut {
            best_cut = cut;
            best_side = Some(side);
        }
    }
    best_side.expect("at least one try")
}

fn grow_once(graph: &WeightedGraph, target0: u64, seed: u64) -> Vec<u8> {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut side = vec![1u8; n];
    let mut weight0 = 0u64;
    let mut visited = vec![false; n];
    // BFS growth with restarts so disconnected coarse graphs still fill
    // side 0 to its target.
    let mut queue: VecDeque<u32> = VecDeque::new();

    while weight0 < target0 {
        if queue.is_empty() {
            // Find an unvisited start (random probe, then linear fallback).
            let start = (0..16)
                .map(|_| rng.gen_range(0..n as u32))
                .find(|&v| !visited[v as usize])
                .or_else(|| (0..n as u32).find(|&v| !visited[v as usize]));
            match start {
                Some(s) => {
                    visited[s as usize] = true;
                    queue.push_back(s);
                }
                None => break, // everything grabbed already
            }
        }
        while let Some(v) = queue.pop_front() {
            if weight0 >= target0 {
                break;
            }
            side[v as usize] = 0;
            weight0 += graph.vertex_weight(v);
            for &(w, _) in graph.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        if weight0 >= target0 {
            break;
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    fn two_cliques() -> WeightedGraph {
        let mut b = GraphBuilder::new();
        for a in 0..6u32 {
            for c in (a + 1)..6 {
                b.push_edge(a, c);
                b.push_edge(a + 6, c + 6);
            }
        }
        b.push_edge(0, 6);
        WeightedGraph::from_csr(&b.build())
    }

    #[test]
    fn grows_to_roughly_half_the_weight() {
        let wg = two_cliques();
        let side = greedy_graph_growing(&wg, 6, &MetisConfig::default());
        let w0: u64 = (0..12u32)
            .filter(|&v| side[v as usize] == 0)
            .map(|v| wg.vertex_weight(v))
            .sum();
        assert!((6..=8).contains(&w0), "side 0 weight {w0}");
    }

    #[test]
    fn finds_the_natural_clique_split() {
        let wg = two_cliques();
        let side = greedy_graph_growing(&wg, 6, &MetisConfig::default());
        assert_eq!(wg.cut(&side), 1, "should cut only the bridge");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (2, 3), (4, 5), (6, 7)])
            .build();
        let wg = WeightedGraph::from_csr(&g);
        let side = greedy_graph_growing(&wg, 4, &MetisConfig::default());
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 4);
    }

    #[test]
    fn empty_graph_is_fine() {
        let wg = WeightedGraph::from_csr(&GraphBuilder::new().build());
        assert!(greedy_graph_growing(&wg, 0, &MetisConfig::default()).is_empty());
    }
}
