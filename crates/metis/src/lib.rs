//! A METIS-style multilevel k-way graph partitioner, built from scratch.
//!
//! The paper compares TLP against METIS (Karypis & Kumar, SISC 1998). METIS
//! itself is a C library; this crate reimplements its published scheme in
//! safe Rust so the comparison can run hermetically:
//!
//! 1. **Coarsening** — repeated heavy-edge matching and contraction
//!    ([`matching`], [`coarsen`]) until the graph is small;
//! 2. **Initial partitioning** — greedy graph growing on the coarsest graph
//!    ([`initial`]), best of several seeded tries;
//! 3. **Uncoarsening** — projection back through the levels with
//!    Fiduccia–Mattheyses boundary refinement at each level ([`refine`]);
//! 4. **k-way** — recursive bisection with weight-proportional side targets
//!    ([`kway`]).
//!
//! Like METIS in the paper's pipeline, the result is a *vertex* partition;
//! [`MetisPartitioner`] converts it to an edge partition with the same
//! endpoint rule used for LDG/FENNEL (`tlp_baselines::derive_edge_partition`)
//! so the RF comparison is apples-to-apples.
//!
//! # Example
//!
//! ```
//! use tlp_core::{EdgePartitioner, PartitionMetrics};
//! use tlp_graph::generators::chung_lu;
//! use tlp_metis::MetisPartitioner;
//!
//! let graph = chung_lu(400, 1_600, 2.2, 11);
//! let metis = MetisPartitioner::default();
//! let partition = metis.partition(&graph, 8)?;
//! let rf = PartitionMetrics::compute(&graph, &partition).replication_factor;
//! assert!(rf >= 1.0);
//! # Ok::<(), tlp_core::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod initial;
pub mod kway;
pub mod matching;
pub mod refine;
mod wgraph;

pub use wgraph::WeightedGraph;

use tlp_baselines::{derive_edge_partition, VertexPartition};
use tlp_core::{EdgePartition, EdgePartitioner, PartitionError};
use tlp_graph::GraphView;

/// Tuning knobs of the multilevel scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetisConfig {
    /// RNG seed for matching order and initial-partition tries.
    pub seed: u64,
    /// Stop coarsening when at most this many vertices remain.
    pub coarsen_target: usize,
    /// Allowed imbalance of a bisection side versus its target weight
    /// (METIS's default load imbalance is ~3%).
    pub epsilon: f64,
    /// Number of seeded greedy-graph-growing attempts for the initial
    /// bisection; the best cut wins.
    pub initial_tries: usize,
    /// Maximum FM refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MetisConfig {
    fn default() -> Self {
        MetisConfig {
            seed: 0,
            coarsen_target: 160,
            epsilon: 0.03,
            initial_tries: 4,
            refine_passes: 8,
        }
    }
}

/// The multilevel k-way partitioner, exposed as an [`EdgePartitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetisPartitioner {
    config: MetisConfig,
}

impl MetisPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: MetisConfig) -> Self {
        MetisPartitioner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MetisConfig {
        &self.config
    }

    /// Runs the multilevel scheme and returns the *vertex* partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitions`] when `num_partitions == 0`.
    pub fn partition_vertices<'a>(
        &self,
        graph: impl Into<GraphView<'a>>,
        num_partitions: usize,
    ) -> Result<VertexPartition, PartitionError> {
        let graph = graph.into();
        if num_partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        let wg = WeightedGraph::from_csr(graph);
        let assignment = kway::recursive_bisection(&wg, num_partitions, &self.config);
        VertexPartition::new(num_partitions, assignment)
    }
}

impl EdgePartitioner for MetisPartitioner {
    fn name(&self) -> &str {
        "METIS"
    }

    fn partition_view(
        &self,
        graph: GraphView<'_>,
        num_partitions: usize,
    ) -> Result<EdgePartition, PartitionError> {
        let vp = self.partition_vertices(graph, num_partitions)?;
        Ok(derive_edge_partition(graph, &vp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::PartitionMetrics;
    use tlp_graph::generators::{chung_lu, erdos_renyi};
    use tlp_graph::GraphBuilder;

    #[test]
    fn rejects_zero_partitions() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        assert!(MetisPartitioner::default().partition(&g, 0).is_err());
    }

    #[test]
    fn covers_all_edges() {
        let g = chung_lu(500, 2000, 2.2, 7);
        let part = MetisPartitioner::default().partition(&g, 8).unwrap();
        assert_eq!(part.edge_counts().iter().sum::<usize>(), 2000);
    }

    #[test]
    fn splits_two_cliques_perfectly() {
        let mut b = GraphBuilder::new();
        for a in 0..8u32 {
            for c in (a + 1)..8 {
                b.push_edge(a, c);
                b.push_edge(a + 8, c + 8);
            }
        }
        b.push_edge(0, 8);
        let g = b.build();
        let vp = MetisPartitioner::default()
            .partition_vertices(&g, 2)
            .unwrap();
        assert_eq!(vp.edge_cut(&g), 1, "only the bridge should be cut");
    }

    #[test]
    fn vertex_partition_is_balanced() {
        let g = erdos_renyi(600, 2400, 5);
        let vp = MetisPartitioner::default()
            .partition_vertices(&g, 4)
            .unwrap();
        let counts = vp.vertex_counts();
        let max = *counts.iter().max().unwrap();
        assert!(max <= 600 / 4 + 600 / 10, "imbalanced: {counts:?}");
    }

    #[test]
    fn beats_random_clearly() {
        let g = chung_lu(800, 4000, 2.2, 13);
        let metis = MetisPartitioner::default().partition(&g, 10).unwrap();
        let rnd = tlp_baselines::RandomPartitioner::new(0)
            .partition(&g, 10)
            .unwrap();
        let rf_m = PartitionMetrics::compute(&g, &metis).replication_factor;
        let rf_r = PartitionMetrics::compute(&g, &rnd).replication_factor;
        assert!(rf_m < rf_r, "METIS {rf_m} vs Random {rf_r}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = chung_lu(300, 1200, 2.2, 3);
        let a = MetisPartitioner::default().partition(&g, 4).unwrap();
        let b = MetisPartitioner::default().partition(&g, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_non_power_of_two_k() {
        let g = erdos_renyi(300, 1200, 9);
        for p in [3, 5, 7, 10, 15, 20] {
            let vp = MetisPartitioner::default()
                .partition_vertices(&g, p)
                .unwrap();
            let counts = vp.vertex_counts();
            assert_eq!(counts.iter().sum::<usize>(), 300);
            assert_eq!(counts.len(), p);
            assert!(
                counts.iter().all(|&c| c > 0),
                "empty side for p={p}: {counts:?}"
            );
        }
    }
}
