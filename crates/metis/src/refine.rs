//! Fiduccia–Mattheyses boundary refinement for a bisection.

use crate::{MetisConfig, WeightedGraph};
use std::collections::BinaryHeap;

/// Refines a two-sided assignment in place and returns the final cut.
///
/// Classic FM with per-pass hill climbing: vertices move one at a time in
/// best-gain order (each at most once per pass), the best prefix of the move
/// sequence is kept, and passes repeat until a pass yields no improvement or
/// `config.refine_passes` is exhausted. Moves must keep side 0's vertex
/// weight within `epsilon` of `target0` (moves that reduce an existing
/// imbalance are always allowed).
pub fn fm_refine(
    graph: &WeightedGraph,
    side: &mut [u8],
    target0: u64,
    config: &MetisConfig,
) -> u64 {
    let n = graph.num_vertices();
    debug_assert_eq!(side.len(), n);
    let total = graph.total_vertex_weight();
    let slack = (config.epsilon * target0 as f64).ceil() as u64;
    let lo = target0.saturating_sub(slack);
    let hi = (target0 + slack).min(total);

    let mut cut = graph.cut(side);
    for _ in 0..config.refine_passes.max(1) {
        let improvement = fm_pass(graph, side, lo, hi, target0);
        if improvement == 0 {
            break;
        }
        cut -= improvement;
    }
    cut
}

/// One FM pass; returns the cut improvement achieved (>= 0).
fn fm_pass(graph: &WeightedGraph, side: &mut [u8], lo: u64, hi: u64, target0: u64) -> u64 {
    let n = graph.num_vertices();
    let mut weight0: u64 = (0..n as u32)
        .filter(|&v| side[v as usize] == 0)
        .map(|v| graph.vertex_weight(v))
        .sum();

    // gain[v] = (external - internal) edge weight; positive moves cut down.
    let mut gain = vec![0i64; n];
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    for v in 0..n as u32 {
        let g = vertex_gain(graph, side, v);
        gain[v as usize] = g;
        // Seed the heap with boundary vertices only (gain > -deg means some
        // external edge exists); interior vertices enter when a neighbor
        // moves.
        if graph
            .neighbors(v)
            .iter()
            .any(|&(w, _)| side[w as usize] != side[v as usize])
        {
            heap.push((g, v));
        }
    }

    let mut moved = vec![false; n];
    let mut history: Vec<u32> = Vec::new();
    let mut cumulative: i64 = 0;
    let mut best_cumulative: i64 = 0;
    let mut best_len = 0usize;

    while let Some((g, v)) = heap.pop() {
        let vi = v as usize;
        if moved[vi] || g != gain[vi] {
            continue; // stale entry
        }
        // Balance check.
        let w = graph.vertex_weight(v);
        let new_weight0 = if side[vi] == 0 {
            weight0 - w
        } else {
            weight0 + w
        };
        let balanced_now = (lo..=hi).contains(&weight0);
        let balanced_after = (lo..=hi).contains(&new_weight0);
        let improves_balance = new_weight0.abs_diff(target0) < weight0.abs_diff(target0);
        if !(balanced_after || (!balanced_now && improves_balance)) {
            continue;
        }
        // Stop exploring hopeless tails: once a pass has made many
        // non-improving moves past the best prefix, cut it off.
        if history.len() > best_len + 64 && cumulative < best_cumulative {
            break;
        }

        // Execute the move.
        moved[vi] = true;
        side[vi] = 1 - side[vi];
        weight0 = new_weight0;
        cumulative += g;
        history.push(v);
        if cumulative > best_cumulative {
            best_cumulative = cumulative;
            best_len = history.len();
        }

        // Refresh neighbor gains (exact recompute, O(deg); the incident
        // edge just flipped between internal and external for each of them).
        for &(u, _) in graph.neighbors(v) {
            let ui = u as usize;
            if moved[ui] {
                continue;
            }
            let g = vertex_gain(graph, side, u);
            if g != gain[ui] {
                gain[ui] = g;
                heap.push((g, u));
            }
        }
    }

    // Roll back past the best prefix.
    for &v in &history[best_len..] {
        side[v as usize] = 1 - side[v as usize];
    }
    best_cumulative.max(0) as u64
}

/// The FM gain of moving `v` to the other side.
fn vertex_gain(graph: &WeightedGraph, side: &[u8], v: u32) -> i64 {
    let mut external = 0i64;
    let mut internal = 0i64;
    for &(w, wt) in graph.neighbors(v) {
        if side[w as usize] == side[v as usize] {
            internal += wt as i64;
        } else {
            external += wt as i64;
        }
    }
    external - internal
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    fn two_cliques_bridged() -> WeightedGraph {
        let mut b = GraphBuilder::new();
        for a in 0..6u32 {
            for c in (a + 1)..6 {
                b.push_edge(a, c);
                b.push_edge(a + 6, c + 6);
            }
        }
        b.push_edge(0, 6);
        WeightedGraph::from_csr(&b.build())
    }

    #[test]
    fn repairs_a_bad_bisection() {
        let wg = two_cliques_bridged();
        // Start with an awful split: odd/even across the cliques.
        let mut side: Vec<u8> = (0..12).map(|v| (v % 2) as u8).collect();
        let before = wg.cut(&side);
        let cut = fm_refine(&wg, &mut side, 6, &MetisConfig::default());
        assert!(cut < before, "no improvement: {cut} vs {before}");
        assert_eq!(cut, wg.cut(&side), "returned cut must match actual cut");
        // The optimum (cut = 1) should be reached on this easy instance.
        assert_eq!(cut, 1, "side = {side:?}");
    }

    #[test]
    fn preserves_an_already_optimal_bisection() {
        let wg = two_cliques_bridged();
        let mut side: Vec<u8> = (0..12).map(|v| u8::from(v >= 6)).collect();
        let cut = fm_refine(&wg, &mut side, 6, &MetisConfig::default());
        assert_eq!(cut, 1);
    }

    #[test]
    fn respects_balance_bounds() {
        let wg = two_cliques_bridged();
        let mut side: Vec<u8> = (0..12).map(|v| u8::from(v >= 6)).collect();
        fm_refine(&wg, &mut side, 6, &MetisConfig::default());
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((5..=7).contains(&w0), "unbalanced after refine: {w0}");
    }

    #[test]
    fn gain_computation() {
        let g = GraphBuilder::new().add_edges([(0, 1), (0, 2)]).build();
        let wg = WeightedGraph::from_csr(&g);
        let side = [0u8, 1, 0];
        // Vertex 0: one external (to 1), one internal (to 2) -> gain 0.
        assert_eq!(vertex_gain(&wg, &side, 0), 0);
        // Vertex 1: one external edge -> gain 1.
        assert_eq!(vertex_gain(&wg, &side, 1), 1);
    }
}
