//! The workspace's built-in algorithm registry.
//!
//! `tlp-core` defines the pipeline *mechanism* — [`Algorithm`],
//! [`AlgorithmRegistry`], [`RunArtifact`](tlp_core::RunArtifact) — but it
//! cannot see the algorithm crates that depend on it. This crate sits
//! above all of them (`tlp-core`, `tlp-baselines`, `tlp-metis`,
//! `tlp-store`) and registers every partitioner in the workspace under its
//! canonical name, so the CLI, the experiment harness, tests, and CI
//! scripts resolve algorithms with one [`builtin_registry`] call instead
//! of per-binary `match` wiring.
//!
//! | name     | label        | capability | notes                              |
//! |----------|--------------|------------|------------------------------------|
//! | `tlp`    | TLP          | csr-only   | honors `trials` / `record_trace`   |
//! | `tlp-r`  | TLP_R        | csr-only   | requires `tlp-r=<R>`, `R ∈ [0,1]`  |
//! | `stage1` | StageI-only  | csr-only   | ablation (`tlp-r` with `R = 1`)    |
//! | `stage2` | StageII-only | csr-only   | ablation (`tlp-r` with `R = 0`)    |
//! | `ne`     | NE           | csr-only   | neighborhood expansion             |
//! | `metis`  | METIS        | csr-only   | multilevel k-way, seeded           |
//! | `ldg`    | LDG          | csr-only   | vertex streaming, random order     |
//! | `fennel` | FENNEL       | csr-only   | vertex streaming, random order     |
//! | `greedy` | Greedy       | streaming  | PowerGraph greedy, arrival order   |
//! | `hdrf`   | HDRF         | streaming  | `λ = 1.1`, arrival order           |
//! | `dbh`    | DBH          | streaming  | needs final degrees up front       |
//! | `random` | Random       | streaming  | hash of arrival index              |
//!
//! The streaming rows run from any [`EdgeSource`](tlp_graph::EdgeSource)
//! — including strict bounded-memory disk streams — and their artifacts
//! are bit-identical to the materialized natural-order partitioners. The
//! csr-only rows materialize the source, or fail with the typed
//! [`PipelineError::NeedsRandomAccess`](tlp_core::PipelineError) when the
//! source refuses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tlp_baselines::{
    FennelPartitioner, GreedyState, HdrfState, LdgPartitioner, NePartitioner, StreamingBaseline,
    StreamingKind, StreamingPlacer, VertexOrder,
};
use tlp_core::{
    AlgoConfig, Algorithm, AlgorithmRegistry, Capability, EdgeRatioLocalPartitioner,
    MaterializedAlgorithm, ParamSpec, PipelineError, StageOneOnlyPartitioner,
    StageTwoOnlyPartitioner, TlpAlgorithm, TlpConfig,
};
use tlp_metis::{MetisConfig, MetisPartitioner};

fn tlp_config(config: &AlgoConfig) -> TlpConfig {
    TlpConfig::new().seed(config.seed)
}

fn boxed(
    algorithm: impl tlp_core::EdgePartitioner + 'static,
) -> Result<Box<dyn Algorithm>, PipelineError> {
    Ok(Box::new(MaterializedAlgorithm::new(Box::new(algorithm))))
}

fn streaming(
    kind: StreamingKind,
    config: &AlgoConfig,
) -> Result<Box<dyn Algorithm>, PipelineError> {
    Ok(Box::new(StreamingBaseline::new(kind, config)))
}

/// Builds the registry holding every partitioner in the workspace (see the
/// crate-level table for names and capabilities).
pub fn builtin_registry() -> AlgorithmRegistry {
    let mut r = AlgorithmRegistry::new();
    r.register(
        "tlp",
        "TLP",
        Capability::RandomAccess,
        ParamSpec::None,
        "two-stage local edge partitioner (the paper's method)",
        Box::new(|c| Ok(Box::new(TlpAlgorithm::new(c)))),
    );
    r.register(
        "tlp-r",
        "TLP_R",
        Capability::RandomAccess,
        ParamSpec::Required("R"),
        "fixed edge-ratio ablation; R in [0,1] sets the stage switch",
        Box::new(|c| {
            let ratio = c.param.ok_or_else(|| {
                PipelineError::Spec("tlp-r requires a ratio (tlp-r=<R>)".to_string())
            })?;
            boxed(EdgeRatioLocalPartitioner::new(tlp_config(c), ratio)?)
        }),
    );
    r.register(
        "stage1",
        "StageI-only",
        Capability::RandomAccess,
        ParamSpec::None,
        "stage I heuristic for every selection (ablation)",
        Box::new(|c| boxed(StageOneOnlyPartitioner::new(tlp_config(c)))),
    );
    r.register(
        "stage2",
        "StageII-only",
        Capability::RandomAccess,
        ParamSpec::None,
        "stage II heuristic for every selection (ablation)",
        Box::new(|c| boxed(StageTwoOnlyPartitioner::new(tlp_config(c)))),
    );
    r.register(
        "ne",
        "NE",
        Capability::RandomAccess,
        ParamSpec::None,
        "neighborhood-expansion edge partitioner",
        Box::new(|c| boxed(NePartitioner::new(c.seed))),
    );
    r.register(
        "metis",
        "METIS",
        Capability::RandomAccess,
        ParamSpec::None,
        "multilevel k-way vertex partitioner, edges derived",
        Box::new(|c| {
            boxed(MetisPartitioner::new(MetisConfig {
                seed: c.seed,
                ..MetisConfig::default()
            }))
        }),
    );
    r.register(
        "ldg",
        "LDG",
        Capability::RandomAccess,
        ParamSpec::None,
        "linear deterministic greedy vertex streaming",
        Box::new(|c| boxed(LdgPartitioner::new(VertexOrder::Random(c.seed)))),
    );
    r.register(
        "fennel",
        "FENNEL",
        Capability::RandomAccess,
        ParamSpec::None,
        "FENNEL vertex streaming, edges derived",
        Box::new(|c| boxed(FennelPartitioner::new(VertexOrder::Random(c.seed)))),
    );
    r.register(
        "greedy",
        "Greedy",
        Capability::Streaming,
        ParamSpec::None,
        "PowerGraph greedy edge placement (streaming-capable)",
        Box::new(|c| streaming(StreamingKind::Greedy, c)),
    );
    r.register(
        "hdrf",
        "HDRF",
        Capability::Streaming,
        ParamSpec::None,
        "high-degree replicated first, lambda 1.1 (streaming-capable)",
        Box::new(|c| streaming(StreamingKind::Hdrf, c)),
    );
    r.register(
        "dbh",
        "DBH",
        Capability::Streaming,
        ParamSpec::None,
        "degree-based hashing (streaming-capable)",
        Box::new(|c| streaming(StreamingKind::Dbh, c)),
    );
    r.register(
        "random",
        "Random",
        Capability::Streaming,
        ParamSpec::None,
        "uniform random edge assignment (streaming-capable)",
        Box::new(|c| streaming(StreamingKind::Random, c)),
    );
    r
}

/// Every registry name, in sorted order — the single source the CLI usage
/// text and CI smoke scripts iterate.
pub fn builtin_names() -> Vec<&'static str> {
    builtin_registry().names()
}

/// Builds an online-placement state machine from an algorithm spec string,
/// seeded from a served `(graph, partition)` pair.
///
/// This is the serving layer's counterpart to [`builtin_registry`]: the
/// same `name[=param]` spec grammar ([`AlgorithmRegistry::parse_spec`]),
/// resolved to a [`StreamingPlacer`] whose state is *as if* every edge of
/// `graph` had already been streamed with the outcomes in `partition` —
/// so `PlaceEdge` traffic continues bit-identically to an uninterrupted
/// streaming run (see `HdrfState::seeded_from`). Only the stateful
/// arrival-order heuristics can be resumed this way: `hdrf[=lambda]`
/// (default `λ = 1.1`) and `greedy`.
///
/// # Errors
///
/// [`PipelineError::Spec`] for an unsupported name or malformed
/// parameter, [`PipelineError::Partition`] if `partition` does not cover
/// `graph`'s edges.
pub fn seeded_streaming_placer<'a>(
    spec: &str,
    graph: impl Into<tlp_graph::GraphView<'a>>,
    partition: &tlp_core::EdgePartition,
) -> Result<Box<dyn StreamingPlacer + Send + Sync>, PipelineError> {
    let graph = graph.into();
    let (name, param) = AlgorithmRegistry::parse_spec(spec);
    match name {
        "hdrf" => {
            let lambda = match param {
                None => tlp_baselines::HDRF_LAMBDA,
                Some(raw) => raw.parse().map_err(|_| {
                    PipelineError::Spec(format!("hdrf lambda is not a number: {raw:?}"))
                })?,
            };
            Ok(Box::new(HdrfState::seeded_from(graph, partition, lambda)?))
        }
        "greedy" => {
            if let Some(raw) = param {
                return Err(PipelineError::Spec(format!(
                    "greedy takes no parameter, got {raw:?}"
                )));
            }
            Ok(Box::new(GreedyState::seeded_from(graph, partition)?))
        }
        other => Err(PipelineError::Spec(format!(
            "online placement supports hdrf[=lambda] and greedy, not {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_core::{EdgePartitioner, PartitionMetrics};
    use tlp_graph::generators::chung_lu;
    use tlp_graph::CsrSource;

    #[test]
    fn registry_covers_every_workspace_algorithm() {
        let names = builtin_names();
        assert_eq!(
            names,
            vec![
                "dbh", "fennel", "greedy", "hdrf", "ldg", "metis", "ne", "random", "stage1",
                "stage2", "tlp", "tlp-r",
            ]
        );
    }

    #[test]
    fn capabilities_split_streaming_from_csr_only() {
        let r = builtin_registry();
        for entry in r.entries() {
            let expected = matches!(entry.name, "greedy" | "hdrf" | "dbh" | "random");
            assert_eq!(
                entry.capability == Capability::Streaming,
                expected,
                "{} capability drifted",
                entry.name
            );
        }
    }

    #[test]
    fn registry_tlp_matches_direct_invocation() {
        let g = chung_lu(300, 1200, 2.2, 5);
        let artifact = builtin_registry()
            .run("tlp", &AlgoConfig::seeded(7), &mut CsrSource::new(&g), 6)
            .expect("run tlp");
        let direct = tlp_core::TwoStageLocalPartitioner::new(TlpConfig::new().seed(7))
            .partition(&g, 6)
            .expect("direct tlp");
        assert_eq!(artifact.partition, direct);
        assert_eq!(artifact.metrics, PartitionMetrics::compute(&g, &direct));
    }

    #[test]
    fn tlp_r_requires_and_validates_its_ratio() {
        let g = chung_lu(100, 400, 2.2, 1);
        let r = builtin_registry();
        let err = r
            .run("tlp-r", &AlgoConfig::default(), &mut CsrSource::new(&g), 4)
            .expect_err("missing ratio");
        assert!(matches!(err, PipelineError::Spec(_)));
        let artifact = r
            .run(
                "tlp-r=0.5",
                &AlgoConfig::default(),
                &mut CsrSource::new(&g),
                4,
            )
            .expect("valid ratio");
        assert!(artifact.algorithm.starts_with("TLP_R"));
        let err = r
            .run(
                "tlp-r=1.5",
                &AlgoConfig::default(),
                &mut CsrSource::new(&g),
                4,
            )
            .expect_err("out-of-range ratio");
        assert!(matches!(err, PipelineError::Partition(_)));
    }

    #[test]
    fn seeded_placer_specs_parse_and_continue() {
        let g = chung_lu(200, 800, 2.2, 3);
        let config = AlgoConfig::seeded(7);
        let artifact = StreamingBaseline::new(StreamingKind::Hdrf, &config)
            .run(&mut CsrSource::new(&g), 4)
            .expect("hdrf run");
        // The seeded placer resumes from the artifact's own partition.
        let mut placer =
            seeded_streaming_placer("hdrf", &g, &artifact.partition).expect("seeded hdrf");
        assert_eq!(placer.num_partitions(), 4);
        let pid = placer.place(0, 1);
        assert!((pid as usize) < 4);
        assert!(seeded_streaming_placer("hdrf=2.5", &g, &artifact.partition).is_ok());
        assert!(seeded_streaming_placer("greedy", &g, &artifact.partition).is_ok());
        for bad in ["hdrf=nope", "greedy=1", "dbh", "tlp", "mystery"] {
            assert!(
                matches!(
                    seeded_streaming_placer(bad, &g, &artifact.partition),
                    Err(PipelineError::Spec(_))
                ),
                "spec {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn every_algorithm_runs_from_a_csr_source() {
        let g = chung_lu(400, 1600, 2.2, 11);
        let r = builtin_registry();
        for name in builtin_names() {
            let spec = if name == "tlp-r" {
                "tlp-r=0.3".to_string()
            } else {
                name.to_string()
            };
            let artifact = r
                .run(&spec, &AlgoConfig::seeded(13), &mut CsrSource::new(&g), 8)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert_eq!(artifact.num_partitions, 8);
            assert_eq!(artifact.partition.num_edges(), g.num_edges(), "{name}");
            assert!(artifact.metrics.replication_factor >= 1.0, "{name}");
        }
    }
}
