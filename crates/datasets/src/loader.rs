//! Loading datasets: real SNAP files when available, synthetic otherwise.
//!
//! Real text edge lists are parsed **once**: the first load writes a
//! `.tlpg` binary cache next to the source file, and later loads open the
//! binary (validated against the source's length + mtime stamp) instead of
//! re-parsing text. Experiment grids that load the same dataset per cell
//! thus pay the text-parse cost once per file, not once per cell.

use crate::DatasetSpec;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use tlp_graph::{io, CsrGraph};
use tlp_store::format::SourceStamp;
use tlp_store::{write_graph, FormatVersion, StoreReader, WriteOptions};

/// Process-wide count of text edge-list parses performed by [`load`].
/// Observable via [`text_parse_count`] so tests can assert the binary
/// cache actually prevents re-parsing.
static TEXT_PARSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of stale or corrupt `.tlpg` caches [`load`] has
/// deleted. Observable via [`cache_eviction_count`].
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of text edge-list parses [`load`] has performed in this process.
pub fn text_parse_count() -> u64 {
    TEXT_PARSES.load(Ordering::Relaxed)
}

/// Number of invalid `.tlpg` caches [`load`] has evicted in this process.
pub fn cache_eviction_count() -> u64 {
    CACHE_EVICTIONS.load(Ordering::Relaxed)
}

/// Where a loaded graph came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Parsed from a real edge-list file at this path (and, when possible,
    /// a `.tlpg` binary cache was written beside it).
    Real(PathBuf),
    /// Loaded from the `.tlpg` binary cache of a real edge-list file —
    /// no text parsing happened.
    BinaryCache {
        /// The original text file the cache was derived from.
        source: PathBuf,
        /// The `.tlpg` cache file that was actually read.
        cache: PathBuf,
    },
    /// Generated synthetically (see `DESIGN.md` §4) at this scale.
    Synthetic {
        /// Instantiation scale in `(0, 1]`.
        scale_milli: u32,
    },
}

/// What happened along the way while satisfying a [`load`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// A stale or corrupt `.tlpg` cache was found and deleted during this
    /// load (it is rewritten from the fresh text parse, so the next load
    /// hits the cache again instead of re-probing the bad file forever).
    pub evicted_invalid_cache: bool,
}

/// How [`load_with`] treats a real dataset file's `.tlpg` binary cache —
/// the harness's `--format` flag maps onto this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Probe the cache, fall back to text, rewrite the cache best-effort
    /// (the [`load`] default).
    #[default]
    Auto,
    /// Always parse the text file; never probe (or evict) the cache.
    TextOnly,
    /// Require a valid, up-to-date binary cache; a real file without one
    /// is an error instead of a silent re-parse.
    BinaryOnly,
}

/// A dataset instance plus its provenance.
#[derive(Clone, Debug)]
pub struct LoadedDataset {
    /// The graph.
    pub graph: CsrGraph,
    /// Real file, its binary cache, or synthetic stand-in.
    pub provenance: Provenance,
    /// Side effects of this particular load (cache evictions).
    pub outcome: LoadOutcome,
}

/// Candidate file names for a dataset inside the data directory.
fn candidate_paths(dir: &Path, spec: &DatasetSpec) -> Vec<PathBuf> {
    vec![
        dir.join(format!("{}.txt", spec.name)),
        dir.join(format!("{}.edges", spec.name)),
        dir.join(format!("{}.txt", spec.id)),
    ]
}

/// The `.tlpg` cache path for a text dataset file.
fn cache_path(source: &Path) -> PathBuf {
    PathBuf::from(format!("{}.tlpg", source.display()))
}

/// Result of probing the binary cache beside a text dataset file.
enum CacheProbe {
    /// No cache file exists.
    Absent,
    /// A valid, up-to-date cache was read.
    Hit(CsrGraph),
    /// A cache file existed but was stale, corrupt, or unreadable; it has
    /// been deleted so later loads don't keep re-probing it.
    Evicted,
}

/// Probes the binary cache beside `source`. Never an error — on anything
/// short of a valid, up-to-date cache the caller falls back to the text
/// parse. An invalid cache file (stale stamp, corrupt payload, unreadable)
/// is deleted rather than left in place: the text parse that follows
/// rewrites it, and leaving it would make every future load pay the failed
/// probe again.
fn probe_cache(source: &Path) -> CacheProbe {
    let cache = cache_path(source);
    if !cache.is_file() {
        return CacheProbe::Absent;
    }
    let graph = (|| {
        let reader = StoreReader::open(&cache).ok()?;
        let stamp = SourceStamp::of_file(source).ok()?;
        if reader.header().source != stamp {
            return None; // text file changed since the cache was written
        }
        Some(reader.read_graph().ok()?.graph)
    })();
    match graph {
        Some(graph) => CacheProbe::Hit(graph),
        None => {
            let _ = std::fs::remove_file(&cache);
            CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            CacheProbe::Evicted
        }
    }
}

/// Loads a dataset: the real file from `data_dir` when one exists
/// (`<name>.txt`, `<name>.edges`, or `<Gk>.txt`), otherwise the synthetic
/// stand-in at `scale`.
///
/// When a real file is found, a valid sibling `.tlpg` cache short-circuits
/// the text parse; otherwise the text is parsed and the cache (re)written
/// best-effort (cache-write failures are ignored — e.g. a read-only data
/// directory just means every load parses text). A stale or corrupt cache
/// is **deleted** before the text parse, recorded in the returned
/// [`LoadOutcome`] and the process-wide [`cache_eviction_count`].
///
/// # Errors
///
/// Returns a [`tlp_graph::GraphError`] only when a real file exists but
/// fails to parse; the synthetic path is infallible.
///
/// # Example
///
/// ```
/// use tlp_datasets::{loader::load, DatasetId, DatasetSpec};
///
/// let spec = DatasetSpec::get(DatasetId::G1);
/// let ds = load(spec, "/nonexistent-dir", 0.05, 1)?;
/// assert!(ds.graph.num_edges() > 0);
/// # Ok::<(), tlp_graph::GraphError>(())
/// ```
pub fn load<P: AsRef<Path>>(
    spec: &DatasetSpec,
    data_dir: P,
    scale: f64,
    seed: u64,
) -> Result<LoadedDataset, tlp_graph::GraphError> {
    load_with(spec, data_dir, scale, seed, CachePolicy::Auto)
}

/// [`load`] with an explicit [`CachePolicy`] ([`CachePolicy::Auto`] is what
/// plain [`load`] does; the other policies let callers force the text path
/// or insist on the binary cache).
///
/// # Errors
///
/// Everything [`load`] reports, plus — under [`CachePolicy::BinaryOnly`] —
/// an [`Invalid`](tlp_graph::GraphError::Invalid) error when a real file
/// has no valid binary cache.
pub fn load_with<P: AsRef<Path>>(
    spec: &DatasetSpec,
    data_dir: P,
    scale: f64,
    seed: u64,
    policy: CachePolicy,
) -> Result<LoadedDataset, tlp_graph::GraphError> {
    for path in candidate_paths(data_dir.as_ref(), spec) {
        if !path.is_file() {
            continue;
        }
        let mut outcome = LoadOutcome::default();
        if policy != CachePolicy::TextOnly {
            match probe_cache(&path) {
                CacheProbe::Hit(graph) => {
                    return Ok(LoadedDataset {
                        graph,
                        provenance: Provenance::BinaryCache {
                            cache: cache_path(&path),
                            source: path,
                        },
                        outcome,
                    });
                }
                CacheProbe::Evicted => {
                    tlp_obs::counter("dataset.cache_evict", 1);
                    outcome.evicted_invalid_cache = true;
                }
                CacheProbe::Absent => {}
            }
            if policy == CachePolicy::BinaryOnly {
                return Err(tlp_graph::GraphError::Invalid(format!(
                    "binary-only load: no valid .tlpg cache beside {}",
                    path.display()
                )));
            }
        }
        TEXT_PARSES.fetch_add(1, Ordering::Relaxed);
        let loaded = io::read_edge_list_file(&path)?;
        if policy != CachePolicy::TextOnly {
            let options = WriteOptions {
                original_ids: Some(loaded.original_ids),
                source: SourceStamp::of_file(&path).ok(),
                version: FormatVersion::V2,
            };
            let _ = write_graph(&cache_path(&path), &loaded.graph, &options);
        }
        return Ok(LoadedDataset {
            graph: loaded.graph,
            provenance: Provenance::Real(path),
            outcome,
        });
    }
    Ok(LoadedDataset {
        graph: spec.instantiate(scale, seed),
        provenance: Provenance::Synthetic {
            scale_milli: (scale * 1000.0).round() as u32,
        },
        outcome: LoadOutcome::default(),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::DatasetId;
    use std::io::Write;
    use std::sync::Mutex;

    /// Tests asserting on the process-global parse counter must not run
    /// concurrently with other tests that call [`load`] on real files.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn counter_guard() -> std::sync::MutexGuard<'static, ()> {
        COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn falls_back_to_synthetic_when_no_file() {
        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, "/definitely/missing", 0.1, 3).unwrap();
        assert!(matches!(ds.provenance, Provenance::Synthetic { .. }));
        assert!(ds.graph.num_edges() > 0);
    }

    #[test]
    fn prefers_real_file_when_present() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "# tiny stand-in\n0 1\n1 2").unwrap();
        drop(f);

        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(ds.graph.num_edges(), 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_real_file_is_an_error() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Wiki-Vote.txt");
        std::fs::write(&path, "not an edge list\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G2);
        assert!(load(spec, &dir, 1.0, 0).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn provenance_scale_is_recorded() {
        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, "/missing", 0.25, 1).unwrap();
        assert_eq!(ds.provenance, Provenance::Synthetic { scale_milli: 250 });
    }

    #[test]
    fn second_load_hits_the_binary_cache_without_reparsing() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "# stand-in\n0 1\n1 2\n2 3\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        let first = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(first.provenance, Provenance::Real(path.clone()));
        assert!(cache_path(&path).is_file(), "cache not written");

        let parses_after_first = text_parse_count();
        let second = load(spec, &dir, 1.0, 0).unwrap();
        let third = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(
            text_parse_count(),
            parses_after_first,
            "cached loads re-parsed the text file"
        );
        assert_eq!(
            second.provenance,
            Provenance::BinaryCache {
                source: path.clone(),
                cache: cache_path(&path),
            }
        );
        assert_eq!(
            second.graph, first.graph,
            "cache returned a different graph"
        );
        assert_eq!(third.graph, first.graph);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_cache_is_ignored_and_rewritten() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        load(spec, &dir, 1.0, 0).unwrap(); // writes the cache

        // Change the source (different length => different stamp).
        std::fs::write(&path, "0 1\n1 2\n2 3\n3 4\n").unwrap();
        let before = text_parse_count();
        let evictions_before = cache_eviction_count();
        let ds = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(ds.graph.num_edges(), 4, "stale cache served old graph");
        assert_eq!(text_parse_count(), before + 1);
        assert_eq!(cache_eviction_count(), evictions_before + 1);
        assert!(ds.outcome.evicted_invalid_cache, "eviction not reported");

        // And the rewritten cache now serves the new content.
        let again = load(spec, &dir, 1.0, 0).unwrap();
        assert!(matches!(again.provenance, Provenance::BinaryCache { .. }));
        assert_eq!(again.graph, ds.graph);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_cache_degrades_to_text_parse() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-ccache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        load(spec, &dir, 1.0, 0).unwrap();
        std::fs::write(cache_path(&path), b"garbage").unwrap();

        let evictions_before = cache_eviction_count();
        let ds = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(ds.graph.num_edges(), 2);
        assert_eq!(cache_eviction_count(), evictions_before + 1);
        assert!(ds.outcome.evicted_invalid_cache, "eviction not reported");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evicted_cache_is_rewritten_not_reprobed() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        load(spec, &dir, 1.0, 0).unwrap();
        std::fs::write(cache_path(&path), b"garbage").unwrap();

        // The load that trips over the garbage evicts and rewrites it...
        let evictions_before = cache_eviction_count();
        let ds = load(spec, &dir, 1.0, 0).unwrap();
        assert!(ds.outcome.evicted_invalid_cache);
        assert!(
            cache_path(&path).is_file(),
            "cache not rewritten after eviction"
        );

        // ...so the next load is a clean cache hit, with no second eviction.
        let next = load(spec, &dir, 1.0, 0).unwrap();
        assert!(matches!(next.provenance, Provenance::BinaryCache { .. }));
        assert!(!next.outcome.evicted_invalid_cache);
        assert_eq!(cache_eviction_count(), evictions_before + 1);
        assert_eq!(next.graph, ds.graph);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn text_only_policy_never_touches_the_cache() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-textonly-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        let before = text_parse_count();
        let ds = load_with(spec, &dir, 1.0, 0, CachePolicy::TextOnly).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(text_parse_count(), before + 1);
        assert!(!cache_path(&path).is_file(), "text-only load wrote a cache");

        // Even with a garbage cache present, text-only neither reads nor
        // evicts it.
        std::fs::write(cache_path(&path), b"garbage").unwrap();
        let evictions = cache_eviction_count();
        let ds = load_with(spec, &dir, 1.0, 0, CachePolicy::TextOnly).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(cache_eviction_count(), evictions);
        assert!(cache_path(&path).is_file());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_only_policy_requires_a_valid_cache() {
        let _guard = counter_guard();
        let dir = std::env::temp_dir().join(format!("tlp-loader-binonly-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G1);
        // No cache yet: binary-only refuses instead of silently parsing.
        assert!(load_with(spec, &dir, 1.0, 0, CachePolicy::BinaryOnly).is_err());

        // After an auto load writes the cache, binary-only serves it.
        load(spec, &dir, 1.0, 0).unwrap();
        let ds = load_with(spec, &dir, 1.0, 0, CachePolicy::BinaryOnly).unwrap();
        assert!(matches!(ds.provenance, Provenance::BinaryCache { .. }));

        // Synthetic fallback still works when no real file exists.
        let ds = load_with(spec, "/definitely/missing", 0.1, 3, CachePolicy::BinaryOnly).unwrap();
        assert!(matches!(ds.provenance, Provenance::Synthetic { .. }));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
