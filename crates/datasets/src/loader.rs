//! Loading datasets: real SNAP files when available, synthetic otherwise.

use crate::DatasetSpec;
use std::path::{Path, PathBuf};
use tlp_graph::{io, CsrGraph};

/// Where a loaded graph came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Parsed from a real edge-list file at this path.
    Real(PathBuf),
    /// Generated synthetically (see `DESIGN.md` §4) at this scale.
    Synthetic {
        /// Instantiation scale in `(0, 1]`.
        scale_milli: u32,
    },
}

/// A dataset instance plus its provenance.
#[derive(Clone, Debug)]
pub struct LoadedDataset {
    /// The graph.
    pub graph: CsrGraph,
    /// Real file or synthetic stand-in.
    pub provenance: Provenance,
}

/// Candidate file names for a dataset inside the data directory.
fn candidate_paths(dir: &Path, spec: &DatasetSpec) -> Vec<PathBuf> {
    vec![
        dir.join(format!("{}.txt", spec.name)),
        dir.join(format!("{}.edges", spec.name)),
        dir.join(format!("{}.txt", spec.id)),
    ]
}

/// Loads a dataset: the real file from `data_dir` when one exists
/// (`<name>.txt`, `<name>.edges`, or `<Gk>.txt`), otherwise the synthetic
/// stand-in at `scale`.
///
/// # Errors
///
/// Returns a [`tlp_graph::GraphError`] only when a real file exists but
/// fails to parse; the synthetic path is infallible.
///
/// # Example
///
/// ```
/// use tlp_datasets::{loader::load, DatasetId, DatasetSpec};
///
/// let spec = DatasetSpec::get(DatasetId::G1);
/// let ds = load(spec, "/nonexistent-dir", 0.05, 1)?;
/// assert!(ds.graph.num_edges() > 0);
/// # Ok::<(), tlp_graph::GraphError>(())
/// ```
pub fn load<P: AsRef<Path>>(
    spec: &DatasetSpec,
    data_dir: P,
    scale: f64,
    seed: u64,
) -> Result<LoadedDataset, tlp_graph::GraphError> {
    for path in candidate_paths(data_dir.as_ref(), spec) {
        if path.is_file() {
            let loaded = io::read_edge_list_file(&path)?;
            return Ok(LoadedDataset {
                graph: loaded.graph,
                provenance: Provenance::Real(path),
            });
        }
    }
    Ok(LoadedDataset {
        graph: spec.instantiate(scale, seed),
        provenance: Provenance::Synthetic {
            scale_milli: (scale * 1000.0).round() as u32,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;
    use std::io::Write;

    #[test]
    fn falls_back_to_synthetic_when_no_file() {
        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, "/definitely/missing", 0.1, 3).unwrap();
        assert!(matches!(ds.provenance, Provenance::Synthetic { .. }));
        assert!(ds.graph.num_edges() > 0);
    }

    #[test]
    fn prefers_real_file_when_present() {
        let dir = std::env::temp_dir().join(format!("tlp-loader-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("email-Eu-core.txt");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "# tiny stand-in\n0 1\n1 2").unwrap();
        drop(f);

        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, &dir, 1.0, 0).unwrap();
        assert_eq!(ds.provenance, Provenance::Real(path.clone()));
        assert_eq!(ds.graph.num_edges(), 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_real_file_is_an_error() {
        let dir = std::env::temp_dir().join(format!("tlp-loader-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Wiki-Vote.txt");
        std::fs::write(&path, "not an edge list\n").unwrap();

        let spec = DatasetSpec::get(DatasetId::G2);
        assert!(load(spec, &dir, 1.0, 0).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn provenance_scale_is_recorded() {
        let spec = DatasetSpec::get(DatasetId::G1);
        let ds = load(spec, "/missing", 0.25, 1).unwrap();
        assert_eq!(ds.provenance, Provenance::Synthetic { scale_milli: 250 });
    }
}
