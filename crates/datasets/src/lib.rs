//! The nine evaluation datasets of the TLP paper (Table III).
//!
//! The paper evaluates on eight SNAP graphs (G1–G8) plus the huapu
//! genealogy graph (G9). Those files are not redistributable with this
//! repository, so each dataset is described by a [`DatasetSpec`] that can be
//! **instantiated synthetically** — a seeded generator matched to the real
//! graph's vertex count, edge count, and degree-distribution family — or
//! **loaded from disk** when the real SNAP file is present under a data
//! directory (see [`loader`]). The substitution rationale lives in
//! `DESIGN.md` §4.
//!
//! # Example
//!
//! ```
//! use tlp_datasets::{DatasetId, DatasetSpec};
//!
//! let spec = DatasetSpec::get(DatasetId::G1);
//! assert_eq!(spec.name, "email-Eu-core");
//! // A 10% scale instance for quick tests:
//! let g = spec.instantiate(0.1, 42);
//! assert!(g.num_vertices() >= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod catalog;
pub mod loader;

pub use catalog::{DatasetId, DatasetSpec, GraphFamily};
