//! Table III: the nine evaluation graphs and their synthetic stand-ins.

use std::fmt;
use tlp_graph::generators::{genealogy, power_law_community};
use tlp_graph::CsrGraph;

/// Identifier of an evaluation dataset (G1–G9 in the paper's notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DatasetId {
    G1,
    G2,
    G3,
    G4,
    G5,
    G6,
    G7,
    G8,
    G9,
}

impl DatasetId {
    /// All nine datasets, in the paper's order.
    pub const ALL: [DatasetId; 9] = [
        DatasetId::G1,
        DatasetId::G2,
        DatasetId::G3,
        DatasetId::G4,
        DatasetId::G5,
        DatasetId::G6,
        DatasetId::G7,
        DatasetId::G8,
        DatasetId::G9,
    ];
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", *self as usize + 1)
    }
}

/// The structural family a synthetic stand-in is drawn from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphFamily {
    /// Heavy-tailed social/communication network with planted community
    /// structure (degree-corrected, LFR-style).
    PowerLaw {
        /// Target power-law exponent of the degree distribution.
        gamma: f64,
        /// Number of planted communities (email departments, discussion
        /// groups, ...).
        communities: usize,
        /// Probability that an edge leaves its community.
        mixing: f64,
    },
    /// Near-tree genealogy network (the huapu system).
    Genealogy,
}

/// One row of Table III plus everything needed to reproduce the graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Paper notation (G1–G9).
    pub id: DatasetId,
    /// Dataset name as listed in Table III.
    pub name: &'static str,
    /// `|V(G)|` of the real graph.
    pub vertices: usize,
    /// `|E(G)|` of the real graph.
    pub edges: usize,
    /// Degree-distribution family of the synthetic stand-in.
    pub family: GraphFamily,
    /// Default instantiation scale used by the experiment harness: 1.0 for
    /// graphs that run comfortably at full size, smaller for G9 (the full
    /// 7M-edge huapu graph makes parameter sweeps take hours, not minutes).
    pub default_scale: f64,
}

impl DatasetSpec {
    /// Looks up the spec for a dataset.
    pub fn get(id: DatasetId) -> &'static DatasetSpec {
        &CATALOG[id as usize]
    }

    /// All nine specs, in the paper's order.
    pub fn all() -> &'static [DatasetSpec; 9] {
        &CATALOG
    }

    /// `|V| + |E|` (Table III's size column).
    pub fn total_size(&self) -> usize {
        self.vertices + self.edges
    }

    /// Vertex/edge counts after applying `scale` (both scale linearly, so
    /// average degree is preserved).
    pub fn scaled_counts(&self, scale: f64) -> (usize, usize) {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.vertices as f64 * scale).round() as usize).max(16);
        let mut m = ((self.edges as f64 * scale).round() as usize).max(16);
        if matches!(self.family, GraphFamily::Genealogy) {
            m = m.max(n - 1);
        }
        (n, m)
    }

    /// Generates the synthetic stand-in at the given scale.
    ///
    /// Deterministic per `(scale, seed)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn instantiate(&self, scale: f64, seed: u64) -> CsrGraph {
        let (n, m) = self.scaled_counts(scale);
        match self.family {
            GraphFamily::PowerLaw {
                gamma,
                communities,
                mixing,
            } => {
                // Scale the community count with the graph so community
                // sizes stay constant.
                let c = ((communities as f64 * scale).round() as usize).clamp(2, n);
                power_law_community(n, m, gamma, c, mixing, seed)
            }
            GraphFamily::Genealogy => genealogy(n, m, seed),
        }
    }
}

/// Table III of the paper. The G8 row's vertex count is printed as "77,36"
/// there — an obvious typo; we use Slashdot0811's published 77,360.
/// Degree exponents are typical published estimates for each network class
/// (email/voting/collaboration networks: ~2.0–2.5).
static CATALOG: [DatasetSpec; 9] = [
    DatasetSpec {
        id: DatasetId::G1,
        name: "email-Eu-core",
        vertices: 1_005,
        edges: 25_571,
        family: GraphFamily::PowerLaw {
            gamma: 1.9,
            communities: 42,
            mixing: 0.25,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G2,
        name: "Wiki-Vote",
        vertices: 7_115,
        edges: 103_689,
        family: GraphFamily::PowerLaw {
            gamma: 2.0,
            communities: 40,
            mixing: 0.35,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G3,
        name: "CA-HepPh",
        vertices: 12_008,
        edges: 118_521,
        family: GraphFamily::PowerLaw {
            gamma: 2.2,
            communities: 120,
            mixing: 0.15,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G4,
        name: "Email-Enron",
        vertices: 36_692,
        edges: 183_831,
        family: GraphFamily::PowerLaw {
            gamma: 2.1,
            communities: 180,
            mixing: 0.25,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G5,
        name: "Slashdot081106",
        vertices: 77_357,
        edges: 516_575,
        family: GraphFamily::PowerLaw {
            gamma: 2.2,
            communities: 350,
            mixing: 0.3,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G6,
        name: "soc_Epinions1",
        vertices: 75_879,
        edges: 508_837,
        family: GraphFamily::PowerLaw {
            gamma: 2.0,
            communities: 350,
            mixing: 0.3,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G7,
        name: "Slashdot090221",
        vertices: 82_144,
        edges: 549_202,
        family: GraphFamily::PowerLaw {
            gamma: 2.2,
            communities: 380,
            mixing: 0.3,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G8,
        name: "Slashdot0811",
        vertices: 77_360,
        edges: 905_468,
        family: GraphFamily::PowerLaw {
            gamma: 2.1,
            communities: 350,
            mixing: 0.3,
        },
        default_scale: 1.0,
    },
    DatasetSpec {
        id: DatasetId::G9,
        name: "huapu",
        vertices: 4_309_321,
        edges: 7_030_787,
        family: GraphFamily::Genealogy,
        default_scale: 1.0 / 16.0,
    },
];

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::degree::DegreeStats;

    #[test]
    fn catalog_matches_table_iii() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].vertices, 1_005);
        assert_eq!(all[0].edges, 25_571);
        assert_eq!(all[0].total_size(), 26_576);
        assert_eq!(all[8].vertices, 4_309_321);
        assert_eq!(all[8].total_size(), 11_340_108);
        for (i, spec) in all.iter().enumerate() {
            assert_eq!(spec.id as usize, i);
        }
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(DatasetId::G1.to_string(), "G1");
        assert_eq!(DatasetId::G9.to_string(), "G9");
    }

    #[test]
    fn scaled_counts_preserve_average_degree() {
        let spec = DatasetSpec::get(DatasetId::G5);
        let (n, m) = spec.scaled_counts(0.25);
        let full_deg = 2.0 * spec.edges as f64 / spec.vertices as f64;
        let scaled_deg = 2.0 * m as f64 / n as f64;
        assert!((full_deg - scaled_deg).abs() / full_deg < 0.01);
    }

    #[test]
    fn instantiation_hits_requested_counts() {
        let spec = DatasetSpec::get(DatasetId::G1);
        let g = spec.instantiate(1.0, 7);
        assert_eq!(g.num_vertices(), 1_005);
        assert_eq!(g.num_edges(), 25_571);
    }

    #[test]
    fn power_law_instances_have_heavy_tails() {
        let g = DatasetSpec::get(DatasetId::G2).instantiate(0.25, 3);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.max as f64 > 5.0 * s.mean);
    }

    #[test]
    fn genealogy_instance_is_sparse_and_connected_enough() {
        let g = DatasetSpec::get(DatasetId::G9).instantiate(0.002, 5);
        let s = DegreeStats::of(&g).unwrap();
        assert!(s.mean < 4.5, "huapu stand-in too dense: {}", s.mean);
        let cc = tlp_graph::traversal::ConnectedComponents::find(&g);
        assert_eq!(cc.count(), 1);
    }

    #[test]
    fn deterministic_instantiation() {
        let spec = DatasetSpec::get(DatasetId::G3);
        assert_eq!(spec.instantiate(0.1, 11), spec.instantiate(0.1, 11));
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        DatasetSpec::get(DatasetId::G1).scaled_counts(0.0);
    }
}
