//! Reading `.tlpg` binary graph files (v1 and v2).

use crate::faults::FaultFile;
use crate::format::{
    read_exact_or_truncated, tag_name, Header, SectionFrame, SectionHasher, CHUNK_EDGES,
    HEADER_LEN, SECTION_FRAME_LEN, TAG_ADJ_EDGE, TAG_ADJ_VERTEX, TAG_DEGREES, TAG_EDGES,
    TAG_OFFSETS, TAG_ORIGINAL_IDS, VERSION,
};
use crate::StoreError;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use tlp_graph::{CsrGraph, Edge, VertexId};

/// A fully loaded binary store: the graph plus optional original ids.
#[derive(Clone, Debug)]
pub struct StoredGraph {
    /// The reconstructed graph, bit-identical to the one written.
    pub graph: CsrGraph,
    /// `original_ids[v]` = id of `v` in the text source, when persisted.
    pub original_ids: Option<Vec<u64>>,
}

/// Section location inside an open store file.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SectionAt {
    pub(crate) frame: SectionFrame,
    pub(crate) payload_pos: u64,
}

/// Per-version section table of an open store.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Layout {
    /// v1: per-vertex degrees + canonical edge pairs.
    V1 {
        degrees: SectionAt,
        edges: SectionAt,
    },
    /// v2: the CSR arrays verbatim, then the canonical edge pairs.
    V2 {
        offsets: SectionAt,
        adj_vertex: SectionAt,
        adj_edge: SectionAt,
        edges: SectionAt,
    },
}

/// Descriptive metadata for one section of an open store, as reported by
/// [`StoreReader::section_infos`] (e.g. for `tlp-convert info`).
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// Human-readable section name (`"DEGS"`, `"OFFS"`, ...).
    pub name: &'static str,
    /// Payload length in bytes (excludes the 24-byte frame).
    pub payload_len: u64,
    /// Declared payload checksum.
    pub checksum: u64,
    /// Byte offset of the payload in the file.
    pub payload_pos: u64,
}

/// An opened (header-validated) binary graph store.
///
/// Opening validates the magic, version, header checksum, section framing,
/// and that the file is long enough for every declared section — so a
/// truncated file fails here with a typed error, not mid-read. Both format
/// versions are supported: v1 files carry degrees + edge pairs and are
/// decoded into a fresh [`CsrGraph`]; v2 files additionally embed the CSR
/// arrays (the zero-copy open path lives in [`crate::GraphBuf`], which
/// lends them without rebuilding — this reader's [`read_graph`] works on
/// both versions via the shared edge payload).
///
/// [`read_graph`]: StoreReader::read_graph
///
/// # Example
///
/// ```no_run
/// use tlp_store::StoreReader;
///
/// let reader = StoreReader::open("graph.tlpg".as_ref())?;
/// let stored = reader.read_graph()?;
/// println!("{} edges", stored.graph.num_edges());
/// # Ok::<(), tlp_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct StoreReader {
    path: PathBuf,
    header: Header,
    pub(crate) layout: Layout,
    pub(crate) original_ids: Option<SectionAt>,
}

impl StoreReader {
    /// Opens and validates a store file's header and section framing.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::ChecksumMismatch`] (header), [`StoreError::Truncated`],
    /// or [`StoreError::Corrupt`] for structural defects.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        let file = FaultFile::open(path).map_err(StoreError::Io)?;
        let file_len = file.metadata().map_err(StoreError::Io)?.len();
        let mut reader = BufReader::new(file);

        let mut header_bytes = [0u8; HEADER_LEN];
        read_exact_or_truncated(&mut reader, &mut header_bytes, "header")?;
        let header = Header::decode(&header_bytes)?;

        let n = header.num_vertices;
        let m = header.num_edges;
        let mut pos = HEADER_LEN as u64;
        let mut section = |tag: u32,
                           what: &'static str,
                           expected_len: u64|
         -> Result<SectionAt, StoreError> {
            reader.seek(SeekFrom::Start(pos)).map_err(StoreError::Io)?;
            let frame = SectionFrame::read_expecting(&mut reader, tag, what)?;
            if frame.payload_len != expected_len {
                return Err(StoreError::Corrupt(format!(
                    "{what} section declares {} bytes, expected {expected_len}",
                    frame.payload_len
                )));
            }
            let payload_pos = pos + SECTION_FRAME_LEN as u64;
            pos = payload_pos + frame.payload_len;
            if pos > file_len {
                return Err(StoreError::Truncated { what });
            }
            Ok(SectionAt { frame, payload_pos })
        };

        let layout = if header.version == VERSION {
            let degrees = section(TAG_DEGREES, "degrees", 4 * n)?;
            let edges = section(TAG_EDGES, "edges", 8 * m)?;
            Layout::V1 { degrees, edges }
        } else {
            let offsets = section(TAG_OFFSETS, "offsets", 8 * (n + 1))?;
            let adj_vertex = section(TAG_ADJ_VERTEX, "adjacency vertices", 8 * m)?;
            let adj_edge = section(TAG_ADJ_EDGE, "adjacency edges", 8 * m)?;
            let edges = section(TAG_EDGES, "edges", 8 * m)?;
            Layout::V2 {
                offsets,
                adj_vertex,
                adj_edge,
                edges,
            }
        };
        let original_ids = if header.has_original_ids {
            Some(section(TAG_ORIGINAL_IDS, "original ids", 8 * n)?)
        } else {
            None
        };

        Ok(StoreReader {
            path: path.to_path_buf(),
            header,
            layout,
            original_ids,
        })
    }

    /// The decoded file header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The on-disk format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.header.version
    }

    /// The path this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Name, size, and checksum of every section, in file order.
    pub fn section_infos(&self) -> Vec<SectionInfo> {
        let info = |at: &SectionAt| SectionInfo {
            name: tag_name(at.frame.tag),
            payload_len: at.frame.payload_len,
            checksum: at.frame.checksum,
            payload_pos: at.payload_pos,
        };
        let mut out = match &self.layout {
            Layout::V1 { degrees, edges } => vec![info(degrees), info(edges)],
            Layout::V2 {
                offsets,
                adj_vertex,
                adj_edge,
                edges,
            } => vec![info(offsets), info(adj_vertex), info(adj_edge), info(edges)],
        };
        if let Some(oids) = &self.original_ids {
            out.push(info(oids));
        }
        out
    }

    /// A fresh section hasher matching this file's format version.
    pub(crate) fn section_hasher(&self) -> SectionHasher {
        SectionHasher::for_version(self.header.version)
    }

    /// Reads and checksums per-vertex degrees: the `DEGS` section of a v1
    /// file, or consecutive differences of the `OFFS` array of a v2 file.
    ///
    /// # Errors
    ///
    /// [`StoreError::ChecksumMismatch`] or I/O/truncation errors.
    pub fn read_degrees(&self) -> Result<Vec<u32>, StoreError> {
        match &self.layout {
            Layout::V1 { degrees, .. } => {
                let mut reader = self.reader_at(degrees.payload_pos)?;
                let n = self.header.num_vertices as usize;
                let mut out = Vec::with_capacity(n);
                let mut checksum = self.section_hasher();
                let mut remaining = n;
                let mut buf = vec![0u8; 4 * CHUNK_EDGES.min(n.max(1))];
                while remaining > 0 {
                    let take = remaining.min(CHUNK_EDGES);
                    let bytes = &mut buf[..4 * take];
                    read_exact_or_truncated(&mut reader, bytes, "degrees")?;
                    checksum.update(bytes);
                    for chunk in bytes.chunks_exact(4) {
                        out.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
                    }
                    remaining -= take;
                }
                self.check(&degrees.frame, checksum.value(), "degrees")?;
                Ok(out)
            }
            Layout::V2 { offsets, .. } => {
                let mut reader = self.reader_at(offsets.payload_pos)?;
                let n = self.header.num_vertices as usize;
                let mut out = Vec::with_capacity(n);
                let mut checksum = self.section_hasher();
                let mut remaining = n + 1;
                let mut prev: Option<u64> = None;
                let mut buf = vec![0u8; 8 * CHUNK_EDGES.min(n + 1)];
                while remaining > 0 {
                    let take = remaining.min(CHUNK_EDGES);
                    let bytes = &mut buf[..8 * take];
                    read_exact_or_truncated(&mut reader, bytes, "offsets")?;
                    checksum.update(bytes);
                    for chunk in bytes.chunks_exact(8) {
                        let off = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                        if let Some(p) = prev {
                            let degree = off.checked_sub(p).ok_or_else(|| {
                                StoreError::Corrupt(format!(
                                    "offsets section not monotone: {p} then {off}"
                                ))
                            })?;
                            out.push(degree as u32);
                        }
                        prev = Some(off);
                    }
                    remaining -= take;
                }
                self.check(&offsets.frame, checksum.value(), "offsets")?;
                Ok(out)
            }
        }
    }

    /// Reads the whole store back into memory: edge blocks are read in
    /// bounded chunks, validated (canonical order, endpoint bounds, no
    /// self-loops), checksummed, cross-checked against the per-vertex
    /// degrees, and reassembled into a [`CsrGraph`] bit-identical to the
    /// one written. Works on both format versions; for the zero-copy v2
    /// open path see [`crate::GraphBuf`].
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] variant matching the defect found.
    pub fn read_graph(&self) -> Result<StoredGraph, StoreError> {
        let n = self.header.num_vertices as usize;
        let m = self.header.num_edges as usize;
        let stored_degrees = self.read_degrees()?;

        let edges_at = self.edges_at();
        let mut reader = self.reader_at(edges_at.payload_pos)?;
        let mut edges: Vec<Edge> = Vec::with_capacity(m);
        let mut checksum = self.section_hasher();
        let mut remaining = m;
        let mut buf = vec![0u8; 8 * CHUNK_EDGES.min(m.max(1))];
        while remaining > 0 {
            let take = remaining.min(CHUNK_EDGES);
            let bytes = &mut buf[..8 * take];
            read_exact_or_truncated(&mut reader, bytes, "edges")?;
            checksum.update(bytes);
            // Validation (canonical form, bounds, strict order) happens once,
            // in `from_sorted_canonical_edges` below, after the checksum gate.
            for pair in bytes.chunks_exact(8) {
                let u = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
                let v = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
                edges.push(Edge::new(u, v));
            }
            remaining -= take;
        }
        self.check(&edges_at.frame, checksum.value(), "edges")?;

        let graph = CsrGraph::from_sorted_canonical_edges(n, edges)?;
        for (v, &stored) in stored_degrees.iter().enumerate() {
            let actual = graph.degree(v as VertexId) as u32;
            if actual != stored {
                return Err(StoreError::Corrupt(format!(
                    "degree section disagrees with edge blocks at vertex {v}: \
                     stored {stored}, edges imply {actual}"
                )));
            }
        }

        let original_ids = self.read_original_ids()?;

        Ok(StoredGraph {
            graph,
            original_ids,
        })
    }

    /// Reads and checksums the optional original-ids section.
    ///
    /// # Errors
    ///
    /// [`StoreError::ChecksumMismatch`] or I/O/truncation errors.
    pub(crate) fn read_original_ids(&self) -> Result<Option<Vec<u64>>, StoreError> {
        let n = self.header.num_vertices as usize;
        match &self.original_ids {
            None => Ok(None),
            Some(section) => {
                let mut reader = self.reader_at(section.payload_pos)?;
                let mut ids = Vec::with_capacity(n);
                let mut checksum = self.section_hasher();
                let mut remaining = n;
                let mut buf = vec![0u8; 8 * CHUNK_EDGES.min(n.max(1))];
                while remaining > 0 {
                    let take = remaining.min(CHUNK_EDGES);
                    let bytes = &mut buf[..8 * take];
                    read_exact_or_truncated(&mut reader, bytes, "original ids")?;
                    checksum.update(bytes);
                    for chunk in bytes.chunks_exact(8) {
                        ids.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
                    }
                    remaining -= take;
                }
                self.check(&section.frame, checksum.value(), "original ids")?;
                Ok(Some(ids))
            }
        }
    }

    /// A fresh buffered reader positioned at `pos` in the store file.
    pub(crate) fn reader_at(&self, pos: u64) -> Result<BufReader<FaultFile>, StoreError> {
        let mut reader = BufReader::new(FaultFile::open(&self.path).map_err(StoreError::Io)?);
        reader.seek(SeekFrom::Start(pos)).map_err(StoreError::Io)?;
        Ok(reader)
    }

    /// Location of the canonical edge-pair section (shared by v1 and v2).
    pub(crate) fn edges_at(&self) -> SectionAt {
        match self.layout {
            Layout::V1 { edges, .. } => edges,
            Layout::V2 { edges, .. } => edges,
        }
    }

    /// Byte offset of the edge payload (for streaming readers).
    pub(crate) fn edges_payload_pos(&self) -> u64 {
        self.edges_at().payload_pos
    }

    /// Declared checksum of the edge payload (for streaming readers).
    pub(crate) fn edges_checksum(&self) -> u64 {
        self.edges_at().frame.checksum
    }

    pub(crate) fn check(
        &self,
        frame: &SectionFrame,
        actual: u64,
        section: &'static str,
    ) -> Result<(), StoreError> {
        if frame.checksum != actual {
            return Err(StoreError::ChecksumMismatch {
                section,
                expected: frame.checksum,
                actual,
            });
        }
        Ok(())
    }
}

/// Decodes and validates one edge against canonical-form invariants.
pub(crate) fn decode_edge(
    u: u32,
    v: u32,
    num_vertices: usize,
    prev: Option<Edge>,
) -> Result<Edge, StoreError> {
    if u > v {
        return Err(StoreError::Corrupt(format!(
            "edge ({u}, {v}) is not in canonical (u <= v) form"
        )));
    }
    if u == v {
        return Err(StoreError::Corrupt(format!(
            "self-loop ({u}, {v}) in edge block"
        )));
    }
    if v as usize >= num_vertices {
        return Err(StoreError::Corrupt(format!(
            "edge ({u}, {v}) endpoint out of range (num_vertices = {num_vertices})"
        )));
    }
    let edge = Edge::new(u, v);
    if let Some(p) = prev {
        if p >= edge {
            return Err(StoreError::Corrupt(format!(
                "edge block out of order: {p:?} then {edge:?}"
            )));
        }
    }
    Ok(edge)
}
