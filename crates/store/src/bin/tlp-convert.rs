//! Convert graphs between text edge lists and the `.tlpg` binary format.
//!
//! ```text
//! tlp-convert to-bin <input.txt> <output.tlpg>    text edge list -> binary (v2)
//! tlp-convert to-text <input.tlpg> <output.txt>   binary -> text edge list
//! tlp-convert upgrade <input.tlpg>                rewrite a v1 file as v2 in place
//! tlp-convert info <input.tlpg>                   print header and section summary
//! ```

use std::path::Path;
use std::process::ExitCode;
use tlp_store::format::SourceStamp;
use tlp_store::{write_graph, FormatVersion, StoreReader, WriteOptions, VERSION_V2};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["to-bin", input, output] => to_bin(Path::new(input), Path::new(output)),
        ["to-text", input, output] => to_text(Path::new(input), Path::new(output)),
        ["upgrade", input] => upgrade(Path::new(input)),
        ["info", input] => info(Path::new(input)),
        _ => {
            eprintln!(
                "usage: tlp-convert to-bin <input.txt> <output.tlpg>\n       \
                 tlp-convert to-text <input.tlpg> <output.txt>\n       \
                 tlp-convert upgrade <input.tlpg>\n       \
                 tlp-convert info <input.tlpg>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tlp-convert: {message}");
            ExitCode::FAILURE
        }
    }
}

fn to_bin(input: &Path, output: &Path) -> Result<(), String> {
    let loaded = tlp_graph::io::read_edge_list_file(input)
        .map_err(|e| format!("reading {}: {e}", input.display()))?;
    let options = WriteOptions {
        original_ids: Some(loaded.original_ids),
        source: SourceStamp::of_file(input).ok(),
        version: FormatVersion::V2,
    };
    write_graph(output, &loaded.graph, &options)
        .map_err(|e| format!("writing {}: {e}", output.display()))?;
    println!(
        "wrote {} ({} vertices, {} edges, format v{VERSION_V2})",
        output.display(),
        loaded.graph.num_vertices(),
        loaded.graph.num_edges()
    );
    Ok(())
}

fn to_text(input: &Path, output: &Path) -> Result<(), String> {
    let reader =
        StoreReader::open(input).map_err(|e| format!("opening {}: {e}", input.display()))?;
    let stored = reader
        .read_graph()
        .map_err(|e| format!("reading {}: {e}", input.display()))?;
    let file =
        std::fs::File::create(output).map_err(|e| format!("creating {}: {e}", output.display()))?;
    tlp_graph::io::write_edge_list(&stored.graph, std::io::BufWriter::new(file))
        .map_err(|e| format!("writing {}: {e}", output.display()))?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        output.display(),
        stored.graph.num_vertices(),
        stored.graph.num_edges()
    );
    Ok(())
}

/// Rewrites a v1 file in the v2 (embedded-CSR) layout, in place. The write
/// goes through the store's atomic temp-file + rename path, so a crash
/// mid-upgrade leaves the original file intact. Already-v2 files are left
/// untouched.
fn upgrade(input: &Path) -> Result<(), String> {
    let reader =
        StoreReader::open(input).map_err(|e| format!("opening {}: {e}", input.display()))?;
    let version = reader.version();
    if version >= VERSION_V2 {
        println!("{} is already format v{version}", input.display());
        return Ok(());
    }
    let source = reader.header().source;
    let stored = reader
        .read_graph()
        .map_err(|e| format!("reading {}: {e}", input.display()))?;
    let options = WriteOptions {
        original_ids: stored.original_ids,
        source: (source != SourceStamp::UNKNOWN).then_some(source),
        version: FormatVersion::V2,
    };
    write_graph(input, &stored.graph, &options)
        .map_err(|e| format!("rewriting {}: {e}", input.display()))?;
    println!(
        "upgraded {} to format v{VERSION_V2} ({} vertices, {} edges)",
        input.display(),
        stored.graph.num_vertices(),
        stored.graph.num_edges()
    );
    Ok(())
}

fn info(input: &Path) -> Result<(), String> {
    let reader =
        StoreReader::open(input).map_err(|e| format!("opening {}: {e}", input.display()))?;
    let header = reader.header();
    println!("file:         {}", input.display());
    println!("format:       tlpg v{}", reader.version());
    println!("vertices:     {}", header.num_vertices);
    println!("edges:        {}", header.num_edges);
    println!(
        "original ids: {}",
        if header.has_original_ids { "yes" } else { "no" }
    );
    let source = header.source;
    if source == SourceStamp::UNKNOWN {
        println!("source:       unknown");
    } else {
        println!("source:       len={} mtime={}", source.len, source.mtime);
    }
    println!("sections:");
    for section in reader.section_infos() {
        println!(
            "  {:<4} offset={:<10} len={:<12} checksum={:016x}",
            section.name, section.payload_pos, section.payload_len, section.checksum
        );
    }
    Ok(())
}
