//! Placement write-ahead log: fsync-on-ack durability for served writes.
//!
//! A partition store directory may carry a `wal.tlpw` file recording every
//! online placement acknowledged since the last flush. The format is an
//! 8-byte magic followed by fixed-size records:
//!
//! ```text
//! +--------+--------+------------+---------------------+
//! | u: u32 | v: u32 | pid: u32   | checksum: u64 (FNV) |
//! +--------+--------+------------+---------------------+
//! ```
//!
//! all little-endian, the checksum covering the 12 payload bytes before
//! it. Appends go through [`FaultFile`] and are fsynced before the caller
//! acknowledges, so an acknowledged placement survives a SIGKILL at any
//! I/O operation.
//!
//! The reader mirrors the JSONL observer's torn-tail contract: a partial
//! *trailing* record is tolerated and dropped (the append that produced it
//! failed before its ack, so nothing acknowledged is lost), while a full
//! record whose checksum disagrees with its payload is a typed
//! [`StoreError::ChecksumMismatch`] — mid-file corruption is never
//! silently replayed. [`PlacementWal::open`] truncates a torn tail through
//! [`atomic_write`] before handing back an appender, and
//! [`PlacementWal::truncate`] resets the log the same way after a
//! successful store flush (the flushed records are then part of the base
//! graph, so even a crash between flush and truncate only causes
//! idempotent replays).

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::atomic::atomic_write;
use crate::faults::FaultFile;
use crate::format::Checksum;
use crate::StoreError;

/// Name of the placement WAL inside a partition store directory.
pub const WAL_NAME: &str = "wal.tlpw";
/// Magic bytes opening a WAL file (name + format version).
pub const WAL_MAGIC: [u8; 8] = *b"TLPWAL\x00\x01";
/// On-disk size of one record: three `u32` fields + a `u64` checksum.
pub const WAL_RECORD_LEN: usize = 20;

/// One acknowledged placement: canonical endpoints + assigned partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Canonical source endpoint (`u < v`).
    pub u: u32,
    /// Canonical target endpoint.
    pub v: u32,
    /// The partition the placer assigned.
    pub partition: u32,
}

impl WalRecord {
    /// Serializes the record (payload + trailing FNV-1a checksum).
    pub fn encode(&self) -> [u8; WAL_RECORD_LEN] {
        let mut out = [0u8; WAL_RECORD_LEN];
        out[0..4].copy_from_slice(&self.u.to_le_bytes());
        out[4..8].copy_from_slice(&self.v.to_le_bytes());
        out[8..12].copy_from_slice(&self.partition.to_le_bytes());
        let checksum = Checksum::of(&out[0..12]);
        out[12..20].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes one full record, verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if `bytes` is shorter than a record;
    /// [`StoreError::ChecksumMismatch`] if the stored checksum disagrees
    /// with the payload (a flipped byte anywhere in the record).
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, StoreError> {
        if bytes.len() < WAL_RECORD_LEN {
            return Err(StoreError::Truncated { what: "wal record" });
        }
        let expected = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let actual = Checksum::of(&bytes[0..12]);
        if expected != actual {
            return Err(StoreError::ChecksumMismatch {
                section: "wal record",
                expected,
                actual,
            });
        }
        Ok(WalRecord {
            u: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            v: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            partition: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
        })
    }
}

/// What a WAL read recovered: the acknowledged records plus how many
/// torn trailing bytes (an append cut short before its ack) were dropped.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every fully-written, checksum-verified record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of a partial trailing record (or partial header) that were
    /// discarded. Zero for a cleanly-closed log.
    pub torn_tail_bytes: usize,
}

/// Reads a WAL file without opening it for appending. A missing file is
/// an empty log (the store predates its first served write).
///
/// # Errors
///
/// [`StoreError::BadMagic`] if the file exists but is not a WAL;
/// [`StoreError::ChecksumMismatch`] for a corrupt full record;
/// [`StoreError::Io`] for underlying read failures.
pub fn read_wal(path: &Path) -> Result<WalReplay, StoreError> {
    let mut file = match FaultFile::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(StoreError::from)?;
    if bytes.len() < WAL_MAGIC.len() {
        // The creating write itself was cut short: no record was ever
        // appended, let alone acknowledged. Treat as an empty torn log.
        return Ok(WalReplay {
            records: Vec::new(),
            torn_tail_bytes: bytes.len(),
        });
    }
    if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(StoreError::BadMagic { found });
    }
    let body = &bytes[WAL_MAGIC.len()..];
    let full = body.len() / WAL_RECORD_LEN;
    let torn_tail_bytes = body.len() % WAL_RECORD_LEN;
    let mut records = Vec::with_capacity(full);
    for i in 0..full {
        records.push(WalRecord::decode(&body[i * WAL_RECORD_LEN..])?);
    }
    Ok(WalReplay {
        records,
        torn_tail_bytes,
    })
}

/// Appender over a partition store's placement WAL.
///
/// All I/O goes through [`FaultFile`], so the crash-point sweep can place
/// a fault at every append, sync, and truncate operation.
#[derive(Debug)]
pub struct PlacementWal {
    path: PathBuf,
    file: FaultFile,
    depth: u64,
    group_commit: u64,
    unsynced: u64,
}

impl PlacementWal {
    /// Opens (creating if needed) the WAL inside `dir`, recovering its
    /// acknowledged records and truncating any torn tail so subsequent
    /// appends start from a clean record boundary.
    ///
    /// # Errors
    ///
    /// Propagates [`read_wal`] errors plus I/O failures re-establishing
    /// the file.
    pub fn open(dir: &Path) -> Result<(PlacementWal, WalReplay), StoreError> {
        let path = dir.join(WAL_NAME);
        let replay = read_wal(&path)?;
        if replay.torn_tail_bytes > 0 || !path.exists() {
            // Rewrite header + surviving records atomically: the recovery
            // point is durable before any new append lands after it.
            atomic_write(&path, |out| {
                out.write_all(&WAL_MAGIC).map_err(StoreError::Io)?;
                for record in &replay.records {
                    out.write_all(&record.encode()).map_err(StoreError::Io)?;
                }
                Ok(())
            })?;
        }
        let file = FaultFile::append(&path).map_err(StoreError::Io)?;
        Ok((
            PlacementWal {
                path,
                file,
                depth: replay.records.len() as u64,
                group_commit: 1,
                unsynced: 0,
            },
            replay,
        ))
    }

    /// Sets the group-commit interval: fsync after every `every`-th append
    /// instead of every append. `1` (the default) is fsync-on-ack; larger
    /// values trade the durability of up to `every - 1` most-recent acks
    /// for latency (the measured trade-off lives in EXPERIMENTS.md).
    pub fn set_group_commit(&mut self, every: u64) {
        self.group_commit = every.max(1);
    }

    /// Records appended since the last truncate (the replay backlog).
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// The file the log lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. With the default group-commit of 1 the record
    /// is on stable storage when this returns — the caller may ack.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or sync fails; the record must then
    /// be treated as not durable (do not ack).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        self.file
            .write_all(&record.encode())
            .map_err(StoreError::from)?;
        self.depth += 1;
        self.unsynced += 1;
        if self.unsynced >= self.group_commit {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any group-committed tail to stable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.file.sync_all().map_err(StoreError::from)?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Resets the log to empty (magic only) after a successful store
    /// flush, through the same atomic-write path as every other durable
    /// artifact. On failure the old log (and handle) may be stale; the
    /// caller must stop appending until a truncate succeeds.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the rewrite or the append-handle reopen
    /// fails.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        atomic_write(&self.path, |out| {
            out.write_all(&WAL_MAGIC).map_err(StoreError::Io)
        })?;
        self.depth = 0;
        self.unsynced = 0;
        // The rename replaced the inode the append handle points at.
        self.file = FaultFile::append(&self.path).map_err(StoreError::Io)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::faults;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn records(n: u32) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord {
                u: i,
                v: i + 1,
                partition: i % 4,
            })
            .collect()
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let _guard = faults::test_lock();
        let dir = temp_dir("rt");
        let (mut wal, replay) = PlacementWal::open(&dir).unwrap();
        assert!(replay.records.is_empty());
        for record in records(5) {
            wal.append(&record).unwrap();
        }
        assert_eq!(wal.depth(), 5);
        drop(wal);

        let (wal, replay) = PlacementWal::open(&dir).unwrap();
        assert_eq!(replay.records, records(5));
        assert_eq!(replay.torn_tail_bytes, 0);
        assert_eq!(wal.depth(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let _guard = faults::test_lock();
        let dir = temp_dir("torn");
        let (mut wal, _) = PlacementWal::open(&dir).unwrap();
        for record in records(3) {
            wal.append(&record).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: a partial fourth record.
        let path = dir.join(WAL_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();

        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, records(3));
        assert_eq!(replay.torn_tail_bytes, 7);

        // Opening for append truncates the tail on disk.
        let (wal, replay) = PlacementWal::open(&dir).unwrap();
        assert_eq!(replay.records, records(3));
        drop(wal);
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(len, WAL_MAGIC.len() + 3 * WAL_RECORD_LEN);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_in_full_record_is_a_typed_error() {
        let _guard = faults::test_lock();
        let dir = temp_dir("flip");
        let (mut wal, _) = PlacementWal::open(&dir).unwrap();
        for record in records(3) {
            wal.append(&record).unwrap();
        }
        drop(wal);
        let path = dir.join(WAL_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the middle record.
        bytes[WAL_MAGIC.len() + WAL_RECORD_LEN + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&path),
            Err(StoreError::ChecksumMismatch {
                section: "wal record",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let _guard = faults::test_lock();
        let dir = temp_dir("magic");
        let path = dir.join(WAL_NAME);
        std::fs::write(&path, b"NOTAWAL!plus more").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::BadMagic { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_resets_the_log() {
        let _guard = faults::test_lock();
        let dir = temp_dir("trunc");
        let (mut wal, _) = PlacementWal::open(&dir).unwrap();
        for record in records(4) {
            wal.append(&record).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.depth(), 0);
        // The handle stays usable after the truncate's inode swap.
        wal.append(&WalRecord {
            u: 9,
            v: 10,
            partition: 1,
        })
        .unwrap();
        drop(wal);
        let (_, replay) = PlacementWal::open(&dir).unwrap();
        assert_eq!(
            replay.records,
            vec![WalRecord {
                u: 9,
                v: 10,
                partition: 1
            }]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_defers_the_sync() {
        let _guard = faults::test_lock();
        let dir = temp_dir("group");
        let (mut wal, _) = PlacementWal::open(&dir).unwrap();
        wal.set_group_commit(4);
        let (_, ops_grouped) = faults::count_ops(|| {
            for record in records(4) {
                wal.append(&record).unwrap();
            }
        });
        // 4 writes + exactly one sync (on the 4th append).
        assert_eq!(ops_grouped, 5);
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = PlacementWal::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
