//! Typed errors for the on-disk store.
//!
//! Every failure mode a corrupt or truncated file can produce maps to a
//! distinct variant — readers never panic on bad bytes.

use std::error::Error as StdError;
use std::fmt;
use std::io;
use tlp_graph::GraphError;

/// Errors produced while reading or writing store files.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O failure (excluding unexpected EOF, which is
    /// reported as [`StoreError::Truncated`]).
    Io(io::Error),
    /// The file does not start with the store magic.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The file is a store file of a version this build cannot read.
    UnsupportedVersion {
        /// The version field found in the header.
        found: u32,
    },
    /// The file ended before a declared section/record was complete.
    Truncated {
        /// What was being read when the file ran out.
        what: &'static str,
    },
    /// A section's stored checksum disagrees with the bytes on disk.
    ChecksumMismatch {
        /// Which section failed its check.
        section: &'static str,
        /// The checksum declared in the file.
        expected: u64,
        /// The checksum computed over the bytes actually read.
        actual: u64,
    },
    /// Structurally invalid content (bad section tag, unsorted edge block,
    /// impossible counts, ...).
    Corrupt(String),
    /// A manifest line failed to parse.
    Manifest {
        /// 1-based line number in the manifest file.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The stream source cannot supply the exact degrees this consumer
    /// needs (e.g. DBH over a one-pass text stream).
    MissingDegrees,
    /// Reconstructing the in-memory graph from stored blocks failed.
    Graph(GraphError),
    /// A partition store held segment data but no readable commit record
    /// (its writer crashed mid-write); the directory has been renamed
    /// aside so the torn data is preserved for inspection but can never be
    /// read as a valid store.
    TornStore {
        /// Where the torn store directory was moved.
        quarantined: std::path::PathBuf,
        /// Why the store was judged torn.
        cause: Box<StoreError>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a tlp-store file (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store version {found}")
            }
            StoreError::Truncated { what } => write!(f, "file truncated while reading {what}"),
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::Corrupt(message) => write!(f, "corrupt store file: {message}"),
            StoreError::Manifest { line, message } => {
                write!(f, "manifest parse error at line {line}: {message}")
            }
            StoreError::MissingDegrees => {
                write!(f, "stream source does not supply exact vertex degrees")
            }
            StoreError::Graph(e) => write!(f, "graph reconstruction failed: {e}"),
            StoreError::TornStore { quarantined, cause } => write!(
                f,
                "torn partition store quarantined to {}: {cause}",
                quarantined.display()
            ),
        }
    }
}

impl StdError for StoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            StoreError::TornStore { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { what: "data" }
        } else {
            StoreError::Io(e)
        }
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<StoreError> = vec![
            StoreError::BadMagic {
                found: *b"notastor",
            },
            StoreError::UnsupportedVersion { found: 9 },
            StoreError::Truncated { what: "edge block" },
            StoreError::ChecksumMismatch {
                section: "edges",
                expected: 1,
                actual: 2,
            },
            StoreError::Corrupt("x".into()),
            StoreError::Manifest {
                line: 3,
                message: "bad field".into(),
            },
            StoreError::MissingDegrees,
            StoreError::TornStore {
                quarantined: "store.quarantine".into(),
                cause: Box::new(StoreError::Truncated { what: "manifest" }),
            },
        ];
        for e in cases {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn unexpected_eof_becomes_truncated() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            StoreError::from(eof),
            StoreError::Truncated { .. }
        ));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(StoreError::from(other), StoreError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
