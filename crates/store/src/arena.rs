//! Zero-copy arena for `.tlpg` v2 files: [`GraphBuf`].
//!
//! A v2 file embeds the CSR arrays verbatim, 8-byte-aligned. `GraphBuf`
//! opens such a file with **one streaming pass** into an 8-byte-aligned
//! arena (a `Vec<u64>` viewed as bytes): the file is read in cache-sized
//! chunks and each section checksum folds over the chunk just read while
//! it is still hot, so the data is swept exactly once. Header, section
//! framing, and per-section checksums are all validated during that pass;
//! afterwards `GraphBuf` lends [`GraphView`]s that borrow the arena
//! directly — no per-edge decode, no CSR construction, no copies.
//!
//! Structural validation of the CSR arrays (offset monotonicity, parallel
//! array lengths, edge-table shape) runs exactly once at open via
//! [`GraphView::from_sections`]; subsequent [`GraphBuf::view`] calls
//! re-slice the arena through the trusted constructor in O(1).
//!
//! The cast from arena bytes to `u64`/`u32` slices assumes a little-endian
//! host (asserted in the vendored `bytemuck` tests); the write path stays
//! portable via explicit little-endian encoding.

use crate::faults::FaultFile;
use crate::format::{
    read_exact_or_truncated, Header, SectionFrame, SectionHasher, HEADER_LEN, SECTION_FRAME_LEN,
    TAG_ADJ_EDGE, TAG_ADJ_VERTEX, TAG_EDGES, TAG_OFFSETS, TAG_ORIGINAL_IDS, VERSION_V2,
};
use crate::StoreError;
use std::ops::Range;
use std::path::{Path, PathBuf};
use tlp_graph::{EdgeTable, GraphView};

/// Bytes appended to the arena per read while streaming a section in.
/// Sized to stay L2-resident so the checksum of each chunk runs over
/// cache-hot data instead of re-sweeping the arena from DRAM; must be a
/// multiple of 64 so chunk boundaries land on whole checksum blocks.
const STREAM_CHUNK: usize = 256 << 10;

/// Zero-extends `storage` through byte `upto` and fills the new bytes
/// from `file`. The incremental zeroing is deliberate: it replaces one
/// arena-wide memset with per-chunk clears of memory the following read
/// immediately overwrites while it is still in cache.
fn fetch(
    storage: &mut Vec<u64>,
    file: &mut FaultFile,
    upto: usize,
    what: &'static str,
) -> Result<(), StoreError> {
    debug_assert!(upto % 8 == 0, "section boundaries are word-aligned");
    let from = storage.len() * 8;
    storage.resize(upto / 8, 0);
    let bytes = bytemuck::cast_slice_mut::<u64, u8>(storage);
    read_exact_or_truncated(file, &mut bytes[from..upto], what)
}

/// An owned, aligned, checksum-verified arena holding a `.tlpg` v2 file.
///
/// # Example
///
/// ```no_run
/// use tlp_store::GraphBuf;
///
/// let buf = GraphBuf::open("graph.tlpg".as_ref())?;
/// let view = buf.view();
/// println!("{} edges", view.num_edges());
/// # Ok::<(), tlp_store::StoreError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuf {
    /// Backing storage as `u64` words so the base address is 8-aligned;
    /// every v2 payload starts at a multiple of 8 within it.
    storage: Vec<u64>,
    path: PathBuf,
    header: Header,
    offsets: Range<usize>,
    adj_vertex: Range<usize>,
    adj_edge: Range<usize>,
    edges: Range<usize>,
    original_ids: Option<Range<usize>>,
}

impl GraphBuf {
    /// Opens a v2 store file as a zero-copy arena.
    ///
    /// Streams the whole file into the arena in one pass, validating the
    /// header, section framing, per-section checksums, and the CSR
    /// structure as the bytes arrive. After `open` succeeds,
    /// [`view`](Self::view) is O(1).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] variant matching the defect found; a v1 file is
    /// rejected with [`StoreError::Corrupt`] (open v1 files through
    /// [`crate::StoreReader`] or [`crate::LoadedGraph`] instead).
    pub fn open(path: &Path) -> Result<GraphBuf, StoreError> {
        let mut file = FaultFile::open(path).map_err(StoreError::Io)?;
        let file_len = file.metadata().map_err(StoreError::Io)?.len() as usize;
        if file_len < HEADER_LEN {
            return Err(StoreError::Truncated { what: "header" });
        }

        // The arena grows in cache-sized chunks as the file streams in,
        // and each section checksum folds over the chunk just read while
        // it is still cache-hot — one pass over the data, no arena-wide
        // memset, no second checksum sweep from DRAM.
        let mut storage: Vec<u64> = Vec::with_capacity(file_len.div_ceil(8));
        fetch(&mut storage, &mut file, HEADER_LEN, "header")?;
        let mut header_bytes = [0u8; HEADER_LEN];
        header_bytes.copy_from_slice(&bytemuck::cast_slice::<u64, u8>(&storage)[..HEADER_LEN]);
        let header = Header::decode(&header_bytes)?;
        if header.version != VERSION_V2 {
            return Err(StoreError::Corrupt(format!(
                "arena open requires format v2, file is v{} (use StoreReader)",
                header.version
            )));
        }

        let n = header.num_vertices;
        let m = header.num_edges;
        let mut pos = HEADER_LEN;
        let mut section = |storage: &mut Vec<u64>,
                           file: &mut FaultFile,
                           tag: u32,
                           what: &'static str,
                           expected_len: u64|
         -> Result<Range<usize>, StoreError> {
            if pos + SECTION_FRAME_LEN > file_len {
                return Err(StoreError::Truncated { what });
            }
            fetch(storage, file, pos + SECTION_FRAME_LEN, what)?;
            let bytes = bytemuck::cast_slice::<u64, u8>(storage.as_slice());
            let mut frame_bytes = &bytes[pos..pos + SECTION_FRAME_LEN];
            let frame = SectionFrame::read_expecting(&mut frame_bytes, tag, what)?;
            if frame.payload_len != expected_len {
                return Err(StoreError::Corrupt(format!(
                    "{what} section declares {} bytes, expected {expected_len}",
                    frame.payload_len
                )));
            }
            let start = pos + SECTION_FRAME_LEN;
            let end = start + frame.payload_len as usize;
            if end > file_len {
                return Err(StoreError::Truncated { what });
            }
            // Fold each chunk into the section checksum right after it
            // lands in the arena, while it is still cache-hot.
            let mut hasher = SectionHasher::for_version(VERSION_V2);
            let mut cur = start;
            while cur < end {
                let next = (cur + STREAM_CHUNK).min(end);
                fetch(storage, file, next, what)?;
                hasher.update(&bytemuck::cast_slice::<u64, u8>(storage.as_slice())[cur..next]);
                cur = next;
            }
            let actual = hasher.value();
            if actual != frame.checksum {
                return Err(StoreError::ChecksumMismatch {
                    section: what,
                    expected: frame.checksum,
                    actual,
                });
            }
            pos = end;
            Ok(start..end)
        };

        let offsets = section(&mut storage, &mut file, TAG_OFFSETS, "offsets", 8 * (n + 1))?;
        let adj_vertex = section(
            &mut storage,
            &mut file,
            TAG_ADJ_VERTEX,
            "adjacency vertices",
            8 * m,
        )?;
        let adj_edge = section(
            &mut storage,
            &mut file,
            TAG_ADJ_EDGE,
            "adjacency edges",
            8 * m,
        )?;
        let edges = section(&mut storage, &mut file, TAG_EDGES, "edges", 8 * m)?;
        let original_ids = if header.has_original_ids {
            Some(section(
                &mut storage,
                &mut file,
                TAG_ORIGINAL_IDS,
                "original ids",
                8 * n,
            )?)
        } else {
            None
        };
        drop(file);

        let buf = GraphBuf {
            storage,
            path: path.to_path_buf(),
            header,
            offsets,
            adj_vertex,
            adj_edge,
            edges,
            original_ids,
        };
        // Structural validation of the CSR arrays, exactly once; later
        // `view()` calls go through the trusted constructor.
        GraphView::from_sections(
            buf.offsets_slice(),
            buf.adj_vertex_slice(),
            buf.adj_edge_slice(),
            EdgeTable::Pairs(buf.edges_slice()),
        )
        .map_err(|e| StoreError::Corrupt(format!("embedded CSR is inconsistent: {e}")))?;
        Ok(buf)
    }

    fn bytes(&self) -> &[u8] {
        bytemuck::cast_slice::<u64, u8>(&self.storage)
    }

    fn offsets_slice(&self) -> &[u64] {
        bytemuck::cast_slice(&self.bytes()[self.offsets.clone()])
    }

    fn adj_vertex_slice(&self) -> &[u32] {
        bytemuck::cast_slice(&self.bytes()[self.adj_vertex.clone()])
    }

    fn adj_edge_slice(&self) -> &[u32] {
        bytemuck::cast_slice(&self.bytes()[self.adj_edge.clone()])
    }

    fn edges_slice(&self) -> &[u32] {
        bytemuck::cast_slice(&self.bytes()[self.edges.clone()])
    }

    /// Lends a [`GraphView`] borrowing the arena directly. O(1): no
    /// validation, no decoding, no allocation.
    pub fn view(&self) -> GraphView<'_> {
        GraphView::from_sections_trusted(
            self.offsets_slice(),
            self.adj_vertex_slice(),
            self.adj_edge_slice(),
            EdgeTable::Pairs(self.edges_slice()),
        )
    }

    /// The decoded file header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The path this arena was read from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Original vertex ids (`original_ids[v]` = id of `v` in the text
    /// source), when the file carries them — borrowed from the arena.
    pub fn original_ids(&self) -> Option<&[u64]> {
        self.original_ids
            .clone()
            .map(|r| bytemuck::cast_slice(&self.bytes()[r]))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::writer::{write_graph, WriteOptions};
    use crate::format::FormatVersion;
    use tlp_graph::{CsrGraph, GraphBuilder};

    fn graph() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3), (0, 2)])
            .build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-arena-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("g.tlpg")
    }

    #[test]
    fn arena_view_matches_written_graph() {
        let g = graph();
        let path = tmp("match");
        write_graph(&path, &g, &WriteOptions::default()).unwrap();
        let buf = GraphBuf::open(&path).unwrap();
        let view = buf.view();
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(view.neighbors(v), g.neighbors(v));
            assert_eq!(
                view.incident(v).collect::<Vec<_>>(),
                g.incident(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(view.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
        assert!(buf.original_ids().is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn arena_preserves_original_ids() {
        let g = graph();
        let ids: Vec<u64> = (0..g.num_vertices() as u64).map(|v| v * 10 + 7).collect();
        let path = tmp("oids");
        let options = WriteOptions {
            original_ids: Some(ids.clone()),
            ..WriteOptions::default()
        };
        write_graph(&path, &g, &options).unwrap();
        let buf = GraphBuf::open(&path).unwrap();
        assert_eq!(buf.original_ids().unwrap(), ids.as_slice());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn arena_rejects_v1_files() {
        let g = graph();
        let path = tmp("v1");
        let options = WriteOptions {
            version: FormatVersion::V1,
            ..WriteOptions::default()
        };
        write_graph(&path, &g, &options).unwrap();
        let err = GraphBuf::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn arena_detects_bit_flips_in_every_section() {
        let g = graph();
        let path = tmp("flip");
        write_graph(&path, &g, &WriteOptions::default()).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Flip one byte in each section payload region and expect a
        // checksum mismatch (or structural rejection) every time.
        let mut pos = HEADER_LEN;
        let mut payloads = Vec::new();
        while pos + SECTION_FRAME_LEN <= pristine.len() {
            let len = u64::from_le_bytes(pristine[pos + 8..pos + 16].try_into().unwrap()) as usize;
            let start = pos + SECTION_FRAME_LEN;
            if len > 0 {
                payloads.push(start);
            }
            pos = start + len;
        }
        assert!(payloads.len() >= 4);
        for &p in &payloads {
            let mut corrupt = pristine.clone();
            corrupt[p] ^= 0x40;
            std::fs::write(&path, &corrupt).unwrap();
            let err = GraphBuf::open(&path).unwrap_err();
            assert!(
                matches!(err, StoreError::ChecksumMismatch { .. }),
                "byte {p}: {err:?}"
            );
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn arena_reports_truncation() {
        let g = graph();
        let path = tmp("trunc");
        write_graph(&path, &g, &WriteOptions::default()).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for cut in [10, HEADER_LEN + 4, pristine.len() - 8] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let err = GraphBuf::open(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
