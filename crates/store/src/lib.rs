//! On-disk graph store and out-of-core edge streaming for the TLP suite.
//!
//! Three layers, each usable on its own:
//!
//! * **Binary graph format** (`.tlpg`) — a versioned, checksummed container
//!   for canonical CSR graphs: [`write_graph`] emits degree and edge blocks
//!   in bounded-size chunks; [`StoreReader`] validates magic, version, and
//!   per-section FNV-1a checksums and rebuilds a [`tlp_graph::CsrGraph`]
//!   bit-identical to the one written. `tlp-convert` (this crate's binary)
//!   converts text edge lists to and from the format.
//! * **Edge streaming** — the [`EdgeStream`] trait delivers a graph's
//!   canonical edge sequence in chunks no larger than a caller-chosen
//!   buffer budget. Sources: [`CsrEdgeStream`] (in-memory, any visit
//!   order), [`BinaryEdgeStream`] (sequential disk reads from a `.tlpg`
//!   file, never materializing the edge table), and [`TextEdgeStream`]
//!   (parse-as-you-go over a text edge list). Streaming partitioners in
//!   `tlp-baselines` consume this trait, so their peak edge-buffer memory
//!   is `O(budget)` instead of `O(m)`.
//! * **Partition store** — [`write_partition_store`] persists a finished
//!   partition as per-partition edge segments plus a `MANIFEST.tlp`
//!   replica/ownership manifest; [`PartitionStoreReader`] recomputes
//!   replication factor and balance from the manifest alone and the full
//!   metrics (including Claim 1 modularity) from the segments,
//!   bit-identically to the live run.
//!
//! # Example
//!
//! ```no_run
//! use tlp_store::{write_graph, StoreReader, WriteOptions};
//! use tlp_graph::GraphBuilder;
//!
//! let graph = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
//! write_graph("ring.tlpg".as_ref(), &graph, &WriteOptions::default())?;
//! let stored = StoreReader::open("ring.tlpg".as_ref())?.read_graph()?;
//! assert_eq!(stored.graph, graph);
//! # Ok::<(), tlp_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod partition_store;
mod reader;
mod stream;
mod writer;

pub mod format;

pub use error::StoreError;
pub use format::{Header, SourceStamp, CHUNK_EDGES, MAGIC, VERSION};
pub use partition_store::{
    write_partition_store, PartitionManifest, PartitionStoreReader, SegmentEntry, MANIFEST_NAME,
};
pub use reader::{StoreReader, StoredGraph};
pub use stream::{
    for_each_chunk, BinaryEdgeStream, CsrEdgeStream, EdgeStream, StreamMeta, TextEdgeStream,
};
pub use writer::{write_graph, WriteOptions};
