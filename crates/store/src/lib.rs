//! On-disk graph store and out-of-core edge streaming for the TLP suite.
//!
//! Three layers, each usable on its own:
//!
//! * **Binary graph format** (`.tlpg`) — a versioned, checksummed container
//!   for canonical CSR graphs. Format v2 (the default) embeds the CSR
//!   arrays themselves, 8-byte-aligned and individually checksummed, so
//!   [`GraphBuf`] opens a graph with one bulk read and lends zero-copy
//!   [`tlp_graph::GraphView`]s — no per-edge decode, no CSR rebuild.
//!   Legacy v1 files (degree + edge blocks) stay readable through the
//!   decode-then-build path; [`LoadedGraph::open`] dispatches on the
//!   header version so callers never care which they have. [`write_graph`]
//!   emits either version in bounded-size chunks; [`StoreReader`]
//!   validates magic, version, and per-section checksums and rebuilds a
//!   [`tlp_graph::CsrGraph`] bit-identical to the one written.
//!   `tlp-convert` (this crate's binary) converts text edge lists to and
//!   from the format and upgrades v1 files in place.
//! * **Edge streaming** — the [`EdgeStream`] trait delivers a graph's
//!   canonical edge sequence in chunks no larger than a caller-chosen
//!   buffer budget. Sources: [`CsrEdgeStream`] (in-memory, any visit
//!   order), [`BinaryEdgeStream`] (sequential disk reads from a `.tlpg`
//!   file, never materializing the edge table), and [`TextEdgeStream`]
//!   (parse-as-you-go over a text edge list). Streaming partitioners in
//!   `tlp-baselines` consume this trait, so their peak edge-buffer memory
//!   is `O(budget)` instead of `O(m)`.
//! * **Partition store** — [`write_partition_store`] persists a finished
//!   partition as per-partition edge segments plus a `MANIFEST.tlp`
//!   replica/ownership manifest; [`PartitionStoreReader`] recomputes
//!   replication factor and balance from the manifest alone and the full
//!   metrics (including Claim 1 modularity) from the segments,
//!   bit-identically to the live run.
//!
//! # Fault tolerance
//!
//! All durable writes (graphs, segments, manifests, checkpoints) go
//! through [`atomic_write`]: temp file + fsync + atomic rename, so a crash
//! leaves the previous file or nothing — never a torn one. The partition
//! store's manifest doubles as a commit record; an uncommitted store is
//! quarantined on open ([`StoreError::TornStore`]). The [`faults`] module
//! provides deterministic fault injection ([`FaultFile`], [`FaultSchedule`])
//! that every store I/O path is threaded through, which is how the
//! crash-point sweep tests drive the above guarantees. The checkpoint
//! module ([`write_checkpoint`] / [`read_checkpoint`]) persists
//! partitioner snapshots for kill-and-resume runs.
//!
//! # Example
//!
//! ```no_run
//! use tlp_store::{write_graph, StoreReader, WriteOptions};
//! use tlp_graph::GraphBuilder;
//!
//! let graph = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
//! write_graph("ring.tlpg".as_ref(), &graph, &WriteOptions::default())?;
//! let stored = StoreReader::open("ring.tlpg".as_ref())?.read_graph()?;
//! assert_eq!(stored.graph, graph);
//! # Ok::<(), tlp_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod arena;
mod atomic;
mod checkpoint;
mod error;
mod loaded;
mod partition_store;
mod reader;
mod sources;
mod stream;
mod wal;
mod writer;

pub mod faults;
pub mod format;

pub use arena::GraphBuf;
pub use atomic::atomic_write;
pub use checkpoint::{read_checkpoint, write_checkpoint, CHECKPOINT_NAME};
pub use error::StoreError;
pub use faults::{FaultFile, FaultKind, FaultSchedule};
pub use format::{
    FormatVersion, Header, SourceStamp, CHUNK_EDGES, MAGIC, VERSION, VERSION_V2,
};
pub use loaded::LoadedGraph;
pub use partition_store::{
    write_partition_store, PartitionManifest, PartitionStoreReader, SegmentEntry, MANIFEST_NAME,
};
pub use reader::{SectionInfo, StoreReader, StoredGraph};
pub use sources::{BinaryFileSource, BudgetedCsrSource, TextFileSource};
pub use stream::{
    for_each_chunk, BinaryEdgeStream, CsrEdgeStream, EdgeStream, StreamMeta, TextEdgeStream,
};
pub use wal::{read_wal, PlacementWal, WalRecord, WalReplay, WAL_MAGIC, WAL_NAME, WAL_RECORD_LEN};
pub use writer::{write_graph, WriteOptions};
